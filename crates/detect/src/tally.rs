//! Running residual tallies — re-score the Eq. (23) detector per delta.
//!
//! [`ConsistencyDetector::inspect`] recomputes the estimate and the full
//! re-projection for every measurement vector it sees. Campaigns and
//! detection experiments, however, inspect many vectors that differ from
//! a common *base* only by a delta: per-round noise around a persistent
//! manipulation, or an attack manipulation added to a clean round. The
//! normal-equations estimator is linear in `y`, so both pieces of the
//! verdict update by rank-structured corrections:
//!
//! ```text
//! x̂(y + δ) = x̂(y) + A⁺δ
//! r(y + δ) = R x̂(y + δ) − (y + δ) = r(y) + (R A⁺δ − δ)
//! ```
//!
//! [`ResidualTally`] caches the base estimate and base residual vector
//! once and answers each re-score with one cached-factor solve and one
//! sparse re-projection — no per-delta Gram work, and the base verdict
//! itself is bit-identical to `inspect` on the base vector.
//!
//! The corrected verdicts agree with a fresh `inspect` to floating-point
//! working precision (the solve path associates differently), which is
//! far inside the detector's decision margins: stealthy attacks sit at
//! solver tolerance and plain attacks overshoot `α` by orders of
//! magnitude.

use tomo_core::{CoreError, TomographySystem};
use tomo_linalg::{norms, Vector};
use tomo_obs::LazyCounter;

use crate::{ConsistencyDetector, Verdict};

static TALLY_RESCORES: LazyCounter = LazyCounter::new("detect.tally.rescores");

/// Cached base state for incremental verdict re-scoring.
#[derive(Debug, Clone)]
pub struct ResidualTally {
    base_estimate: Vector,
    /// `R x̂ − y` on the base vector (kept as a vector, not just its ℓ₁
    /// norm, so deltas can correct it component-wise).
    base_residual: Vector,
    base_verdict: Verdict,
}

impl ResidualTally {
    /// Builds the tally for a base measurement vector: estimates,
    /// re-projects, and stores the residual *vector* alongside the
    /// verdict. The stored verdict is bit-identical to
    /// [`ConsistencyDetector::inspect`] on `y_base`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `y_base` has the
    /// wrong length.
    pub fn new(
        detector: &ConsistencyDetector,
        system: &TomographySystem,
        y_base: &Vector,
    ) -> Result<Self, CoreError> {
        let estimate = system.estimate(y_base)?;
        let reprojected = system.routing_csr().mul_vec(&estimate)?;
        let residual = &reprojected - y_base;
        let verdict = verdict_of(detector, &residual, &estimate);
        Ok(ResidualTally {
            base_estimate: estimate,
            base_residual: residual,
            base_verdict: verdict,
        })
    }

    /// The verdict on the base vector itself.
    #[must_use]
    pub fn base_verdict(&self) -> Verdict {
        self.base_verdict
    }

    /// The base estimate `x̂(y_base)`.
    #[must_use]
    pub fn base_estimate(&self) -> &Vector {
        &self.base_estimate
    }

    /// Re-scores the detector on `y_base + delta` from the cached base
    /// state: one cached-factor solve for `A⁺δ`, one sparse
    /// re-projection, and two vector corrections.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `delta` has the wrong
    /// length.
    pub fn rescore(
        &self,
        detector: &ConsistencyDetector,
        system: &TomographySystem,
        delta: &Vector,
    ) -> Result<Verdict, CoreError> {
        TALLY_RESCORES.inc();
        // Linearity of the estimator: x̂(y + δ) − x̂(y) = A⁺δ.
        let dx = system.estimate(delta)?;
        let r_dx = system.routing_csr().mul_vec(&dx)?;
        let residual = &(&self.base_residual + &r_dx) - delta;
        let estimate = &self.base_estimate + &dx;
        Ok(verdict_of(detector, &residual, &estimate))
    }
}

/// The Eq. (23) + plausibility decision on a residual vector and an
/// estimate — the same formula as [`ConsistencyDetector::inspect`].
fn verdict_of(detector: &ConsistencyDetector, residual: &Vector, estimate: &Vector) -> Verdict {
    let residual_l1 = norms::l1(residual);
    let min_estimate = estimate.min().unwrap_or(0.0);
    let implausible = detector
        .plausibility_tol()
        .is_some_and(|tol| min_estimate < -tol);
    Verdict {
        residual_l1,
        min_estimate,
        detected: residual_l1 > detector.alpha() || implausible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use tomo_core::fig1;

    #[test]
    fn base_verdict_matches_inspect_bitwise() {
        let system = fig1::fig1_system().unwrap();
        let detector = ConsistencyDetector::recommended();
        let x = Vector::from((0..10).map(|i| 5.0 + i as f64).collect::<Vec<_>>());
        let mut y = system.measure(&x).unwrap();
        y[3] += 37.5; // make the base mildly inconsistent
        let tally = ResidualTally::new(&detector, &system, &y).unwrap();
        let fresh = detector.inspect(&system, &y).unwrap();
        assert_eq!(tally.base_verdict().residual_l1, fresh.residual_l1);
        assert_eq!(tally.base_verdict().min_estimate, fresh.min_estimate);
        assert_eq!(tally.base_verdict().detected, fresh.detected);
    }

    #[test]
    fn rescore_matches_fresh_inspect() {
        let system = fig1::fig1_system().unwrap();
        let detector = ConsistencyDetector::recommended();
        let x = Vector::filled(10, 12.0);
        let y = system.measure(&x).unwrap();
        let tally = ResidualTally::new(&detector, &system, &y).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..8 {
            let delta = Vector::from(
                (0..system.num_paths())
                    .map(|_| rng.gen_range(-250.0..250.0))
                    .collect::<Vec<_>>(),
            );
            let scored = tally.rescore(&detector, &system, &delta).unwrap();
            let fresh = detector.inspect(&system, &(&y + &delta)).unwrap();
            assert!(
                (scored.residual_l1 - fresh.residual_l1).abs() < 1e-8,
                "residual drift: {} vs {}",
                scored.residual_l1,
                fresh.residual_l1
            );
            assert!((scored.min_estimate - fresh.min_estimate).abs() < 1e-8);
            assert_eq!(scored.detected, fresh.detected);
        }
    }

    #[test]
    fn zero_delta_recovers_base_residual() {
        let system = fig1::fig1_system().unwrap();
        let detector = ConsistencyDetector::paper_default();
        let y = system.measure(&Vector::filled(10, 10.0)).unwrap();
        let tally = ResidualTally::new(&detector, &system, &y).unwrap();
        let zero = Vector::zeros(system.num_paths());
        let scored = tally.rescore(&detector, &system, &zero).unwrap();
        assert!(scored.residual_l1 < 1e-9);
        assert!(!scored.detected);
    }

    #[test]
    fn rejects_wrong_length() {
        let system = fig1::fig1_system().unwrap();
        let detector = ConsistencyDetector::paper_default();
        let y = system.measure(&Vector::filled(10, 10.0)).unwrap();
        let tally = ResidualTally::new(&detector, &system, &y).unwrap();
        assert!(tally
            .rescore(&detector, &system, &Vector::zeros(3))
            .is_err());
        assert!(ResidualTally::new(&detector, &system, &Vector::zeros(3)).is_err());
    }
}
