//! Multi-round detection campaigns — extension beyond the paper.
//!
//! The paper inspects a single measurement round. Real operators probe
//! continuously, and a *persistent* attacker (one that applies the same
//! manipulation every round, which it must do to keep the scapegoat's
//! estimate pinned) faces an averaging operator: over `n` rounds the
//! measurement noise in the mean shrinks like `1/√n` while the attack
//! residual stays put. This module quantifies that advantage.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_core::delay::GaussianNoise;
use tomo_core::{CoreError, TomographySystem};
use tomo_linalg::Vector;
use tomo_obs::LazyCounter;
use tomo_par::{derive_seed, Executor};

use crate::{ConsistencyDetector, ResidualTally};

static ROUNDS_TOTAL: LazyCounter = LazyCounter::new("detect.rounds.total");

/// Outcome of a measurement campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Residual of each individual round.
    pub per_round_residuals: Vec<f64>,
    /// Rounds individually flagged by the detector.
    pub rounds_detected: usize,
    /// Residual of the round-averaged measurement vector.
    pub mean_residual: f64,
    /// Verdict on the averaged measurements.
    pub mean_detected: bool,
}

impl CampaignOutcome {
    /// Fraction of individually flagged rounds.
    #[must_use]
    pub fn per_round_detection_ratio(&self) -> f64 {
        if self.per_round_residuals.is_empty() {
            0.0
        } else {
            self.rounds_detected as f64 / self.per_round_residuals.len() as f64
        }
    }
}

/// Runs `rounds` noisy measurement rounds with an optional persistent
/// manipulation added to each, inspecting both per-round and averaged
/// measurements. Rounds are fanned out across `exec`'s workers; each
/// round's noise comes from an RNG stream derived from `(seed, round)`
/// and the average is folded in round order, so the outcome is
/// bit-identical for every thread count.
///
/// # Errors
///
/// * [`CoreError::DimensionMismatch`] if `true_metrics` or
///   `manipulation` have wrong lengths.
///
/// # Panics
///
/// Panics if `rounds == 0`.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign(
    system: &TomographySystem,
    detector: &ConsistencyDetector,
    true_metrics: &Vector,
    manipulation: Option<&Vector>,
    noise: &GaussianNoise,
    rounds: usize,
    seed: u64,
    exec: &Executor,
) -> Result<CampaignOutcome, CoreError> {
    assert!(rounds > 0, "campaign needs at least one round");
    let _span = tomo_obs::span("detect.campaign");
    ROUNDS_TOTAL.add(rounds as u64);
    if let Some(m) = manipulation {
        if m.len() != system.num_paths() {
            return Err(CoreError::DimensionMismatch {
                context: "campaign: manipulation vector",
                expected: system.num_paths(),
                got: m.len(),
            });
        }
    }
    let clean = system.measure(true_metrics)?;
    let base = match manipulation {
        Some(m) => &clean + m,
        None => clean,
    };
    // Every round is `base + noise`: tally the base once and re-score
    // each round (and the round average) from its noise delta instead of
    // re-running the full estimate-and-reproject pipeline per vector.
    let tally = ResidualTally::new(detector, system, &base)?;

    let per_round = exec.try_map(rounds, |round| {
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, round as u64));
        let y = noise.perturb(&base, &mut rng);
        let delta = &y - &base;
        let verdict = tally.rescore(detector, system, &delta)?;
        Ok::<_, CoreError>((verdict.residual_l1, verdict.detected, y))
    })?;

    let mut per_round_residuals = Vec::with_capacity(rounds);
    let mut rounds_detected = 0usize;
    let mut sum = Vector::zeros(system.num_paths());
    for (residual, detected, y) in &per_round {
        per_round_residuals.push(*residual);
        if *detected {
            rounds_detected += 1;
        }
        sum += y;
    }
    let mean = sum.scaled(1.0 / rounds as f64);
    let mean_verdict = tally.rescore(detector, system, &(&mean - &base))?;
    Ok(CampaignOutcome {
        per_round_residuals,
        rounds_detected,
        mean_residual: mean_verdict.residual_l1,
        mean_detected: mean_verdict.detected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_attack::attacker::AttackerSet;
    use tomo_attack::scenario::AttackScenario;
    use tomo_attack::strategy;
    use tomo_core::{fig1, params};

    fn attacked_manipulation() -> (TomographySystem, Vector, Vector) {
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let x = Vector::filled(10, 10.0);
        let s = strategy::chosen_victim(
            &system,
            &attackers,
            &AttackScenario::paper_defaults(),
            &x,
            &[topo.paper_link(10)], // imperfect cut ⇒ residual
        )
        .unwrap()
        .into_success()
        .unwrap();
        (system, x, s.manipulation)
    }

    #[test]
    fn averaging_shrinks_clean_residuals() {
        let system = fig1::fig1_system().unwrap();
        let x = Vector::filled(10, 10.0);
        let noise = GaussianNoise::new(20.0).unwrap();
        let detector = ConsistencyDetector::new(1e9).unwrap(); // never flags
        let exec = Executor::single_threaded();
        let outcome = run_campaign(&system, &detector, &x, None, &noise, 64, 1, &exec).unwrap();
        let mean_single: f64 = outcome.per_round_residuals.iter().sum::<f64>()
            / outcome.per_round_residuals.len() as f64;
        assert!(
            outcome.mean_residual < mean_single / 3.0,
            "averaging should shrink noise: mean-of-rounds {mean_single:.1} vs \
             averaged {:.1}",
            outcome.mean_residual
        );
        assert!(!outcome.mean_detected);
    }

    #[test]
    fn persistent_attack_survives_averaging() {
        let (system, x, manipulation) = attacked_manipulation();
        let noise = GaussianNoise::new(20.0).unwrap();
        let detector = ConsistencyDetector::paper_default();
        let exec = Executor::single_threaded();
        let outcome = run_campaign(
            &system,
            &detector,
            &x,
            Some(&manipulation),
            &noise,
            32,
            2,
            &exec,
        )
        .unwrap();
        // The attack's structural residual dominates the averaged noise.
        assert!(outcome.mean_detected, "residual {}", outcome.mean_residual);
        assert!(outcome.mean_residual > params::ALPHA_MS);
        // Per-round detection is also (near-)perfect here, but the point
        // is that the averaged statistic is strictly cleaner.
        assert!(outcome.per_round_detection_ratio() > 0.5);
    }

    #[test]
    fn heavy_noise_single_rounds_vs_campaign() {
        // With σ large relative to α, single rounds false-alarm; the
        // averaged statistic does not.
        let system = fig1::fig1_system().unwrap();
        let x = Vector::filled(10, 10.0);
        let noise = GaussianNoise::new(60.0).unwrap();
        let detector = ConsistencyDetector::paper_default();
        let exec = Executor::single_threaded();
        let outcome = run_campaign(&system, &detector, &x, None, &noise, 64, 3, &exec).unwrap();
        assert!(
            outcome.rounds_detected > 0,
            "σ = 60 ms should trip α = 200 ms on some single rounds"
        );
        assert!(
            !outcome.mean_detected,
            "averaging must suppress false alarms"
        );
    }

    #[test]
    fn validation() {
        let system = fig1::fig1_system().unwrap();
        let x = Vector::filled(10, 10.0);
        let noise = GaussianNoise::new(1.0).unwrap();
        let detector = ConsistencyDetector::paper_default();
        let exec = Executor::single_threaded();
        let bad = Vector::zeros(3);
        assert!(run_campaign(&system, &detector, &x, Some(&bad), &noise, 4, 4, &exec).is_err());
        let outcome = run_campaign(&system, &detector, &x, None, &noise, 1, 4, &exec).unwrap();
        assert_eq!(outcome.per_round_residuals.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let system = fig1::fig1_system().unwrap();
        let x = Vector::filled(10, 10.0);
        let _ = run_campaign(
            &system,
            &ConsistencyDetector::paper_default(),
            &x,
            None,
            &GaussianNoise::new(1.0).unwrap(),
            0,
            5,
            &Executor::single_threaded(),
        );
    }
}
