//! Detection-ratio experiments — the machinery behind Fig. 9.
//!
//! Each trial samples attackers and routine delays, launches one of the
//! three strategies (a *rational* attacker: it first tries the stealthy,
//! consistency-preserving LP and falls back to the plain damage-maximal
//! LP), then runs the Eq. (23) detector on the manipulated measurements.
//! Results are tallied per (strategy × cut kind):
//!
//! * **perfect cut** ⇒ the stealthy LP is feasible ⇒ residual 0 ⇒
//!   detection ratio ≈ 0 (Theorem 3, undetectable branch);
//! * **imperfect cut** ⇒ only the plain LP succeeds ⇒ residual > α ⇒
//!   detection ratio ≈ 1 (detectable branch).
//!
//! Note: the paper's prose in Section V-D states the ratios the other way
//! around ("100% when attackers can perfectly cut"), which contradicts
//! its own Theorem 3; we implement the theorem (see DESIGN.md).

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::cut::{analyze_cut, CutKind};
use tomo_attack::scenario::AttackScenario;
use tomo_attack::{strategy, AttackError, AttackOutcome};
use tomo_core::delay::DelayModel;
use tomo_core::TomographySystem;
use tomo_graph::{LinkId, NodeId};
use tomo_lp::{warm_enabled, WarmStart};
use tomo_par::{derive_seed, Executor};

use crate::{ConsistencyDetector, ResidualTally};

/// Which scapegoating strategy a trial used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Chosen-victim scapegoating (Eq. 4-7).
    ChosenVictim,
    /// Maximum-damage scapegoating (Eq. 8).
    MaxDamage,
    /// Obfuscation (Eq. 9-11).
    Obfuscation,
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StrategyKind::ChosenVictim => "chosen-victim",
            StrategyKind::MaxDamage => "maximum-damage",
            StrategyKind::Obfuscation => "obfuscation",
        };
        f.write_str(s)
    }
}

/// Tally of one (strategy, cut-kind) cell of Fig. 9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionCell {
    /// Successful attacks executed.
    pub attacks: usize,
    /// Of those, attacks flagged by the detector.
    pub detected: usize,
}

impl DetectionCell {
    /// Detection ratio (`None` when no attack landed in this cell).
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        if self.attacks == 0 {
            None
        } else {
            Some(self.detected as f64 / self.attacks as f64)
        }
    }
}

/// Aggregated results of a detection experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Per-strategy tallies under perfect cuts.
    pub perfect: [DetectionCell; 3],
    /// Per-strategy tallies under imperfect cuts.
    pub imperfect: [DetectionCell; 3],
    /// Clean (no-attack) rounds inspected.
    pub clean_trials: usize,
    /// Clean rounds incorrectly flagged (false alarms).
    pub false_alarms: usize,
}

impl DetectionReport {
    /// The cell for a strategy and cut kind (perfect = `true`).
    #[must_use]
    pub fn cell(&self, strategy: StrategyKind, perfect: bool) -> DetectionCell {
        let idx = strategy_index(strategy);
        if perfect {
            self.perfect[idx]
        } else {
            self.imperfect[idx]
        }
    }

    /// False-alarm ratio on clean rounds (`None` before any clean round).
    #[must_use]
    pub fn false_alarm_ratio(&self) -> Option<f64> {
        if self.clean_trials == 0 {
            None
        } else {
            Some(self.false_alarms as f64 / self.clean_trials as f64)
        }
    }

    /// Adds another report's tallies into this one (used to reduce
    /// per-trial reports in index order).
    fn absorb(&mut self, other: &DetectionReport) {
        for i in 0..3 {
            self.perfect[i].attacks += other.perfect[i].attacks;
            self.perfect[i].detected += other.perfect[i].detected;
            self.imperfect[i].attacks += other.imperfect[i].attacks;
            self.imperfect[i].detected += other.imperfect[i].detected;
        }
        self.clean_trials += other.clean_trials;
        self.false_alarms += other.false_alarms;
    }
}

fn strategy_index(s: StrategyKind) -> usize {
    match s {
        StrategyKind::ChosenVictim => 0,
        StrategyKind::MaxDamage => 1,
        StrategyKind::Obfuscation => 2,
    }
}

/// Configuration of a detection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionConfig {
    /// Trials per strategy.
    pub trials: usize,
    /// Attackers sampled per trial.
    pub num_attackers: usize,
    /// Attack parameters (evasion flag is managed internally).
    pub scenario: AttackScenario,
    /// Minimum uncertain victims for obfuscation success.
    pub obfuscation_min_victims: usize,
}

/// Runs the rational attacker: stealthy LP first, plain LP as fallback.
///
/// Returns the outcome together with whether the *stealthy* variant was
/// the one that succeeded.
fn rational_attack<F>(run: F) -> Result<(AttackOutcome, bool), AttackError>
where
    F: Fn(bool) -> Result<AttackOutcome, AttackError>,
{
    let stealthy = run(true)?;
    if stealthy.is_success() {
        return Ok((stealthy, true));
    }
    Ok((run(false)?, false))
}

/// Runs the full Fig. 9 experiment on one measurement system, fanning
/// trials out across `exec`'s workers.
///
/// Each trial draws from its own RNG stream derived from
/// `(seed, trial_index)` and per-trial reports are reduced in index
/// order, so the result is bit-identical for every thread count.
///
/// # Errors
///
/// Propagates attack/tomography errors (infeasible attacks are not
/// errors; they simply do not contribute to any cell).
pub fn run_detection_experiment(
    system: &TomographySystem,
    detector: &ConsistencyDetector,
    delay_model: &DelayModel,
    config: &DetectionConfig,
    seed: u64,
    exec: &Executor,
) -> Result<DetectionReport, AttackError> {
    let _span = tomo_obs::span("detect.experiment");
    system.warm_estimator_cache()?;
    // Shared simplex basis cache for the whole experiment: the rational
    // attacker re-solves the same stealthy/plain LP skeletons trial
    // after trial. Fig. 9 records detector verdicts and integer tallies
    // only — stealthy solutions satisfy the consistency rows to solver
    // tolerance and plain attacks overshoot the threshold by orders of
    // magnitude, so basis reuse cannot flip a verdict.
    let lp_warm = warm_enabled().then(WarmStart::new);
    let per_trial = exec.try_map(config.trials, |trial| -> Result<_, AttackError> {
        let trial_seed = derive_seed(seed, trial as u64);
        let mut rng = ChaCha8Rng::seed_from_u64(trial_seed);
        let outcome = run_one_trial(
            system,
            detector,
            delay_model,
            config,
            lp_warm.as_ref(),
            &mut rng,
        )?;
        if tomo_obs::tracing_enabled() {
            tomo_obs::record_trial(tomo_obs::TrialProvenance {
                experiment: "detect.fig9".to_string(),
                trial: trial as u64,
                seed: trial_seed,
                warm: tomo_lp::take_last_warm_outcome(),
                verdict: Some(outcome.clean_detected),
                residual: Some(outcome.clean_residual_l1),
                ..tomo_obs::TrialProvenance::default()
            });
        }
        Ok(outcome.report)
    })?;
    let mut report = DetectionReport::default();
    for trial_report in &per_trial {
        report.absorb(trial_report);
    }
    Ok(report)
}

/// One trial's report plus the clean-round verdict details that trace
/// provenance records (and the aggregate report discards).
struct TrialOutcome {
    report: DetectionReport,
    clean_residual_l1: f64,
    clean_detected: bool,
}

/// One trial: fresh attackers and routine delays, a clean round for
/// false-alarm accounting, then all three strategies.
fn run_one_trial<R: Rng + ?Sized>(
    system: &TomographySystem,
    detector: &ConsistencyDetector,
    delay_model: &DelayModel,
    config: &DetectionConfig,
    lp_warm: Option<&WarmStart>,
    rng: &mut R,
) -> Result<TrialOutcome, AttackError> {
    let mut report = DetectionReport::default();
    let mut nodes: Vec<NodeId> = system.graph().nodes().collect();
    let (sampled, _) = nodes.partial_shuffle(rng, config.num_attackers.max(1));
    let attackers = AttackerSet::new(system, sampled.to_vec())?;
    let x = delay_model.sample(system.num_links(), rng);
    let y_clean = system.measure(&x)?;

    // Clean round: false-alarm accounting. The running tally's base
    // verdict is bit-identical to `inspect(system, &y_clean)`, and the
    // cached base state then re-scores every attacked vector of this
    // trial from its manipulation delta alone.
    let residual_tally =
        ResidualTally::new(detector, system, &y_clean).map_err(AttackError::Core)?;
    let clean_verdict = residual_tally.base_verdict();
    report.clean_trials += 1;
    if clean_verdict.detected {
        report.false_alarms += 1;
    }

    // Chosen victim: a random non-controlled link.
    let free: Vec<LinkId> = (0..system.num_links())
        .map(LinkId)
        .filter(|&l| !attackers.controls_link(l))
        .collect();
    if let Some(&victim) = free.as_slice().choose(rng) {
        let (outcome, _) = rational_attack(|evade| {
            strategy::chosen_victim_warm(
                system,
                &attackers,
                &config.scenario.with_evasion(evade),
                &x,
                &[victim],
                lp_warm,
            )
        })?;
        tally(
            system,
            detector,
            &attackers,
            &residual_tally,
            StrategyKind::ChosenVictim,
            &outcome,
            &mut report,
        )?;
    }

    // Maximum damage.
    let (outcome, _) = rational_attack(|evade| {
        strategy::max_damage_warm(
            system,
            &attackers,
            &config.scenario.with_evasion(evade),
            &x,
            lp_warm,
        )
    })?;
    tally(
        system,
        detector,
        &attackers,
        &residual_tally,
        StrategyKind::MaxDamage,
        &outcome,
        &mut report,
    )?;

    // Obfuscation.
    let (outcome, _) = rational_attack(|evade| {
        strategy::obfuscation_warm(
            system,
            &attackers,
            &config.scenario.with_evasion(evade),
            &x,
            config.obfuscation_min_victims,
            lp_warm,
        )
    })?;
    tally(
        system,
        detector,
        &attackers,
        &residual_tally,
        StrategyKind::Obfuscation,
        &outcome,
        &mut report,
    )?;
    Ok(TrialOutcome {
        report,
        clean_residual_l1: clean_verdict.residual_l1,
        clean_detected: clean_verdict.detected,
    })
}

/// Applies the detector to a successful attack and files it under the
/// right (strategy, cut) cell. The attacked vector is `y_clean + m`, so
/// the verdict comes from re-scoring the trial's running tally with the
/// manipulation as a delta.
fn tally(
    system: &TomographySystem,
    detector: &ConsistencyDetector,
    attackers: &AttackerSet,
    residual_tally: &ResidualTally,
    strategy: StrategyKind,
    outcome: &AttackOutcome,
    report: &mut DetectionReport,
) -> Result<(), AttackError> {
    let Some(s) = outcome.success() else {
        return Ok(());
    };
    let cut = analyze_cut(system, attackers, &s.victims);
    let verdict = residual_tally
        .rescore(detector, system, &s.manipulation)
        .map_err(AttackError::Core)?;
    let idx = strategy_index(strategy);
    let cell = match cut.kind {
        CutKind::Perfect => &mut report.perfect[idx],
        CutKind::Imperfect | CutKind::NoCoverage => &mut report.imperfect[idx],
    };
    cell.attacks += 1;
    if verdict.detected {
        cell.detected += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::{fig1, params};

    #[test]
    fn fig9_shape_on_fig1() {
        let system = fig1::fig1_system().unwrap();
        let detector = ConsistencyDetector::paper_default();
        let config = DetectionConfig {
            trials: 25,
            num_attackers: 2,
            scenario: AttackScenario::paper_defaults(),
            obfuscation_min_victims: 2,
        };
        let report = run_detection_experiment(
            &system,
            &detector,
            &params::default_delay_model(),
            &config,
            99,
            &Executor::single_threaded(),
        )
        .unwrap();

        // No false alarms on clean rounds (noise-free).
        assert_eq!(report.false_alarms, 0);
        assert_eq!(report.clean_trials, 25);

        let mut saw_perfect = false;
        let mut saw_imperfect = false;
        for s in [
            StrategyKind::ChosenVictim,
            StrategyKind::MaxDamage,
            StrategyKind::Obfuscation,
        ] {
            // Theorem 3: perfect-cut attacks are never detected…
            if let Some(r) = report.cell(s, true).ratio() {
                assert!(r < 1e-9, "{s}: perfect-cut detection ratio {r}");
                saw_perfect = true;
            }
            // …imperfect-cut attacks always are.
            if let Some(r) = report.cell(s, false).ratio() {
                assert!(r > 0.99, "{s}: imperfect-cut detection ratio {r}");
                saw_imperfect = true;
            }
        }
        assert!(saw_perfect, "no perfect-cut attack landed in 25 trials");
        assert!(saw_imperfect, "no imperfect-cut attack landed in 25 trials");
    }

    #[test]
    fn detection_cell_ratio() {
        assert_eq!(DetectionCell::default().ratio(), None);
        let c = DetectionCell {
            attacks: 4,
            detected: 1,
        };
        assert_eq!(c.ratio(), Some(0.25));
    }

    #[test]
    fn report_accessors() {
        let mut r = DetectionReport::default();
        assert_eq!(r.false_alarm_ratio(), None);
        r.clean_trials = 10;
        r.false_alarms = 1;
        assert_eq!(r.false_alarm_ratio(), Some(0.1));
        r.perfect[0] = DetectionCell {
            attacks: 2,
            detected: 0,
        };
        assert_eq!(r.cell(StrategyKind::ChosenVictim, true).ratio(), Some(0.0));
        assert_eq!(r.cell(StrategyKind::ChosenVictim, false).ratio(), None);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(StrategyKind::ChosenVictim.to_string(), "chosen-victim");
        assert_eq!(StrategyKind::MaxDamage.to_string(), "maximum-damage");
        assert_eq!(StrategyKind::Obfuscation.to_string(), "obfuscation");
    }
}
