//! Attacker localization — an extension beyond the paper.
//!
//! The paper's detector (Eq. 23) only answers *whether* scapegoating
//! happened. A natural operator follow-up is *who* is doing it. The idea
//! here uses the same machinery: manipulated entries of `y′` are
//! confined to paths crossing the attackers (Constraint 1), so if we
//! **exclude all paths through one candidate node** and the remaining
//! (still overdetermined) subsystem becomes consistent, that node can
//! explain the whole inconsistency — it is a suspect.
//!
//! Formally, for candidate `v` let `P_v` be the paths avoiding `v`, and
//! `R_v`, `y′_v` the corresponding row selections. The *residual score*
//! of `v` is the ℓ1 norm of the component of `y′_v` outside the column
//! space of `R_v` — the subsystem's consistency residual, well-defined
//! even when `R_v` is rank-deficient. The check only has power when the
//! subsystem retains redundancy (`|P_v| > rank(R_v)`); a node whose
//! exclusion leaves a redundancy-free subsystem is reported as
//! non-assessable. True attackers score ≈ 0; innocent nodes keep the
//! inconsistency and score high.
//!
//! Limits mirror Theorem 3: perfect-cut (consistent) attacks produce no
//! residual at all, so there is nothing to localize; and when several
//! nodes lie on exactly the same path sets, they are indistinguishable
//! (reported as tied scores).

use serde::{Deserialize, Serialize};

use tomo_core::{CoreError, TomographySystem};
use tomo_graph::NodeId;
use tomo_linalg::lstsq;
use tomo_linalg::{norms, Matrix, Vector};

/// Outcome of assessing one candidate node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SuspectAssessment {
    /// Excluding the node leaves a redundant subsystem with this
    /// consistency residual; low values make the node a suspect.
    Residual(f64),
    /// Excluding the node leaves no redundant measurement to check — the
    /// node is on too many paths to be assessed this way.
    NotAssessable,
}

/// One node's localization record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuspectScore {
    /// The candidate node.
    pub node: NodeId,
    /// Its assessment.
    pub assessment: SuspectAssessment,
}

/// Localization report: per-node scores plus the full-system residual.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizationReport {
    /// The full-system residual `‖R x̂ − y′‖₁` (the detector's statistic).
    pub full_residual: f64,
    /// Scores in ascending residual order (most suspicious first);
    /// non-assessable nodes last.
    pub scores: Vec<SuspectScore>,
}

impl LocalizationReport {
    /// Nodes whose exclusion restores consistency to within `tol` —
    /// the suspects.
    #[must_use]
    pub fn suspects(&self, tol: f64) -> Vec<NodeId> {
        self.scores
            .iter()
            .filter_map(|s| match s.assessment {
                SuspectAssessment::Residual(r) if r <= tol => Some(s.node),
                _ => None,
            })
            .collect()
    }
}

/// Scores every node of the system against observed measurements `y′`.
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] if `observed` has the wrong
/// length; linear-algebra errors are absorbed into
/// [`SuspectAssessment::NotAssessable`].
pub fn localize(
    system: &TomographySystem,
    observed: &Vector,
) -> Result<LocalizationReport, CoreError> {
    if observed.len() != system.num_paths() {
        return Err(CoreError::DimensionMismatch {
            context: "localize: measurement vector",
            expected: system.num_paths(),
            got: observed.len(),
        });
    }
    let estimate = system.estimate(observed)?;
    let reprojected = system.routing_csr().mul_vec(&estimate)?;
    let full_residual = norms::l1(&(&reprojected - observed));

    let mut scores: Vec<SuspectScore> = system
        .graph()
        .nodes()
        .map(|v| SuspectScore {
            node: v,
            assessment: assess(system, observed, v),
        })
        .collect();
    scores.sort_by(|a, b| match (&a.assessment, &b.assessment) {
        (SuspectAssessment::Residual(x), SuspectAssessment::Residual(y)) => {
            x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal)
        }
        (SuspectAssessment::Residual(_), SuspectAssessment::NotAssessable) => {
            std::cmp::Ordering::Less
        }
        (SuspectAssessment::NotAssessable, SuspectAssessment::Residual(_)) => {
            std::cmp::Ordering::Greater
        }
        _ => std::cmp::Ordering::Equal,
    });
    Ok(LocalizationReport {
        full_residual,
        scores,
    })
}

/// Consistency residual of the subsystem that avoids `v`.
fn assess(system: &TomographySystem, observed: &Vector, v: NodeId) -> SuspectAssessment {
    let keep: Vec<usize> = system
        .paths()
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.contains_node(v))
        .map(|(i, _)| i)
        .collect();
    if keep.is_empty() {
        return SuspectAssessment::NotAssessable;
    }
    let sub_r: Matrix = system.routing_matrix().select_rows(&keep);
    // Redundancy condition: with rows == rank the subsystem is trivially
    // consistent and the check has no power.
    if keep.len() <= lstsq::column_space_rank(&sub_r) {
        return SuspectAssessment::NotAssessable;
    }
    let sub_y: Vector = keep.iter().map(|&i| observed[i]).collect();
    match lstsq::residual_outside_column_space(&sub_r, &sub_y) {
        Ok(residual) => SuspectAssessment::Residual(norms::l1(&residual)),
        Err(_) => SuspectAssessment::NotAssessable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tomo_attack::attacker::AttackerSet;
    use tomo_attack::scenario::AttackScenario;
    use tomo_attack::strategy;
    use tomo_core::fig1;
    use tomo_core::placement::{random_placement, PlacementConfig};

    /// A larger system where excluding one node's paths leaves plenty of
    /// redundancy (localization needs residual measurements to check).
    fn isp_system(seed: u64) -> TomographySystem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph =
            tomo_graph::isp::generate(&tomo_graph::isp::IspConfig::default(), &mut rng).unwrap();
        let config = PlacementConfig {
            redundancy_fraction: 1.0, // extra rows make localization sharp
            ..PlacementConfig::default()
        };
        random_placement(&graph, &config, &mut rng).unwrap()
    }

    /// Launches a single-attacker max-damage attack that succeeds and is
    /// inconsistent, returning (system, attacked measurements, attacker).
    fn attacked_measurements(seed: u64) -> (TomographySystem, Vector, NodeId) {
        let system = isp_system(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xa11);
        let x = tomo_core::params::default_delay_model().sample(system.num_links(), &mut rng);
        // Prefer a lightly-loaded attacker so its exclusion keeps
        // redundancy; walk candidates until one admits a feasible,
        // detectably inconsistent attack.
        let mut nodes: Vec<NodeId> = system.graph().nodes().collect();
        nodes.sort_by_key(|&n| system.paths_through_nodes(&[n]).len());
        for node in nodes {
            if system.paths_through_nodes(&[node]).is_empty() {
                continue;
            }
            let attackers = AttackerSet::new(&system, vec![node]).unwrap();
            let outcome =
                strategy::max_damage(&system, &attackers, &AttackScenario::paper_defaults(), &x)
                    .unwrap();
            if let Some(s) = outcome.success() {
                let y = &system.measure(&x).unwrap() + &s.manipulation;
                let est = system.estimate(&y).unwrap();
                let reproj = system.routing_csr().mul_vec(&est).unwrap();
                if norms::l1(&(&reproj - &y)) > 200.0 {
                    return (system, y, node);
                }
            }
        }
        panic!("no localizable attack instance at seed {seed}");
    }

    #[test]
    fn clean_measurements_give_zero_scores_everywhere() {
        let system = fig1::fig1_system().unwrap();
        let y = system.measure(&Vector::filled(10, 10.0)).unwrap();
        let report = localize(&system, &y).unwrap();
        assert!(report.full_residual < 1e-6);
        for s in &report.scores {
            if let SuspectAssessment::Residual(r) = s.assessment {
                assert!(r < 1e-6, "node {} residual {r}", s.node);
            }
        }
    }

    #[test]
    fn single_attacker_is_a_suspect() {
        let (system, y, attacker) = attacked_measurements(7);
        let report = localize(&system, &y).unwrap();
        assert!(report.full_residual > 200.0, "attack must be inconsistent");
        let suspects = report.suspects(1e-3);
        assert!(
            suspects.contains(&attacker),
            "attacker {attacker} not among suspects {suspects:?}"
        );
    }

    #[test]
    fn innocent_well_covered_nodes_score_high() {
        let (system, y, attacker) = attacked_measurements(7);
        let report = localize(&system, &y).unwrap();
        // Some node must remain clearly implausible as the sole culprit.
        let innocents_with_residual: Vec<f64> = report
            .scores
            .iter()
            .filter(|s| s.node != attacker)
            .filter_map(|s| match s.assessment {
                SuspectAssessment::Residual(r) => Some(r),
                SuspectAssessment::NotAssessable => None,
            })
            .collect();
        assert!(
            innocents_with_residual.iter().any(|&r| r > 100.0),
            "no innocent node retains the inconsistency: {innocents_with_residual:?}"
        );
    }

    #[test]
    fn wrong_length_rejected() {
        let system = fig1::fig1_system().unwrap();
        assert!(localize(&system, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn report_orders_suspects_first() {
        let (system, y, _) = attacked_measurements(9);
        let report = localize(&system, &y).unwrap();
        // Scores with residuals come before NotAssessable, and residuals
        // are ascending.
        let mut last = -1.0;
        let mut seen_na = false;
        for s in &report.scores {
            match s.assessment {
                SuspectAssessment::Residual(r) => {
                    assert!(!seen_na, "residual after NotAssessable");
                    assert!(r >= last - 1e-12);
                    last = r;
                }
                SuspectAssessment::NotAssessable => seen_na = true,
            }
        }
    }
}
