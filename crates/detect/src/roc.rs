//! Threshold-sweep (ROC) analysis of the consistency detector under
//! measurement noise — the engineering question Remark 4 raises but the
//! paper leaves open: *how should α be chosen when `R x̂ ≠ y′` even
//! without an attack?*
//!
//! With Gaussian measurement noise the clean residual is no longer zero,
//! so α trades false alarms against missed (imperfect-cut) attacks. This
//! module sweeps α and reports the operating points.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::scenario::AttackScenario;
use tomo_attack::{strategy, AttackError};
use tomo_core::delay::{DelayModel, GaussianNoise};
use tomo_core::TomographySystem;
use tomo_graph::LinkId;
use tomo_par::{derive_seed, Executor};

use crate::ConsistencyDetector;

/// One operating point of the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// The threshold α.
    pub alpha: f64,
    /// True-positive ratio: detected attacks / attacks.
    pub true_positive: f64,
    /// False-positive ratio: flagged clean rounds / clean rounds.
    pub false_positive: f64,
}

/// Residual samples from matched clean/attacked rounds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResidualSamples {
    /// Residuals of clean (but noisy) rounds.
    pub clean: Vec<f64>,
    /// Residuals of attacked rounds (imperfect-cut chosen-victim).
    pub attacked: Vec<f64>,
}

impl ResidualSamples {
    /// Evaluates one threshold on the collected samples.
    #[must_use]
    pub fn operating_point(&self, alpha: f64) -> RocPoint {
        let tp = ratio_above(&self.attacked, alpha);
        let fp = ratio_above(&self.clean, alpha);
        RocPoint {
            alpha,
            true_positive: tp,
            false_positive: fp,
        }
    }

    /// Evaluates a whole sweep of thresholds.
    #[must_use]
    pub fn sweep(&self, alphas: &[f64]) -> Vec<RocPoint> {
        let _span = tomo_obs::span("detect.roc.sweep");
        alphas.iter().map(|&a| self.operating_point(a)).collect()
    }
}

fn ratio_above(samples: &[f64], alpha: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&r| r > alpha).count() as f64 / samples.len() as f64
}

/// Collects residual samples: per round, one noisy clean measurement and
/// one noisy attacked measurement (chosen-victim on a random
/// non-controlled link; rounds where the attack is infeasible contribute
/// only the clean sample).
///
/// Rounds are fanned out across `exec`'s workers, each drawing from its
/// own `(seed, round)`-derived RNG stream; samples are gathered in round
/// order, so the result is bit-identical for every thread count.
///
/// # Errors
///
/// Propagates attack construction errors.
#[allow(clippy::too_many_arguments)]
pub fn collect_residuals(
    system: &TomographySystem,
    scenario: &AttackScenario,
    delay_model: &DelayModel,
    noise: &GaussianNoise,
    num_attackers: usize,
    rounds: usize,
    seed: u64,
    exec: &Executor,
) -> Result<ResidualSamples, AttackError> {
    use rand::seq::SliceRandom;

    let _span = tomo_obs::span("detect.roc.collect");
    system.warm_estimator_cache()?;
    let zero_detector = ConsistencyDetector::new(0.0).expect("0 is valid");
    let nodes: Vec<_> = system.graph().nodes().collect();

    let per_round = exec.try_map(rounds, |round| {
        let rng = &mut ChaCha8Rng::seed_from_u64(derive_seed(seed, round as u64));
        let mut shuffled = nodes.clone();
        let (sampled, _) = shuffled.partial_shuffle(rng, num_attackers.max(1));
        let attackers = AttackerSet::new(system, sampled.to_vec())?;
        let x = delay_model.sample(system.num_links(), rng);
        let y_clean = system.measure(&x).map_err(AttackError::Core)?;

        let noisy_clean = noise.perturb(&y_clean, rng);
        let clean_verdict = zero_detector
            .inspect(system, &noisy_clean)
            .map_err(AttackError::Core)?;
        let clean_residual = clean_verdict.residual_l1;

        let free: Vec<LinkId> = (0..system.num_links())
            .map(LinkId)
            .filter(|&l| !attackers.controls_link(l))
            .collect();
        let Some(&victim) = free.as_slice().choose(rng) else {
            return Ok((clean_residual, None));
        };
        let outcome = strategy::chosen_victim(system, &attackers, scenario, &x, &[victim])?;
        let attacked_residual = match outcome.success() {
            Some(s) => {
                let y_attacked = noise.perturb(&(&y_clean + &s.manipulation), rng);
                let verdict = zero_detector
                    .inspect(system, &y_attacked)
                    .map_err(AttackError::Core)?;
                Some(verdict.residual_l1)
            }
            None => None,
        };
        Ok::<_, AttackError>((clean_residual, attacked_residual))
    })?;

    let mut samples = ResidualSamples::default();
    for (clean, attacked) in per_round {
        samples.clean.push(clean);
        samples.attacked.extend(attacked);
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::{fig1, params};

    #[test]
    fn roc_points_are_monotone_in_alpha() {
        let samples = ResidualSamples {
            clean: vec![1.0, 2.0, 3.0, 4.0],
            attacked: vec![10.0, 20.0, 30.0, 0.5],
        };
        let points = samples.sweep(&[0.0, 2.5, 5.0, 100.0]);
        for w in points.windows(2) {
            assert!(w[1].true_positive <= w[0].true_positive);
            assert!(w[1].false_positive <= w[0].false_positive);
        }
        assert_eq!(points[0].true_positive, 1.0);
        assert_eq!(points[0].false_positive, 1.0);
        assert_eq!(points[3].true_positive, 0.0);
        assert_eq!(points[3].false_positive, 0.0);
        // alpha = 2.5 separates: fp 2/4, tp 3/4.
        assert_eq!(points[1].false_positive, 0.5);
        assert_eq!(points[1].true_positive, 0.75);
    }

    #[test]
    fn empty_samples_report_zero() {
        let samples = ResidualSamples::default();
        let p = samples.operating_point(1.0);
        assert_eq!(p.true_positive, 0.0);
        assert_eq!(p.false_positive, 0.0);
    }

    #[test]
    fn collected_residuals_separate_under_mild_noise() {
        let system = fig1::fig1_system().unwrap();
        let samples = collect_residuals(
            &system,
            &AttackScenario::paper_defaults(),
            &params::default_delay_model(),
            &GaussianNoise::new(1.0).unwrap(),
            2,
            20,
            3,
            &Executor::single_threaded(),
        )
        .unwrap();
        assert_eq!(samples.clean.len(), 20);
        assert!(!samples.attacked.is_empty());
        // The paper's α = 200 ms separates mild noise from attacks:
        // noise-driven clean residuals stay far below it, imperfect-cut
        // attack residuals exceed it. (Perfect-cut attacks land at ≈ the
        // noise floor and are indistinguishable, per Theorem 3 — the
        // imperfect ones dominate random draws on Fig. 1.)
        let p = samples.operating_point(params::ALPHA_MS);
        assert_eq!(p.false_positive, 0.0, "clean residuals exceed α");
        assert!(p.true_positive > 0.5, "tp {}", p.true_positive);
    }
}
