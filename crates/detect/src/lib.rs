//! Detection of scapegoating attacks (Section IV-B of the paper).
//!
//! The operator's only hope of noticing a manipulated tomography run is a
//! *consistency check*: re-project the estimate through the measurement
//! model and compare with what was observed,
//!
//! ```text
//! scapegoating exists      if  R x̂ ≠ y′            (Eq. 23)
//! practically:             if  ‖R x̂ − y′‖₁ > α     (Remark 4)
//! ```
//!
//! Theorem 3 bounds what this can achieve: attacks behind a **perfect
//! cut** satisfy `R x̂ = y′` exactly and are *undetectable*; imperfect-cut
//! attacks leave a nonzero residual and are detectable. [`experiment`]
//! reproduces Fig. 9 (detection ratios per strategy × cut type);
//! [`roc`] sweeps the threshold under measurement noise; [`localize`]
//! extends detection to *who*: rank nodes by whether excluding their
//! paths restores consistency.
//!
//! # Example
//!
//! ```
//! use tomo_core::fig1::fig1_system;
//! use tomo_detect::ConsistencyDetector;
//! use tomo_linalg::Vector;
//!
//! # fn main() -> Result<(), tomo_core::CoreError> {
//! let system = fig1_system()?;
//! let detector = ConsistencyDetector::paper_default();
//! // A clean measurement is perfectly consistent.
//! let y = system.measure(&Vector::filled(10, 10.0))?;
//! let verdict = detector.inspect(&system, &y)?;
//! assert!(!verdict.detected);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;

pub mod calibrate;
pub mod experiment;
pub mod localize;
pub mod roc;
pub mod rounds;
pub mod tally;

pub use detector::{ConsistencyDetector, DegradedVerdict, Verdict};
pub use tally::ResidualTally;
