use serde::{Deserialize, Serialize};

use tomo_core::{params, CoreError, TomographySystem};
use tomo_graph::LinkId;
use tomo_linalg::{norms, Vector};

/// The consistency-based scapegoating detector of Eq. (23) / Remark 4 —
/// flag an attack when `‖R x̂ − y′‖₁ > α` — optionally paired with a
/// **plausibility check** on the estimate itself.
///
/// The plausibility check closes a hole this reproduction found in the
/// paper's Theorem 3 (see `tomo-sim::fig9` and DESIGN.md): the proof of
/// the "detectable" branch tacitly assumes attackers only distort victim
/// and own-link estimates. On AS-scale systems the damage-maximal LP can
/// instead produce *consistent* manipulated measurements (`R x̂ = y′`
/// exactly) whose estimates frame the victim while driving other links'
/// estimated delays strongly **negative** — physically impossible values
/// the pure Eq. (23) check never looks at. Flagging estimates below
/// `−plausibility_tol` restores detection; stealthy perfect-cut attacks
/// (which keep `x̂ ⪰ 0` by construction) remain invisible, exactly as
/// Theorem 3's undetectable branch promises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyDetector {
    alpha: f64,
    /// Flag estimates below `−plausibility_tol`; `None` disables the
    /// check (the paper's literal Eq. 23 detector).
    plausibility_tol: Option<f64>,
}

/// The detector's decision for one measurement round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// The consistency residual `‖R x̂ − y′‖₁`.
    pub residual_l1: f64,
    /// The smallest entry of the estimate `x̂` (negative values are
    /// physically impossible for delays).
    pub min_estimate: f64,
    /// `true` when the residual exceeds α, or — with the plausibility
    /// check enabled — when some estimate is implausibly negative.
    pub detected: bool,
}

impl ConsistencyDetector {
    /// Creates a pure Eq. (23) detector with threshold `alpha ≥ 0`.
    ///
    /// Returns `None` for negative or non-finite thresholds.
    #[must_use]
    pub fn new(alpha: f64) -> Option<Self> {
        if alpha.is_finite() && alpha >= 0.0 {
            Some(ConsistencyDetector {
                alpha,
                plausibility_tol: None,
            })
        } else {
            None
        }
    }

    /// The paper's experimental setting: `α = 200 ms`, consistency check
    /// only (Section V-D).
    #[must_use]
    pub fn paper_default() -> Self {
        ConsistencyDetector {
            alpha: params::ALPHA_MS,
            plausibility_tol: None,
        }
    }

    /// The recommended deployment: the paper's `α = 200 ms` consistency
    /// check *plus* a tight plausibility check (1 ms).
    ///
    /// The plausibility tolerance must sit at the measurement-noise
    /// floor, not at α: a consistent evader can spread its negative
    /// offsets across several links of each attacker-free path, keeping
    /// every individual estimate above any loose bound. With `tol` near
    /// zero the evader would need `Δx̂ ⪰ 0` everywhere, and then
    /// consistency forces `Δ = 0` along attacker-free victim paths —
    /// Theorem 3's detectable branch, restored. Under real measurement
    /// noise, calibrate the tolerance like α (a clean-round quantile,
    /// see [`crate::calibrate`]).
    #[must_use]
    pub fn recommended() -> Self {
        ConsistencyDetector {
            alpha: params::ALPHA_MS,
            plausibility_tol: Some(1.0),
        }
    }

    /// Returns a copy with the plausibility check set to `tol` (flag when
    /// any estimate drops below `−tol`), or disabled with `None`.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is negative or non-finite.
    #[must_use]
    pub fn with_plausibility(mut self, tol: Option<f64>) -> Self {
        if let Some(t) = tol {
            assert!(t.is_finite() && t >= 0.0, "plausibility tol must be ≥ 0");
        }
        self.plausibility_tol = tol;
        self
    }

    /// The threshold α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The plausibility tolerance, if the check is enabled.
    #[must_use]
    pub fn plausibility_tol(&self) -> Option<f64> {
        self.plausibility_tol
    }

    /// Runs the check(s) on observed measurements `y′`: estimates `x̂`,
    /// re-projects `R x̂`, compares against `y′`, and (optionally)
    /// inspects `x̂` for implausibly negative entries.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `y′` has the wrong
    /// length.
    pub fn inspect(
        &self,
        system: &TomographySystem,
        observed: &Vector,
    ) -> Result<Verdict, CoreError> {
        let estimate = system.estimate(observed)?;
        let reprojected = system.routing_csr().mul_vec(&estimate)?;
        let residual_l1 = norms::l1(&(&reprojected - observed));
        let min_estimate = estimate.min().unwrap_or(0.0);
        let implausible = self.plausibility_tol.is_some_and(|tol| min_estimate < -tol);
        Ok(Verdict {
            residual_l1,
            min_estimate,
            detected: residual_l1 > self.alpha || implausible,
        })
    }

    /// Runs the check(s) on a *surviving subset* of measurements — the
    /// detector's graceful-degradation path after probe loss.
    ///
    /// With every row surviving this routes through [`inspect`]
    /// (Self::inspect) and is bit-identical to it. Otherwise the estimate
    /// comes from [`TomographySystem::solve_degraded`]; the residual is
    /// accumulated over the surviving rows only, and the plausibility
    /// check skips links flagged unidentifiable (their ridge coordinates
    /// carry no information and must not trigger detection).
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of
    /// [`TomographySystem::solve_degraded`].
    pub fn inspect_degraded(
        &self,
        system: &TomographySystem,
        surviving_rows: &[usize],
        observed_sub: &Vector,
    ) -> Result<DegradedVerdict, CoreError> {
        if surviving_rows.len() == system.num_paths() {
            // Full survival: defer to the exact path (also re-validates).
            let verdict = self.inspect(system, observed_sub)?;
            return Ok(DegradedVerdict {
                verdict,
                degraded: false,
                rank: system.num_links(),
                used_ridge: false,
                unidentifiable: Vec::new(),
            });
        }
        let solve = system.solve_degraded(surviving_rows, observed_sub)?;
        let routing = system.routing_matrix();
        let mut residual_l1 = 0.0;
        for (k, &row) in surviving_rows.iter().enumerate() {
            let reprojected: f64 = routing
                .row(row)
                .iter()
                .zip(solve.estimate.iter())
                .map(|(r, x)| r * x)
                .sum();
            residual_l1 += (reprojected - observed_sub[k]).abs();
        }
        let min_estimate = solve
            .estimate
            .iter()
            .enumerate()
            .filter(|(j, _)| !solve.unidentifiable.contains(&LinkId(*j)))
            .map(|(_, &v)| v)
            .fold(f64::INFINITY, f64::min);
        let min_estimate = if min_estimate.is_finite() {
            min_estimate
        } else {
            0.0
        };
        let implausible = self.plausibility_tol.is_some_and(|tol| min_estimate < -tol);
        Ok(DegradedVerdict {
            verdict: Verdict {
                residual_l1,
                min_estimate,
                detected: residual_l1 > self.alpha || implausible,
            },
            degraded: true,
            rank: solve.rank,
            used_ridge: solve.used_ridge,
            unidentifiable: solve.unidentifiable,
        })
    }
}

/// A [`Verdict`] from a degraded round, plus how degraded it was.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedVerdict {
    /// The detection decision.
    pub verdict: Verdict,
    /// `false` when every measurement survived (the decision then equals
    /// [`ConsistencyDetector::inspect`] exactly).
    pub degraded: bool,
    /// Rank of the surviving routing submatrix.
    pub rank: usize,
    /// Whether estimation needed the ridge fallback.
    pub used_ridge: bool,
    /// Links excluded from the plausibility check as unidentifiable.
    pub unidentifiable: Vec<LinkId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_attack::attacker::AttackerSet;
    use tomo_attack::scenario::AttackScenario;
    use tomo_attack::{strategy, theory};
    use tomo_core::fig1;

    #[test]
    fn validation() {
        assert!(ConsistencyDetector::new(0.0).is_some());
        assert!(ConsistencyDetector::new(-1.0).is_none());
        assert!(ConsistencyDetector::new(f64::NAN).is_none());
        assert_eq!(ConsistencyDetector::paper_default().alpha(), 200.0);
        assert_eq!(
            ConsistencyDetector::paper_default().plausibility_tol(),
            None
        );
        assert_eq!(
            ConsistencyDetector::recommended().plausibility_tol(),
            Some(1.0)
        );
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_plausibility_tol_panics() {
        let _ = ConsistencyDetector::paper_default().with_plausibility(Some(-1.0));
    }

    #[test]
    fn clean_measurements_pass() {
        let system = fig1::fig1_system().unwrap();
        for detector in [
            ConsistencyDetector::paper_default(),
            ConsistencyDetector::recommended(),
        ] {
            let y = system.measure(&Vector::filled(10, 15.0)).unwrap();
            let v = detector.inspect(&system, &y).unwrap();
            assert!(!v.detected);
            assert!(v.residual_l1 < 1e-6);
            assert!(v.min_estimate > 14.0);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let system = fig1::fig1_system().unwrap();
        let detector = ConsistencyDetector::paper_default();
        assert!(detector.inspect(&system, &Vector::zeros(5)).is_err());
    }

    #[test]
    fn perfect_cut_attack_is_undetectable_even_with_plausibility() {
        // Theorem 3, undetectable branch: the constructed perfect-cut
        // attack satisfies R x̂ = y′ exactly AND keeps estimates
        // non-negative, so even the recommended detector stays silent.
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let x = Vector::filled(10, 10.0);
        let outcome = theory::perfect_cut_attack(
            &system,
            &attackers,
            &AttackScenario::paper_defaults(),
            &x,
            &[topo.paper_link(1)],
            900.0,
        )
        .unwrap();
        let s = outcome.success().unwrap();
        let y_attacked = &system.measure(&x).unwrap() + &s.manipulation;
        let v = ConsistencyDetector::recommended()
            .inspect(&system, &y_attacked)
            .unwrap();
        assert!(
            !v.detected,
            "residual {} min {}",
            v.residual_l1, v.min_estimate
        );
        assert!(v.residual_l1 < 1e-6);
        assert!(v.min_estimate >= -1e-6);
    }

    #[test]
    fn imperfect_cut_attack_is_detected() {
        // Theorem 3, detectable branch on Fig. 1: framing the imperfectly
        // cut link 10 leaves a large residual.
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let x = Vector::filled(10, 10.0);
        let outcome = strategy::chosen_victim(
            &system,
            &attackers,
            &AttackScenario::paper_defaults(),
            &x,
            &[topo.paper_link(10)],
        )
        .unwrap();
        let s = outcome.success().unwrap();
        let y_attacked = &system.measure(&x).unwrap() + &s.manipulation;
        for detector in [
            ConsistencyDetector::paper_default(),
            ConsistencyDetector::recommended(),
        ] {
            let v = detector.inspect(&system, &y_attacked).unwrap();
            assert!(v.detected, "residual {}", v.residual_l1);
        }
    }

    #[test]
    fn plausibility_catches_negative_estimate_evasion() {
        // Hand-built evasion shape: measurements consistent with an
        // estimate that has a large negative entry. Construct x̂* with a
        // negative coordinate and feed y′ = R x̂* — residual is zero, only
        // the plausibility check can fire.
        let system = fig1::fig1_system().unwrap();
        let mut fake = Vector::filled(10, 10.0);
        fake[0] = 900.0; // framed victim
        fake[8] = -600.0; // the tell-tale negative estimate
        let y = system.routing_csr().mul_vec(&fake).unwrap();
        let pure = ConsistencyDetector::paper_default()
            .inspect(&system, &y)
            .unwrap();
        assert!(!pure.detected, "Eq. 23 alone is blind to this shape");
        assert!(pure.residual_l1 < 1e-6);
        let v = ConsistencyDetector::recommended()
            .inspect(&system, &y)
            .unwrap();
        assert!(v.detected, "plausibility check must fire");
        assert!(v.min_estimate < -500.0);
    }

    #[test]
    fn degraded_inspect_matches_full_inspect_when_everything_survives() {
        let system = fig1::fig1_system().unwrap();
        let detector = ConsistencyDetector::recommended();
        let y = system.measure(&Vector::filled(10, 15.0)).unwrap();
        let rows: Vec<usize> = (0..system.num_paths()).collect();
        let full = detector.inspect(&system, &y).unwrap();
        let deg = detector.inspect_degraded(&system, &rows, &y).unwrap();
        assert!(!deg.degraded);
        assert_eq!(
            deg.verdict.residual_l1.to_bits(),
            full.residual_l1.to_bits()
        );
        assert_eq!(
            deg.verdict.min_estimate.to_bits(),
            full.min_estimate.to_bits()
        );
        assert_eq!(deg.verdict.detected, full.detected);
    }

    #[test]
    fn degraded_inspect_survives_rank_collapse() {
        // Keep so few rows that some links become unidentifiable: the
        // detector must not panic, must flag the degradation, and a clean
        // (fault-free) subset must not raise a false alarm.
        let system = fig1::fig1_system().unwrap();
        let detector = ConsistencyDetector::recommended();
        let x = Vector::filled(10, 15.0);
        let y = system.measure(&x).unwrap();
        let rows: Vec<usize> = (0..4).collect();
        let y_sub: Vector = rows.iter().map(|&i| y[i]).collect();
        let deg = detector.inspect_degraded(&system, &rows, &y_sub).unwrap();
        assert!(deg.degraded);
        assert!(deg.used_ridge);
        assert!(deg.rank < system.num_links());
        assert!(!deg.unidentifiable.is_empty());
        assert!(
            !deg.verdict.detected,
            "clean degraded round must stay silent: residual {} min {}",
            deg.verdict.residual_l1, deg.verdict.min_estimate
        );
    }

    #[test]
    fn degraded_inspect_still_detects_attacks_on_surviving_rows() {
        // Drop one redundant row; the imperfect-cut attack's residual
        // lives across many rows, so detection must survive the loss.
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let x = Vector::filled(10, 10.0);
        let outcome = strategy::chosen_victim(
            &system,
            &attackers,
            &AttackScenario::paper_defaults(),
            &x,
            &[topo.paper_link(10)],
        )
        .unwrap();
        let s = outcome.success().unwrap();
        let y_attacked = &system.measure(&x).unwrap() + &s.manipulation;
        let rows: Vec<usize> = (0..system.num_paths()).filter(|&i| i != 5).collect();
        let y_sub: Vector = rows.iter().map(|&i| y_attacked[i]).collect();
        let deg = ConsistencyDetector::recommended()
            .inspect_degraded(&system, &rows, &y_sub)
            .unwrap();
        assert!(deg.degraded);
        assert!(deg.verdict.detected, "residual {}", deg.verdict.residual_l1);
    }

    #[test]
    fn zero_threshold_flags_any_inconsistency() {
        let system = fig1::fig1_system().unwrap();
        let detector = ConsistencyDetector::new(1e-6).unwrap();
        let mut y = system.measure(&Vector::filled(10, 15.0)).unwrap();
        // Perturb one redundant measurement out of the column space.
        y[0] += 50.0;
        let v = detector.inspect(&system, &y).unwrap();
        assert!(v.detected);
    }
}
