//! Threshold calibration for the consistency detector.
//!
//! Remark 4 says α "can be empirically determined" but the paper never
//! says how. The principled recipe: simulate (or record) clean
//! measurement rounds under the deployment's noise level and set α to a
//! high quantile of the clean residual distribution — bounding the
//! false-alarm rate by construction.

use rand::Rng;

use tomo_core::delay::{DelayModel, GaussianNoise};
use tomo_core::{CoreError, TomographySystem};
use tomo_linalg::norms;

use crate::ConsistencyDetector;

/// Calibrates α as the `quantile` (in `[0, 1]`) of clean-round residuals
/// over `rounds` simulated measurement rounds, scaled by `headroom`
/// (e.g. `1.25` for 25 % safety margin).
///
/// Returns the calibrated detector.
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`]-style core errors from the
/// underlying simulation; panics are reserved for invalid arguments.
///
/// # Panics
///
/// Panics if `rounds == 0`, `quantile ∉ [0, 1]`, or `headroom ≤ 0`.
pub fn calibrate_alpha<R: Rng + ?Sized>(
    system: &TomographySystem,
    delay_model: &DelayModel,
    noise: &GaussianNoise,
    quantile: f64,
    headroom: f64,
    rounds: usize,
    rng: &mut R,
) -> Result<ConsistencyDetector, CoreError> {
    assert!(rounds > 0, "calibration needs at least one round");
    assert!(
        (0.0..=1.0).contains(&quantile),
        "quantile must be in [0, 1], got {quantile}"
    );
    assert!(headroom > 0.0, "headroom must be positive, got {headroom}");

    let mut residuals = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let x = delay_model.sample(system.num_links(), rng);
        let y = noise.perturb(&system.measure(&x)?, rng);
        let estimate = system.estimate(&y)?;
        let reproj = system.routing_csr().mul_vec(&estimate)?;
        residuals.push(norms::l1(&(&reproj - &y)));
    }
    residuals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((quantile * (rounds - 1) as f64).round() as usize).min(rounds - 1);
    let alpha = residuals[idx] * headroom;
    Ok(ConsistencyDetector::new(alpha).expect("non-negative by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tomo_core::{fig1, params};

    #[test]
    fn calibrated_alpha_controls_false_alarms() {
        let system = fig1::fig1_system().unwrap();
        let delays = params::default_delay_model();
        let noise = GaussianNoise::new(2.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let detector =
            calibrate_alpha(&system, &delays, &noise, 0.99, 1.25, 200, &mut rng).unwrap();
        assert!(detector.alpha() > 0.0);

        // Fresh clean rounds: false alarms should be rare (≤ 5 %).
        let mut alarms = 0;
        let rounds = 100;
        for _ in 0..rounds {
            let x = delays.sample(system.num_links(), &mut rng);
            let y = noise.perturb(&system.measure(&x).unwrap(), &mut rng);
            if detector.inspect(&system, &y).unwrap().detected {
                alarms += 1;
            }
        }
        assert!(alarms <= 5, "{alarms} false alarms out of {rounds}");
    }

    #[test]
    fn zero_noise_calibrates_to_tiny_alpha() {
        let system = fig1::fig1_system().unwrap();
        let delays = params::default_delay_model();
        let noise = GaussianNoise::new(0.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let detector = calibrate_alpha(&system, &delays, &noise, 1.0, 2.0, 50, &mut rng).unwrap();
        // Clean noise-free residuals are numerically zero.
        assert!(detector.alpha() < 1e-6, "alpha {}", detector.alpha());
    }

    #[test]
    fn higher_noise_calibrates_higher_alpha() {
        let system = fig1::fig1_system().unwrap();
        let delays = params::default_delay_model();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let low = calibrate_alpha(
            &system,
            &delays,
            &GaussianNoise::new(1.0).unwrap(),
            0.95,
            1.0,
            100,
            &mut rng,
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let high = calibrate_alpha(
            &system,
            &delays,
            &GaussianNoise::new(8.0).unwrap(),
            0.95,
            1.0,
            100,
            &mut rng,
        )
        .unwrap();
        assert!(high.alpha() > low.alpha());
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let system = fig1::fig1_system().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let _ = calibrate_alpha(
            &system,
            &params::default_delay_model(),
            &GaussianNoise::new(1.0).unwrap(),
            0.9,
            1.0,
            0,
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let system = fig1::fig1_system().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = calibrate_alpha(
            &system,
            &params::default_delay_model(),
            &GaussianNoise::new(1.0).unwrap(),
            1.5,
            1.0,
            10,
            &mut rng,
        );
    }
}
