use std::sync::OnceLock;

use tomo_graph::{Graph, LinkId, NodeId, Path};
use tomo_linalg::cholesky::Cholesky;
use tomo_linalg::incremental::pseudo_inverse_drop_row;
use tomo_linalg::lstsq::NormalEquationsSolver;
use tomo_linalg::{CsrMatrix, LinalgError, Matrix, Vector};
use tomo_obs::LazyCounter;

use crate::{CoreError, LinkState, StateThresholds};

static ESTIMATOR_HITS: LazyCounter = LazyCounter::new("core.estimator_cache.hits");
static ESTIMATOR_BUILDS: LazyCounter = LazyCounter::new("core.estimator_cache.builds");
static DEGRADED_SOLVES: LazyCounter = LazyCounter::new("core.degraded.solves");
static DEGRADED_RIDGE: LazyCounter = LazyCounter::new("core.degraded.ridge");
static KERNEL_DENSE: LazyCounter = LazyCounter::new("core.kernel.dense");
static KERNEL_SPARSE: LazyCounter = LazyCounter::new("core.kernel.sparse");
static DELTA_SOLVES: LazyCounter = LazyCounter::new("core.estimator_cache.delta_solves");
static DELTA_COLLAPSES: LazyCounter = LazyCounter::new("core.estimator_cache.delta_collapses");

/// Routing matrices with at most this many cells (`|P|·|L|`) take the
/// dense construction path: materialize the dense `R` eagerly and
/// certify identifiability with an explicit Gaussian-elimination rank
/// computation. Above the gate the O(|P|·|L|²) rank pre-check (hours at
/// Rocketfuel scale) and the dense copy of `R` are skipped; the Cholesky
/// factorization of the Gram matrix — which construction performs
/// anyway — becomes the identifiability certificate instead.
pub const DENSE_KERNEL_MAX_CELLS: usize = 1 << 20;

/// Which construction/validation kernel a [`TomographySystem`] selected
/// (see [`TomographySystem::kernel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Dense routing matrix materialized eagerly; identifiability
    /// certified by an explicit rank computation.
    Dense,
    /// Routing kept in CSR only (the dense view materializes lazily on
    /// first request); identifiability certified by the Gram Cholesky.
    Sparse,
}

/// Regularization strength for the ridge fallback of
/// [`TomographySystem::solve_degraded`]: small enough to leave
/// identifiable links essentially unbiased, large enough to keep the
/// shifted Gram matrix positive definite under rank deficiency.
pub const DEFAULT_RIDGE_LAMBDA: f64 = 1e-6;

/// Lazily materialized derived operators of a fixed measurement system.
///
/// The pseudo-inverse `A = (RᵀR)⁻¹Rᵀ` and the consistency projector
/// `P = R·A` are pure functions of `R`; Monte-Carlo trials need them on
/// every LP build, so they are computed once per system and shared by
/// `&`-reference across worker threads ([`OnceLock`] makes a concurrent
/// first touch safe — every thread observes the same matrix).
#[derive(Debug, Clone, Default)]
struct EstimatorCache {
    pseudo_inverse: OnceLock<Matrix>,
    projector: OnceLock<Matrix>,
}

impl EstimatorCache {
    /// Derives the estimator for the system *minus* the routing rows in
    /// `dropped` (ascending) from the cached operators, by rank-1
    /// downdates of the Gram factor and Sherman–Morrison updates of the
    /// pseudo-inverse (when one is materialized) — never by
    /// refactorizing. One factor clone per delta batch; each dropped row
    /// then costs O(n²) rotations instead of a fresh factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotPositiveDefinite`] when removing some row
    /// collapses the Gram rank — the incremental engine's *rank
    /// certificate*; callers fall back to the ridge rebuild path.
    fn apply_path_delta(
        &self,
        solver: &NormalEquationsSolver,
        routing: &CsrMatrix,
        dropped: &[usize],
    ) -> Result<DeltaEstimator, LinalgError> {
        let chol0 = solver.dense_factor().ok_or(LinalgError::InvalidShape {
            reason: "apply_path_delta requires the dense Gram factor".to_string(),
        })?;
        let n = routing.cols();
        let mut chol = chol0.clone();
        let mut pinv = self.pseudo_inverse.get().cloned();
        // Pseudo-inverse columns correspond to surviving original rows;
        // track which original row each current column is.
        let mut col_map: Vec<usize> = (0..routing.rows()).collect();
        let mut w = Vector::zeros(n);
        for &row in dropped {
            let entries: Vec<(usize, f64)> = routing.row_iter(row).collect();
            if let Some(p) = pinv.take() {
                let col = col_map
                    .binary_search(&row)
                    .expect("dropped rows are ascending and unique");
                pinv = Some(pseudo_inverse_drop_row(&p, &chol, col, &entries)?);
                col_map.remove(col);
            }
            for &(j, v) in &entries {
                w[j] = v;
            }
            let downdated = chol.rank1_downdate(&w);
            for &(j, _) in &entries {
                w[j] = 0.0;
            }
            downdated?;
        }
        Ok(DeltaEstimator {
            chol,
            pinv,
            dropped: dropped.to_vec(),
        })
    }
}

/// The estimator of a system with routing rows removed, derived from the
/// cached full-system operators by rank-1 downdates (see
/// [`TomographySystem::apply_path_delta`]). Its existence certifies that
/// the surviving rows still span every link.
#[derive(Debug, Clone)]
pub struct DeltaEstimator {
    chol: Cholesky,
    pinv: Option<Matrix>,
    dropped: Vec<usize>,
}

impl DeltaEstimator {
    /// The downdated Gram factor.
    #[must_use]
    pub fn factor(&self) -> &Cholesky {
        &self.chol
    }

    /// The Sherman–Morrison-updated pseudo-inverse, present iff the full
    /// system's pseudo-inverse was already materialized when the delta
    /// was applied. Columns follow the surviving rows in ascending
    /// order.
    #[must_use]
    pub fn pseudo_inverse(&self) -> Option<&Matrix> {
        self.pinv.as_ref()
    }

    /// The rows this estimator excludes (ascending).
    #[must_use]
    pub fn dropped_rows(&self) -> &[usize] {
        &self.dropped
    }

    /// Least-squares estimate from the surviving measurements:
    /// `x̂ = (R′ᵀR′)⁻¹ R′ᵀ y′`, computed against the *full* routing CSR
    /// by zero-padding the dropped rows (their coefficients multiply
    /// zeros, so the product equals the restricted `R′ᵀy′` exactly).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] on shape mismatches.
    pub fn solve(
        &self,
        routing: &CsrMatrix,
        surviving_rows: &[usize],
        y_sub: &Vector,
    ) -> Result<Vector, CoreError> {
        if y_sub.len() != surviving_rows.len() {
            return Err(CoreError::DimensionMismatch {
                context: "delta_estimator: surviving measurement vector",
                expected: surviving_rows.len(),
                got: y_sub.len(),
            });
        }
        let mut y_full = Vector::zeros(routing.rows());
        for (k, &row) in surviving_rows.iter().enumerate() {
            y_full[row] = y_sub[k];
        }
        let atb = routing.mul_transpose_vec(&y_full)?;
        Ok(self.chol.solve(&atb)?)
    }
}

/// How [`TomographySystem::solve_degraded_with`] derives the degraded
/// estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedMode {
    /// Incremental when available (dense Gram factor cached, rank
    /// plausibly survives, `TOMO_INCREMENTAL` not `0`), rebuild
    /// otherwise. The default.
    #[default]
    Auto,
    /// Force the rank-1 downdate path (falls back to rebuild only when
    /// no dense factor exists or the downdate certifies rank collapse).
    Incremental,
    /// Force the historical rebuild path (row-subset rank check, QR or
    /// ridge) — the `TOMO_INCREMENTAL=0` behavior.
    Rebuild,
}

/// `false` when the `TOMO_INCREMENTAL` environment variable is `0` —
/// the escape hatch that pins every degraded solve to the rebuild path.
#[must_use]
pub fn incremental_enabled() -> bool {
    std::env::var("TOMO_INCREMENTAL").map_or(true, |v| v != "0")
}

/// A complete network-tomography measurement system: topology, monitors,
/// measurement paths, and the (identifiable) routing matrix with its
/// factorized estimator.
///
/// This is the object the paper calls "network tomography": it owns the
/// linear model `y = R x` (Eq. 1) and computes `x̂ = (RᵀR)⁻¹Rᵀy` (Eq. 2).
///
/// Construction validates the assumptions of Section II:
/// * every path runs between two distinct monitors,
/// * `R` has full column rank (every link metric is identifiable).
#[derive(Debug, Clone)]
pub struct TomographySystem {
    graph: Graph,
    monitors: Vec<NodeId>,
    paths: Vec<Path>,
    routing: OnceLock<Matrix>,
    routing_csr: CsrMatrix,
    solver: NormalEquationsSolver,
    cache: EstimatorCache,
    kernel: KernelKind,
}

impl TomographySystem {
    /// Builds and validates a measurement system.
    ///
    /// # Errors
    ///
    /// * [`CoreError::TooFewMonitors`] with fewer than 2 monitors,
    /// * [`CoreError::NoPaths`] with an empty path set,
    /// * [`CoreError::PathNotBetweenMonitors`] if some path's endpoints
    ///   are not two distinct monitors,
    /// * [`CoreError::NotIdentifiable`] if `R` lacks full column rank.
    pub fn new(graph: Graph, monitors: Vec<NodeId>, paths: Vec<Path>) -> Result<Self, CoreError> {
        Self::new_gated(graph, monitors, paths, DENSE_KERNEL_MAX_CELLS)
    }

    /// [`Self::new`] with an explicit dense-kernel gate, the testing
    /// seam for exercising the sparse construction path on small
    /// systems (`dense_gate_cells = 0` forces it).
    fn new_gated(
        graph: Graph,
        monitors: Vec<NodeId>,
        paths: Vec<Path>,
        dense_gate_cells: usize,
    ) -> Result<Self, CoreError> {
        let mut unique = monitors.clone();
        unique.sort();
        unique.dedup();
        if unique.len() < 2 {
            return Err(CoreError::TooFewMonitors { got: unique.len() });
        }
        if paths.is_empty() {
            return Err(CoreError::NoPaths);
        }
        for (i, p) in paths.iter().enumerate() {
            let s = p.source();
            let d = p.destination();
            // `unique` is sorted: binary search keeps validation
            // O(|P| log |M|) instead of the linear scan that showed up
            // in the Rocketfuel-scale build profile.
            if s == d || unique.binary_search(&s).is_err() || unique.binary_search(&d).is_err() {
                return Err(CoreError::PathNotBetweenMonitors { path_index: i });
            }
        }
        let num_links = graph.num_links();
        let routing_csr = build_routing_csr(&paths, num_links)?;
        let cells = paths.len().saturating_mul(num_links);
        let routing = OnceLock::new();
        let kernel = if cells <= dense_gate_cells {
            KernelKind::Dense
        } else {
            KernelKind::Sparse
        };
        if kernel == KernelKind::Dense {
            KERNEL_DENSE.inc();
            let dense = routing_csr.to_dense();
            let rank = tomo_linalg::rank::rank(&dense);
            if rank < num_links {
                return Err(CoreError::NotIdentifiable {
                    rank,
                    links: num_links,
                });
            }
            let _ = routing.set(dense);
        } else {
            KERNEL_SPARSE.inc();
        }
        // The Gram Cholesky below doubles as the identifiability
        // certificate on the sparse path: it succeeds iff RᵀR is
        // positive definite, i.e. iff R has full column rank. The
        // failing pivot index is a lower bound on the achieved rank.
        let solver = match NormalEquationsSolver::from_sparse(routing_csr.clone()) {
            Ok(s) => s,
            Err(tomo_linalg::LinalgError::NotPositiveDefinite { index })
                if kernel == KernelKind::Sparse =>
            {
                return Err(CoreError::NotIdentifiable {
                    rank: index,
                    links: num_links,
                });
            }
            Err(e) => return Err(e.into()),
        };
        Ok(TomographySystem {
            graph,
            monitors: unique,
            paths,
            routing,
            routing_csr,
            solver,
            cache: EstimatorCache::default(),
            kernel,
        })
    }

    /// Which construction/validation kernel the size gauge selected:
    /// [`KernelKind::Dense`] at or below [`DENSE_KERNEL_MAX_CELLS`]
    /// routing cells, [`KernelKind::Sparse`] above.
    #[must_use]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The network topology.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The monitor set (sorted, deduplicated).
    #[must_use]
    pub fn monitors(&self) -> &[NodeId] {
        &self.monitors
    }

    /// The measurement paths (row order of `R`).
    #[must_use]
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The routing matrix `R` (|paths| × |links|), dense view.
    ///
    /// Under the dense kernel this was materialized at construction;
    /// under the sparse kernel ([`Self::kernel`]) the first call expands
    /// the CSR form and caches it for the system's lifetime, so the hot
    /// sparse paths never pay for a matrix nobody asks for.
    #[must_use]
    pub fn routing_matrix(&self) -> &Matrix {
        self.routing.get_or_init(|| self.routing_csr.to_dense())
    }

    /// The routing matrix `R` in CSR form — the representation the hot
    /// kernels (measurement, Gram, consistency check) actually run on.
    #[must_use]
    pub fn routing_csr(&self) -> &CsrMatrix {
        &self.routing_csr
    }

    /// Sparsity statistics of the routing matrix.
    #[must_use]
    pub fn sparsity_stats(&self) -> SparsityStats {
        SparsityStats {
            nnz: self.routing_csr.nnz(),
            density: self.routing_csr.density(),
        }
    }

    /// Number of measurement paths `|P|`.
    #[must_use]
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Number of links `|L|`.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.graph.num_links()
    }

    /// Simulates clean end-to-end measurement: `y = R x` (Eq. 1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `x.len() ≠ |L|`.
    pub fn measure(&self, link_metrics: &Vector) -> Result<Vector, CoreError> {
        if link_metrics.len() != self.num_links() {
            return Err(CoreError::DimensionMismatch {
                context: "measure: link metric vector",
                expected: self.num_links(),
                got: link_metrics.len(),
            });
        }
        Ok(self.routing_csr.mul_vec(link_metrics)?)
    }

    /// The tomography inversion: `x̂ = (RᵀR)⁻¹Rᵀy` (Eq. 2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `y.len() ≠ |P|`.
    pub fn estimate(&self, measurements: &Vector) -> Result<Vector, CoreError> {
        if measurements.len() != self.num_paths() {
            return Err(CoreError::DimensionMismatch {
                context: "estimate: measurement vector",
                expected: self.num_paths(),
                got: measurements.len(),
            });
        }
        Ok(self.solver.solve(measurements)?)
    }

    /// The estimator matrix `A = (RᵀR)⁻¹Rᵀ` (|links| × |paths|), i.e. the
    /// linear response of `x̂` to measurements. The attack LPs are built
    /// directly on this matrix: `x̂(m) = x̂₀ + A m`.
    ///
    /// Materialized on first use and cached for the system's lifetime;
    /// later calls (from any thread) return the same `&`-reference.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures (cannot occur after successful
    /// construction).
    pub fn estimator_matrix(&self) -> Result<&Matrix, CoreError> {
        if let Some(a) = self.cache.pseudo_inverse.get() {
            ESTIMATOR_HITS.inc();
            return Ok(a);
        }
        let a = self.solver.pseudo_inverse()?;
        ESTIMATOR_BUILDS.inc();
        Ok(self.cache.pseudo_inverse.get_or_init(|| a))
    }

    /// The consistency projector `P = R·A` (|paths| × |paths|), mapping
    /// measurements onto the model-consistent subspace; `(I − P) y` is
    /// the residual the detector inspects, and the stealth constraints of
    /// the attack LPs are written against it.
    ///
    /// Cached like [`estimator_matrix`](Self::estimator_matrix).
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures (cannot occur after successful
    /// construction).
    pub fn projector(&self) -> Result<&Matrix, CoreError> {
        if let Some(p) = self.cache.projector.get() {
            ESTIMATOR_HITS.inc();
            return Ok(p);
        }
        let p = self.routing_csr.mul_mat(self.estimator_matrix()?)?;
        ESTIMATOR_BUILDS.inc();
        Ok(self.cache.projector.get_or_init(|| p))
    }

    /// Eagerly materializes the cached operators ([`estimator_matrix`]
    /// (Self::estimator_matrix) and [`projector`](Self::projector)).
    /// Call before fanning trials out across workers so no thread races
    /// to build them redundantly.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures (cannot occur after successful
    /// construction).
    pub fn warm_estimator_cache(&self) -> Result<(), CoreError> {
        self.projector()?;
        Ok(())
    }

    /// Estimates link metrics from a *surviving subset* of measurements —
    /// the graceful-degradation path after probe loss.
    ///
    /// `surviving_rows` are the path indices whose measurements arrived
    /// (ascending, duplicate-free) and `y_sub` their readings, in the same
    /// order. When the surviving rows still span all links, this is the
    /// exact least-squares inversion restricted to those rows. When rank
    /// collapsed below `|L|`, the exact estimator no longer exists: the
    /// solve falls back to ridge regularization
    /// ([`tomo_linalg::lstsq::solve_ridge`] with [`DEFAULT_RIDGE_LAMBDA`])
    /// and reports which links became unidentifiable so downstream
    /// detection can ignore their coordinates. Never panics on rank
    /// deficiency.
    ///
    /// # Errors
    ///
    /// * [`CoreError::DimensionMismatch`] if `y_sub.len()` differs from
    ///   `surviving_rows.len()`, a row index is out of range, rows are
    ///   not strictly ascending, or no rows survive,
    /// * [`CoreError::NonFiniteMeasurement`] if a surviving reading is
    ///   NaN or infinite (corrupted rows must be dropped, not ingested).
    pub fn solve_degraded(
        &self,
        surviving_rows: &[usize],
        y_sub: &Vector,
    ) -> Result<DegradedSolve, CoreError> {
        self.solve_degraded_with(surviving_rows, y_sub, DegradedMode::Auto)
    }

    /// [`Self::solve_degraded`] with an explicit engine choice — the
    /// seam parity tests use to pin the incremental path against the
    /// rebuild path without racing on `TOMO_INCREMENTAL`.
    ///
    /// # Errors
    ///
    /// See [`Self::solve_degraded`].
    pub fn solve_degraded_with(
        &self,
        surviving_rows: &[usize],
        y_sub: &Vector,
        mode: DegradedMode,
    ) -> Result<DegradedSolve, CoreError> {
        if y_sub.len() != surviving_rows.len() || surviving_rows.is_empty() {
            return Err(CoreError::DimensionMismatch {
                context: "solve_degraded: surviving measurement vector",
                expected: surviving_rows.len(),
                got: y_sub.len(),
            });
        }
        for (k, &row) in surviving_rows.iter().enumerate() {
            if row >= self.num_paths() || (k > 0 && surviving_rows[k - 1] >= row) {
                return Err(CoreError::DimensionMismatch {
                    context:
                        "solve_degraded: surviving rows must be strictly ascending path indices",
                    expected: self.num_paths(),
                    got: row,
                });
            }
        }
        for (k, &v) in y_sub.iter().enumerate() {
            if !v.is_finite() {
                return Err(CoreError::NonFiniteMeasurement { row: k });
            }
        }
        DEGRADED_SOLVES.inc();
        let try_incremental = match mode {
            DegradedMode::Rebuild => false,
            DegradedMode::Incremental => true,
            DegradedMode::Auto => incremental_enabled(),
        } && surviving_rows.len() < self.num_paths()
            && surviving_rows.len() >= self.num_links()
            && self.solver.dense_factor().is_some();
        if try_incremental {
            let dropped = complement_rows(surviving_rows, self.num_paths());
            match self
                .cache
                .apply_path_delta(&self.solver, &self.routing_csr, &dropped)
            {
                Ok(delta) => {
                    DELTA_SOLVES.inc();
                    let estimate = delta.solve(&self.routing_csr, surviving_rows, y_sub)?;
                    return Ok(DegradedSolve {
                        estimate,
                        surviving_rows: surviving_rows.to_vec(),
                        rank: self.num_links(),
                        unidentifiable: Vec::new(),
                        used_ridge: false,
                    });
                }
                Err(LinalgError::NotPositiveDefinite { .. }) => {
                    // Rank collapsed: the downdate is the certificate.
                    // Fall through to the rebuild path, which quantifies
                    // the collapse (rank, unidentifiable links) and
                    // ridge-regularizes.
                    DELTA_COLLAPSES.inc();
                }
                Err(e) => return Err(e.into()),
            }
        }
        let r_sub = self.routing_matrix().select_rows(surviving_rows);
        let rank = tomo_linalg::rank::rank(&r_sub);
        if rank == self.num_links() {
            let estimate = tomo_linalg::lstsq::solve(&r_sub, y_sub)?;
            return Ok(DegradedSolve {
                estimate,
                surviving_rows: surviving_rows.to_vec(),
                rank,
                unidentifiable: Vec::new(),
                used_ridge: false,
            });
        }
        DEGRADED_RIDGE.inc();
        let estimate = tomo_linalg::lstsq::solve_ridge(&r_sub, y_sub, DEFAULT_RIDGE_LAMBDA)?;
        let unidentifiable = tomo_linalg::lstsq::unidentifiable_columns(&r_sub)
            .into_iter()
            .map(LinkId)
            .collect();
        Ok(DegradedSolve {
            estimate,
            surviving_rows: surviving_rows.to_vec(),
            rank,
            unidentifiable,
            used_ridge: true,
        })
    }

    /// Derives the estimator for this system minus the routing rows in
    /// `dropped` (ascending, duplicate-free) by rank-1 downdates of the
    /// cached Gram factor — and Sherman–Morrison updates of the cached
    /// pseudo-inverse when one is materialized — instead of a fresh
    /// (ridge-)refactorization. This is the seam `tomo-fault` link-fail
    /// and stale-row faults ride through [`Self::solve_degraded`].
    ///
    /// # Errors
    ///
    /// * [`CoreError::DimensionMismatch`] if `dropped` is not strictly
    ///   ascending in range.
    /// * [`CoreError::Linalg`] with `NotPositiveDefinite` when removing
    ///   the rows collapses the Gram rank (the caller's cue to use the
    ///   ridge path), or `InvalidShape` when no dense factor is cached
    ///   (sparse-factor systems rebuild instead).
    pub fn apply_path_delta(&self, dropped: &[usize]) -> Result<DeltaEstimator, CoreError> {
        for (k, &row) in dropped.iter().enumerate() {
            if row >= self.num_paths() || (k > 0 && dropped[k - 1] >= row) {
                return Err(CoreError::DimensionMismatch {
                    context: "apply_path_delta: dropped rows must be strictly ascending",
                    expected: self.num_paths(),
                    got: row,
                });
            }
        }
        Ok(self
            .cache
            .apply_path_delta(&self.solver, &self.routing_csr, dropped)?)
    }

    /// Classifies the estimate per Definition 1.
    #[must_use]
    pub fn classify(&self, estimate: &Vector, thresholds: &StateThresholds) -> Vec<LinkState> {
        thresholds.classify_all(estimate)
    }

    /// Indices (as [`LinkId`]) whose state matches `state` under
    /// `thresholds`.
    #[must_use]
    pub fn links_in_state(
        &self,
        estimate: &Vector,
        thresholds: &StateThresholds,
        state: LinkState,
    ) -> Vec<LinkId> {
        estimate
            .iter()
            .enumerate()
            .filter(|(_, &m)| thresholds.classify(m) == state)
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Numerical health diagnostics of the measurement design.
    ///
    /// * `redundancy` — `|P| − |L|`, the number of consistency checks the
    ///   detector has to work with (0 ⇒ Theorem 3 makes every attack
    ///   invisible),
    /// * `normal_equations_condition` — `κ₁(RᵀR)`; large values mean
    ///   estimates amplify measurement noise,
    /// * `mean_path_length` — average links per path (longer paths blur
    ///   more links together).
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures (cannot occur after successful
    /// construction).
    pub fn diagnostics(&self) -> Result<SystemDiagnostics, CoreError> {
        let gram = self.routing_csr.gram();
        let condition = tomo_linalg::lu::condition_number_1(&gram)?;
        let mean_path_length =
            self.paths.iter().map(|p| p.num_links() as f64).sum::<f64>() / self.num_paths() as f64;
        Ok(SystemDiagnostics {
            redundancy: self.num_paths() - self.num_links(),
            normal_equations_condition: condition,
            mean_path_length,
        })
    }

    /// Paths (row indices) traversing any of `links`.
    #[must_use]
    pub fn paths_crossing_links(&self, links: &[LinkId]) -> Vec<usize> {
        self.paths
            .iter()
            .enumerate()
            .filter(|(_, p)| p.contains_any_link(links))
            .map(|(i, _)| i)
            .collect()
    }

    /// Paths (row indices) visiting any of `nodes`.
    #[must_use]
    pub fn paths_through_nodes(&self, nodes: &[NodeId]) -> Vec<usize> {
        self.paths
            .iter()
            .enumerate()
            .filter(|(_, p)| p.contains_any_node(nodes))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Result of a degraded estimation
/// (see [`TomographySystem::solve_degraded`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedSolve {
    /// The link-metric estimate (exact when `used_ridge` is false, ridge
    /// regularized otherwise). Coordinates listed in `unidentifiable`
    /// carry no information and must not be interpreted.
    pub estimate: Vector,
    /// The path indices the estimate was computed from.
    pub surviving_rows: Vec<usize>,
    /// Rank of the surviving routing submatrix.
    pub rank: usize,
    /// Links whose metric is not determined by the surviving rows
    /// (empty iff the solve stayed exact). Ascending.
    pub unidentifiable: Vec<LinkId>,
    /// Whether the ridge fallback was required.
    pub used_ridge: bool,
}

/// Sparsity statistics of a routing matrix
/// (see [`TomographySystem::sparsity_stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityStats {
    /// Stored (nonzero) entries — total links crossed over all paths.
    pub nnz: usize,
    /// `nnz / (|P| · |L|)`, the fraction of nonzero entries.
    pub density: f64,
}

/// Numerical health summary of a measurement design
/// (see [`TomographySystem::diagnostics`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemDiagnostics {
    /// Consistency checks available to the detector: `|P| − |L|`.
    pub redundancy: usize,
    /// 1-norm condition number of the normal-equations matrix `RᵀR`.
    pub normal_equations_condition: f64,
    /// Average number of links per measurement path.
    pub mean_path_length: f64,
}

/// Ascending complement of `surviving` (strictly ascending) in
/// `0..total`.
fn complement_rows(surviving: &[usize], total: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(total - surviving.len());
    let mut it = surviving.iter().copied().peekable();
    for row in 0..total {
        if it.peek() == Some(&row) {
            it.next();
        } else {
            out.push(row);
        }
    }
    out
}

/// Builds the 0/1 routing matrix `R` from a path list: `R[i][j] = 1` iff
/// link `j` lies on path `i` (Eq. 1).
#[must_use]
pub fn build_routing_matrix(paths: &[Path], num_links: usize) -> Matrix {
    let mut r = Matrix::zeros(paths.len(), num_links);
    for (i, p) in paths.iter().enumerate() {
        for l in p.links() {
            r[(i, l.index())] = 1.0;
        }
    }
    r
}

/// Builds the routing matrix in CSR form straight from the paths' link
/// lists, without a dense intermediate. `to_dense()` of the result equals
/// [`build_routing_matrix`] exactly.
///
/// # Errors
///
/// Returns [`CoreError`] if a path crosses a link index `>= num_links`
/// (impossible for paths built against the same graph).
pub fn build_routing_csr(paths: &[Path], num_links: usize) -> Result<CsrMatrix, CoreError> {
    let link_lists: Vec<Vec<usize>> = paths
        .iter()
        .map(|p| p.links().iter().map(|l| l.index()).collect())
        .collect();
    Ok(CsrMatrix::from_paths(&link_lists, num_links)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::Path;

    /// Triangle m0 - v - m1 (plus direct m0 - m1) where every node is a
    /// monitor: 4 paths over 3 links, rank 3, one redundant row.
    fn tiny_system() -> TomographySystem {
        let mut g = Graph::new();
        let m0 = g.add_node("m0");
        let v = g.add_node("v");
        let m1 = g.add_node("m1");
        g.add_link(m0, v).unwrap(); // l0
        g.add_link(v, m1).unwrap(); // l1
        g.add_link(m0, m1).unwrap(); // l2
        let paths = vec![
            Path::from_nodes(&g, &[m0, v]).unwrap(),
            Path::from_nodes(&g, &[v, m1]).unwrap(),
            Path::from_nodes(&g, &[m0, m1]).unwrap(),
            Path::from_nodes(&g, &[m0, v, m1]).unwrap(),
        ];
        TomographySystem::new(g, vec![m0, m1, v], paths).unwrap()
    }

    #[test]
    fn routing_matrix_structure() {
        let sys = tiny_system();
        let r = sys.routing_matrix();
        assert_eq!(r.shape(), (4, 3));
        // Path 3 (m0-v-m1) covers links 0 and 1.
        assert_eq!(r.row(3), &[1.0, 1.0, 0.0]);
        assert_eq!(sys.num_paths(), 4);
        assert_eq!(sys.num_links(), 3);
        assert_eq!(sys.monitors().len(), 3);
    }

    #[test]
    fn measure_then_estimate_roundtrips() {
        let sys = tiny_system();
        let x = Vector::from(vec![5.0, 7.0, 11.0]);
        let y = sys.measure(&x).unwrap();
        assert_eq!(y.len(), 4);
        assert_eq!(y[3], 12.0);
        let x_hat = sys.estimate(&y).unwrap();
        assert!(x_hat.approx_eq(&x, 1e-9));
    }

    #[test]
    fn estimator_matrix_matches_estimate() {
        let sys = tiny_system();
        let a = sys.estimator_matrix().unwrap();
        assert_eq!(a.shape(), (3, 4));
        let y = Vector::from(vec![1.0, 2.0, 3.0, 4.0]);
        let via_matrix = a.mul_vec(&y).unwrap();
        let via_solver = sys.estimate(&y).unwrap();
        assert!(via_matrix.approx_eq(&via_solver, 1e-9));
    }

    #[test]
    fn estimator_cache_shares_one_materialization() {
        let sys = tiny_system();
        let a1: *const Matrix = sys.estimator_matrix().unwrap();
        let a2: *const Matrix = sys.estimator_matrix().unwrap();
        assert!(std::ptr::eq(a1, a2), "second call must hit the cache");
        let p = sys.projector().unwrap();
        assert_eq!(p.shape(), (4, 4));
        // A projector is idempotent: P² = P.
        let pp = p.mul_mat(p).unwrap();
        assert!(pp.approx_eq(p, 1e-9));
        sys.warm_estimator_cache().unwrap();
        // Clones keep their own (already warmed) cache and still work.
        let cloned = sys.clone();
        assert!(cloned
            .estimator_matrix()
            .unwrap()
            .approx_eq(sys.estimator_matrix().unwrap(), 0.0));
    }

    #[test]
    fn degraded_solve_exact_when_rank_survives() {
        let sys = tiny_system();
        let x = Vector::from(vec![5.0, 7.0, 11.0]);
        let y = sys.measure(&x).unwrap();
        // Drop the redundant row 3; rows {0,1,2} are the identity on links.
        let rows = [0usize, 1, 2];
        let y_sub = Vector::from(vec![y[0], y[1], y[2]]);
        let d = sys.solve_degraded(&rows, &y_sub).unwrap();
        assert!(!d.used_ridge);
        assert_eq!(d.rank, 3);
        assert!(d.unidentifiable.is_empty());
        assert!(d.estimate.approx_eq(&x, 1e-9));
        assert_eq!(d.surviving_rows, rows);
    }

    #[test]
    fn degraded_solve_ridge_flags_unidentifiable_links() {
        let sys = tiny_system();
        let x = Vector::from(vec![5.0, 7.0, 11.0]);
        let y = sys.measure(&x).unwrap();
        // Keep only rows 2 (link 2 alone) and 3 (links 0+1): link 2 stays
        // identifiable, links 0 and 1 alias each other.
        let rows = [2usize, 3];
        let y_sub = Vector::from(vec![y[2], y[3]]);
        let d = sys.solve_degraded(&rows, &y_sub).unwrap();
        assert!(d.used_ridge);
        assert_eq!(d.rank, 2);
        assert_eq!(d.unidentifiable, vec![LinkId(0), LinkId(1)]);
        assert!(d.estimate.iter().all(|v| v.is_finite()));
        // The identifiable coordinate is still recovered (ridge bias is
        // O(lambda)).
        assert!((d.estimate[2] - 11.0).abs() < 1e-3);
    }

    #[test]
    fn degraded_solve_validates_input() {
        let sys = tiny_system();
        // Length mismatch.
        assert!(sys.solve_degraded(&[0, 1], &Vector::zeros(3)).is_err());
        // Empty subset.
        assert!(sys.solve_degraded(&[], &Vector::zeros(0)).is_err());
        // Out-of-range row.
        assert!(sys.solve_degraded(&[0, 9], &Vector::zeros(2)).is_err());
        // Not strictly ascending.
        assert!(sys.solve_degraded(&[1, 1], &Vector::zeros(2)).is_err());
        // Non-finite reading.
        let err = sys
            .solve_degraded(&[0, 1], &Vector::from(vec![1.0, f64::NAN]))
            .unwrap_err();
        assert!(matches!(err, CoreError::NonFiniteMeasurement { row: 1 }));
    }

    #[test]
    fn dimension_checks() {
        let sys = tiny_system();
        assert!(matches!(
            sys.measure(&Vector::zeros(2)),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            sys.estimate(&Vector::zeros(3)),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn classification_helpers() {
        let sys = tiny_system();
        let t = StateThresholds::new(100.0, 800.0).unwrap();
        let est = Vector::from(vec![50.0, 400.0, 900.0]);
        assert_eq!(
            sys.classify(&est, &t),
            vec![LinkState::Normal, LinkState::Uncertain, LinkState::Abnormal]
        );
        assert_eq!(
            sys.links_in_state(&est, &t, LinkState::Abnormal),
            vec![LinkId(2)]
        );
        assert_eq!(
            sys.links_in_state(&est, &t, LinkState::Normal),
            vec![LinkId(0)]
        );
    }

    #[test]
    fn path_queries() {
        let sys = tiny_system();
        // Paths crossing link 0 (m0-v): path 0 and path 3.
        assert_eq!(sys.paths_crossing_links(&[LinkId(0)]), vec![0, 3]);
        // Paths through node v: 0, 1, 3.
        let v = sys.graph().node_by_label("v").unwrap();
        assert_eq!(sys.paths_through_nodes(&[v]), vec![0, 1, 3]);
        assert!(sys.paths_crossing_links(&[]).is_empty());
    }

    #[test]
    fn rejects_rank_deficient_path_sets() {
        let mut g = Graph::new();
        let m0 = g.add_node("m0");
        let v = g.add_node("v");
        let m1 = g.add_node("m1");
        g.add_link(m0, v).unwrap();
        g.add_link(v, m1).unwrap();
        let p = Path::from_nodes(&g, &[m0, v, m1]).unwrap();
        let err = TomographySystem::new(g, vec![m0, m1], vec![p]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotIdentifiable { rank: 1, links: 2 }
        ));
    }

    #[test]
    fn rejects_path_not_between_monitors() {
        let mut g = Graph::new();
        let m0 = g.add_node("m0");
        let v = g.add_node("v");
        let m1 = g.add_node("m1");
        g.add_link(m0, v).unwrap();
        g.add_link(v, m1).unwrap();
        let p_bad = Path::from_nodes(&g, &[m0, v]).unwrap(); // v not monitor
        let err = TomographySystem::new(g, vec![m0, m1], vec![p_bad]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::PathNotBetweenMonitors { path_index: 0 }
        ));
    }

    #[test]
    fn rejects_too_few_monitors_and_no_paths() {
        let mut g = Graph::new();
        let m0 = g.add_node("m0");
        let v = g.add_node("v");
        g.add_link(m0, v).unwrap();
        assert!(matches!(
            TomographySystem::new(g.clone(), vec![m0, m0], vec![]),
            Err(CoreError::TooFewMonitors { got: 1 })
        ));
        assert!(matches!(
            TomographySystem::new(g, vec![m0, v], vec![]),
            Err(CoreError::NoPaths)
        ));
    }

    #[test]
    fn diagnostics_report_redundancy_and_conditioning() {
        let sys = tiny_system();
        let d = sys.diagnostics().unwrap();
        assert_eq!(d.redundancy, 1); // 4 paths − 3 links
        assert!(d.normal_equations_condition >= 1.0);
        assert!(
            d.normal_equations_condition < 1e6,
            "tiny system is well-conditioned"
        );
        // Paths: 1 + 1 + 1 + 2 links = 5/4.
        assert!((d.mean_path_length - 1.25).abs() < 1e-12);
    }

    #[test]
    fn build_routing_matrix_empty() {
        let r = build_routing_matrix(&[], 5);
        assert_eq!(r.shape(), (0, 5));
        assert_eq!(build_routing_csr(&[], 5).unwrap().shape(), (0, 5));
    }

    #[test]
    fn sparse_kernel_matches_dense_kernel() {
        // Rebuild the tiny system with the dense gate forced shut: the
        // sparse construction path must accept it, defer the dense
        // routing view, and produce identical estimates.
        let dense_sys = tiny_system();
        let g = dense_sys.graph().clone();
        let monitors = dense_sys.monitors().to_vec();
        let paths = dense_sys.paths().to_vec();
        let sparse_sys = TomographySystem::new_gated(g, monitors, paths, 0).unwrap();
        assert_eq!(dense_sys.kernel(), KernelKind::Dense);
        assert_eq!(sparse_sys.kernel(), KernelKind::Sparse);

        let x = Vector::from(vec![5.0, 7.0, 11.0]);
        let y_d = dense_sys.measure(&x).unwrap();
        let y_s = sparse_sys.measure(&x).unwrap();
        for (a, b) in y_d.iter().zip(y_s.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let e_d = dense_sys.estimate(&y_d).unwrap();
        let e_s = sparse_sys.estimate(&y_s).unwrap();
        for (a, b) in e_d.iter().zip(e_s.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "same solver, same bits");
        }
        // The lazy dense view expands to the same matrix.
        assert_eq!(sparse_sys.routing_matrix(), dense_sys.routing_matrix());
        // Degraded solves (which need the dense view) still work.
        let rows = [0usize, 1, 2];
        let y_sub = Vector::from(vec![y_s[0], y_s[1], y_s[2]]);
        let d = sparse_sys.solve_degraded(&rows, &y_sub).unwrap();
        assert!(d.estimate.approx_eq(&x, 1e-9));
    }

    #[test]
    fn sparse_kernel_rejects_rank_deficiency_via_cholesky() {
        // One path over two links: not identifiable. The sparse path
        // must report NotIdentifiable (from the Gram Cholesky), not a
        // raw linalg error.
        let mut g = Graph::new();
        let m0 = g.add_node("m0");
        let v = g.add_node("v");
        let m1 = g.add_node("m1");
        g.add_link(m0, v).unwrap();
        g.add_link(v, m1).unwrap();
        let p = Path::from_nodes(&g, &[m0, v, m1]).unwrap();
        let err = TomographySystem::new_gated(g, vec![m0, m1], vec![p], 0).unwrap_err();
        match err {
            CoreError::NotIdentifiable { rank, links } => {
                assert!(rank < links, "rank bound {rank} must be below {links}");
                assert_eq!(links, 2);
            }
            other => panic!("expected NotIdentifiable, got {other:?}"),
        }
    }

    #[test]
    fn incremental_and_rebuild_degraded_solves_agree() {
        let sys = tiny_system();
        let x = Vector::from(vec![5.0, 7.0, 11.0]);
        let y = sys.measure(&x).unwrap();
        let rows = [0usize, 1, 2];
        let y_sub = Vector::from(vec![y[0], y[1], y[2]]);
        let inc = sys
            .solve_degraded_with(&rows, &y_sub, DegradedMode::Incremental)
            .unwrap();
        let reb = sys
            .solve_degraded_with(&rows, &y_sub, DegradedMode::Rebuild)
            .unwrap();
        assert!(!inc.used_ridge);
        assert_eq!(inc.rank, reb.rank);
        assert_eq!(inc.unidentifiable, reb.unidentifiable);
        assert!(inc.estimate.approx_eq(&reb.estimate, 1e-9));
        assert!(inc.estimate.approx_eq(&x, 1e-9));
    }

    #[test]
    fn incremental_mode_falls_back_on_rank_collapse() {
        let sys = tiny_system();
        let x = Vector::from(vec![5.0, 7.0, 11.0]);
        let y = sys.measure(&x).unwrap();
        // Rows {2, 3} leave links 0 and 1 aliased: the downdate chain
        // must certify the collapse and the ridge rebuild must take
        // over, identically to the forced-rebuild result.
        let rows = [2usize, 3];
        let y_sub = Vector::from(vec![y[2], y[3]]);
        let inc = sys
            .solve_degraded_with(&rows, &y_sub, DegradedMode::Incremental)
            .unwrap();
        let reb = sys
            .solve_degraded_with(&rows, &y_sub, DegradedMode::Rebuild)
            .unwrap();
        assert!(inc.used_ridge && reb.used_ridge);
        assert_eq!(inc.rank, 2);
        assert_eq!(inc.unidentifiable, vec![LinkId(0), LinkId(1)]);
        for (a, b) in inc.estimate.iter().zip(reb.estimate.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "identical ridge fallback");
        }
    }

    #[test]
    fn apply_path_delta_updates_factor_and_pinv() {
        let sys = tiny_system();
        // Materialize the pseudo-inverse first so the delta path has to
        // Sherman–Morrison it.
        sys.warm_estimator_cache().unwrap();
        let delta = sys.apply_path_delta(&[3]).unwrap();
        assert_eq!(delta.dropped_rows(), &[3]);
        let pinv = delta.pseudo_inverse().expect("cache was warm");
        assert_eq!(pinv.shape(), (3, 3));
        // Against a cold rebuild of the 3-row system.
        let g = sys.graph().clone();
        let monitors = sys.monitors().to_vec();
        let paths = sys.paths()[..3].to_vec();
        let small = TomographySystem::new(g, monitors, paths).unwrap();
        let cold_pinv = small.estimator_matrix().unwrap();
        assert!(pinv.approx_eq(cold_pinv, 1e-9));
        // Validation and the rank certificate.
        assert!(sys.apply_path_delta(&[3, 3]).is_err());
        assert!(sys.apply_path_delta(&[9]).is_err());
        let err = sys.apply_path_delta(&[0, 3]).unwrap_err();
        assert!(matches!(err, CoreError::Linalg(_)));
    }

    #[test]
    fn csr_matches_dense_routing() {
        let sys = tiny_system();
        assert_eq!(&sys.routing_csr().to_dense(), sys.routing_matrix());
        let stats = sys.sparsity_stats();
        assert_eq!(stats.nnz, 5); // paths cover 1 + 1 + 1 + 2 links
        assert!((stats.density - 5.0 / 12.0).abs() < 1e-15);
        // The sparse measurement path is bit-identical to the dense one.
        let x = Vector::from(vec![0.3, -1.7, 2.5]);
        let sparse = sys.measure(&x).unwrap();
        let dense = sys.routing_matrix().mul_vec(&x).unwrap();
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
