//! Monitor placement with identifiability.
//!
//! The paper selects "monitors and measurement paths according to a random
//! selection algorithm based on the minimum monitor placement rule in
//! \[16\]". This module implements that contract without the full machinery
//! of \[16\] (see DESIGN.md's substitution table): monitors are added in
//! random order, candidate paths come from Yen's k-shortest paths per
//! monitor pair, and placement stops as soon as the selected path set has
//! full column rank.
//!
//! It also implements the paper's *Section VI proposal* as an extension:
//! [`security_aware_placement`] keeps adding monitors beyond
//! identifiability to minimize the worst single node's presence ratio on
//! measurement paths — the quantity Theorem 2 ties to attack success.

use rand::seq::SliceRandom;
use rand::Rng;

use tomo_graph::{shortest, Graph, NodeId, Path};
use tomo_linalg::rank::IncrementalRank;

use crate::selection::path_row;
use crate::{CoreError, TomographySystem};

/// Configuration for randomized monitor placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementConfig {
    /// Candidate paths per monitor pair (Yen's k).
    pub paths_per_pair: usize,
    /// Redundant paths appended after identifiability is reached, as a
    /// fraction of the link count (rounded down). Redundancy is what makes
    /// detection possible at all — Theorem 3 says a square `R` hides
    /// every attack.
    pub redundancy_fraction: f64,
    /// Upper bound on the number of monitors (`None` = up to all nodes).
    pub max_monitors: Option<usize>,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            paths_per_pair: 6,
            redundancy_fraction: 0.5,
            max_monitors: None,
        }
    }
}

/// Randomized identifiability-driven placement.
///
/// Adds monitors in a random order; after each addition, pulls Yen's
/// k-shortest paths between the new monitor and every existing monitor,
/// keeping each path that increases the routing-matrix rank. Terminates
/// when rank = |L|, then appends redundant paths per
/// [`PlacementConfig::redundancy_fraction`].
///
/// # Errors
///
/// * [`CoreError::PlacementFailed`] if the monitor budget is exhausted
///   before identifiability (with all nodes as monitors this can only
///   happen on disconnected graphs or graphs with < 2 nodes).
/// * Propagates graph/linalg errors.
pub fn random_placement<R: Rng + ?Sized>(
    graph: &Graph,
    config: &PlacementConfig,
    rng: &mut R,
) -> Result<TomographySystem, CoreError> {
    if graph.num_nodes() < 2 || graph.num_links() == 0 {
        return Err(CoreError::PlacementFailed {
            reason: format!(
                "graph with {} nodes / {} links cannot host tomography",
                graph.num_nodes(),
                graph.num_links()
            ),
        });
    }
    let num_links = graph.num_links();
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.shuffle(rng);
    let budget = config.max_monitors.unwrap_or(graph.num_nodes());

    let mut monitors: Vec<NodeId> = Vec::new();
    let mut tracker = IncrementalRank::new(num_links);
    let mut chosen: Vec<Path> = Vec::new();
    let mut skipped: Vec<Path> = Vec::new();

    for &candidate in order.iter().take(budget) {
        // Pull candidate paths from the new monitor to each existing one.
        for &existing in &monitors {
            let paths =
                shortest::yen_k_shortest(graph, existing, candidate, config.paths_per_pair)?;
            for p in paths {
                if tracker.try_add(&path_row(&p, num_links)) {
                    chosen.push(p);
                } else {
                    skipped.push(p);
                }
            }
        }
        monitors.push(candidate);
        if tracker.is_full() {
            break;
        }
    }

    if !tracker.is_full() {
        return Err(CoreError::PlacementFailed {
            reason: format!(
                "rank {}/{} after {} monitors (budget {budget})",
                tracker.rank(),
                num_links,
                monitors.len()
            ),
        });
    }

    let extra = ((num_links as f64) * config.redundancy_fraction).floor() as usize;
    chosen.extend(skipped.into_iter().take(extra));
    TomographySystem::new(graph.clone(), monitors, chosen)
}

/// Presence ratio of each node on the system's measurement paths:
/// `presence[v] = |{paths visiting v}| / |P|`.
///
/// Monitors trivially have high presence; the security-relevant quantity
/// is the maximum over *non-monitor* nodes, which
/// [`max_internal_presence_ratio`] reports.
#[must_use]
pub fn node_presence_ratios(system: &TomographySystem) -> Vec<f64> {
    let total = system.num_paths() as f64;
    system
        .graph()
        .nodes()
        .map(|v| system.paths_through_nodes(&[v]).len() as f64 / total)
        .collect()
}

/// The worst (largest) presence ratio among non-monitor nodes — the
/// exposure a single compromised internal node would gain.
#[must_use]
pub fn max_internal_presence_ratio(system: &TomographySystem) -> f64 {
    let ratios = node_presence_ratios(system);
    system
        .graph()
        .nodes()
        .filter(|v| !system.monitors().contains(v))
        .map(|v| ratios[v.index()])
        .fold(0.0, f64::max)
}

/// Security-aware placement (the paper's Section VI proposal): run
/// [`random_placement`] `trials` times and keep the system whose worst
/// internal presence ratio is smallest.
///
/// # Errors
///
/// Returns the last placement failure if *no* trial succeeds.
pub fn security_aware_placement<R: Rng + ?Sized>(
    graph: &Graph,
    config: &PlacementConfig,
    trials: usize,
    rng: &mut R,
) -> Result<TomographySystem, CoreError> {
    let mut best: Option<(f64, TomographySystem)> = None;
    let mut last_err = None;
    for _ in 0..trials.max(1) {
        match random_placement(graph, config, rng) {
            Ok(system) => {
                let exposure = max_internal_presence_ratio(&system);
                if best.as_ref().is_none_or(|(b, _)| exposure < *b) {
                    best = Some((exposure, system));
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    match best {
        Some((_, system)) => Ok(system),
        None => Err(last_err.unwrap_or(CoreError::PlacementFailed {
            reason: "no trials executed".into(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tomo_graph::{isp, rgg, topology};

    #[test]
    fn places_on_fig1() {
        let f = topology::fig1();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sys = random_placement(&f.graph, &PlacementConfig::default(), &mut rng)
            .expect("fig1 is identifiable");
        assert_eq!(sys.num_links(), 10);
        assert!(sys.num_paths() >= 10);
        // Redundancy: default fraction 0.5 ⇒ up to 5 extra rows.
        assert!(sys.num_paths() <= 10 + 5);
    }

    #[test]
    fn places_on_isp_topology() {
        let mut rng = ChaCha8Rng::seed_from_u64(1221);
        let g = isp::generate(&isp::IspConfig::default(), &mut rng).unwrap();
        let sys = random_placement(&g, &PlacementConfig::default(), &mut rng)
            .expect("connected ISP graph is identifiable with enough monitors");
        assert_eq!(sys.num_links(), g.num_links());
        assert!(sys.num_paths() > g.num_links(), "need redundant rows");
    }

    #[test]
    fn places_on_wireless_topology() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let topo = rgg::RggConfig {
            num_nodes: 50,
            ..rgg::RggConfig::default()
        }
        .generate(&mut rng)
        .unwrap();
        let sys = random_placement(&topo.graph, &PlacementConfig::default(), &mut rng)
            .expect("connected RGG is identifiable");
        assert_eq!(sys.num_links(), topo.graph.num_links());
    }

    #[test]
    fn budget_too_small_fails() {
        let f = topology::fig1();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = PlacementConfig {
            max_monitors: Some(2),
            ..PlacementConfig::default()
        };
        // 2 monitors cannot identify all 10 Fig. 1 links.
        assert!(matches!(
            random_placement(&f.graph, &config, &mut rng),
            Err(CoreError::PlacementFailed { .. })
        ));
    }

    #[test]
    fn trivial_graphs_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = Graph::with_nodes(1);
        assert!(random_placement(&g, &PlacementConfig::default(), &mut rng).is_err());
        let g2 = Graph::with_nodes(3); // no links
        assert!(random_placement(&g2, &PlacementConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn presence_ratios_are_probabilities() {
        let f = topology::fig1();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let sys = random_placement(&f.graph, &PlacementConfig::default(), &mut rng).unwrap();
        let ratios = node_presence_ratios(&sys);
        assert_eq!(ratios.len(), 7);
        assert!(ratios.iter().all(|&r| (0.0..=1.0).contains(&r)));
        let max_internal = max_internal_presence_ratio(&sys);
        assert!((0.0..=1.0).contains(&max_internal));
    }

    #[test]
    fn security_aware_is_no_worse_than_single_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = isp::generate(&isp::IspConfig::default(), &mut rng).unwrap();
        let cfg = PlacementConfig::default();

        let mut rng_a = ChaCha8Rng::seed_from_u64(100);
        let single = random_placement(&g, &cfg, &mut rng_a).unwrap();
        let single_exposure = max_internal_presence_ratio(&single);

        // Same RNG stream: the first security-aware trial IS the single
        // placement, so the minimum over 5 trials cannot be worse.
        let mut rng_b = ChaCha8Rng::seed_from_u64(100);
        let secure = security_aware_placement(&g, &cfg, 5, &mut rng_b).unwrap();
        let secure_exposure = max_internal_presence_ratio(&secure);
        assert!(secure_exposure <= single_exposure + 1e-12);
    }

    #[test]
    fn determinism_per_seed() {
        let f = topology::fig1();
        let a = random_placement(
            &f.graph,
            &PlacementConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(9),
        )
        .unwrap();
        let b = random_placement(
            &f.graph,
            &PlacementConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(9),
        )
        .unwrap();
        assert_eq!(a.monitors(), b.monitors());
        assert_eq!(a.paths(), b.paths());
    }
}
