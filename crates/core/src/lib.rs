//! The network-tomography engine: monitors, measurement paths, routing
//! matrices, estimation, and link-state classification.
//!
//! This crate implements Section II of the scapegoating paper:
//!
//! * the linear measurement model `y = R x` (Eq. 1) with the routing
//!   matrix `R` built from monitor-to-monitor measurement paths,
//! * the least-squares estimator `x̂ = (RᵀR)⁻¹Rᵀy` (Eq. 2),
//! * the three-state link classifier of Definition 1
//!   (normal / uncertain / abnormal with thresholds `b_l`, `b_u`),
//! * identifiability-driven monitor placement and measurement-path
//!   selection (`R` full column rank), and
//! * the delay/noise simulation models of Section V-A.
//!
//! # Example
//!
//! Build the paper's Fig. 1 measurement system and run clean tomography:
//!
//! ```
//! use tomo_core::fig1::fig1_system;
//! use tomo_core::params;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), tomo_core::CoreError> {
//! let system = fig1_system()?;
//! assert_eq!(system.num_paths(), 23);   // the paper's path count
//! assert_eq!(system.num_links(), 10);
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let x = params::default_delay_model().sample(system.num_links(), &mut rng);
//! let y = system.measure(&x)?;
//! let x_hat = system.estimate(&y)?;
//! assert!(x_hat.approx_eq(&x, 1e-6));   // noise-free tomography is exact
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod state;
mod system;

pub mod delay;
pub mod fig1;
pub mod identifiability;
pub mod metrics;
pub mod params;
pub mod placement;
pub mod selection;

pub use error::CoreError;
pub use state::{LinkState, StateThresholds};
pub use system::{
    build_routing_csr, incremental_enabled, DegradedMode, DegradedSolve, DeltaEstimator,
    KernelKind, SystemDiagnostics, TomographySystem, DEFAULT_RIDGE_LAMBDA, DENSE_KERNEL_MAX_CELLS,
};
