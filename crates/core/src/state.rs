use serde::{Deserialize, Serialize};

/// The three-state link classification of Definition 1.
///
/// A link is *normal* when its metric is below `b_l`, *abnormal* above
/// `b_u`, and *uncertain* in between — the intermediate band the paper's
/// obfuscation strategy exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkState {
    /// Metric `< b_l`: the link looks healthy.
    Normal,
    /// Metric in `[b_l, b_u]`: cannot be clearly classified.
    Uncertain,
    /// Metric `> b_u`: the link looks like the root cause of a problem.
    Abnormal,
}

impl std::fmt::Display for LinkState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LinkState::Normal => "normal",
            LinkState::Uncertain => "uncertain",
            LinkState::Abnormal => "abnormal",
        };
        f.write_str(s)
    }
}

/// Classification thresholds `(b_l, b_u)` of Definition 1.
///
/// The paper's experiments (Section V-A) use delays with
/// `b_l = 100 ms` and `b_u = 800 ms`; see [`crate::params`].
///
/// ```
/// use tomo_core::{LinkState, StateThresholds};
///
/// let t = StateThresholds::new(100.0, 800.0).unwrap();
/// assert_eq!(t.classify(20.0), LinkState::Normal);
/// assert_eq!(t.classify(400.0), LinkState::Uncertain);
/// assert_eq!(t.classify(900.0), LinkState::Abnormal);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateThresholds {
    lower: f64,
    upper: f64,
}

impl StateThresholds {
    /// Creates thresholds with `lower ≤ upper`.
    ///
    /// Returns `None` if the ordering is violated or a bound is not
    /// finite.
    #[must_use]
    pub fn new(lower: f64, upper: f64) -> Option<Self> {
        if lower.is_finite() && upper.is_finite() && lower <= upper {
            Some(StateThresholds { lower, upper })
        } else {
            None
        }
    }

    /// Two-state variant (`b = b_l = b_u`, Remark 1): no uncertain band.
    ///
    /// Returns `None` if `threshold` is not finite.
    #[must_use]
    pub fn two_state(threshold: f64) -> Option<Self> {
        StateThresholds::new(threshold, threshold)
    }

    /// The lower bound `b_l`.
    #[must_use]
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// The upper bound `b_u`.
    #[must_use]
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Classifies a single metric value per Definition 1.
    #[must_use]
    pub fn classify(&self, metric: f64) -> LinkState {
        if metric < self.lower {
            LinkState::Normal
        } else if metric > self.upper {
            LinkState::Abnormal
        } else {
            LinkState::Uncertain
        }
    }

    /// Classifies every entry of a metric vector.
    #[must_use]
    pub fn classify_all(&self, metrics: &tomo_linalg::Vector) -> Vec<LinkState> {
        metrics.iter().map(|&m| self.classify(m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_linalg::Vector;

    #[test]
    fn boundaries_are_uncertain() {
        let t = StateThresholds::new(100.0, 800.0).unwrap();
        assert_eq!(t.classify(100.0), LinkState::Uncertain);
        assert_eq!(t.classify(800.0), LinkState::Uncertain);
        assert_eq!(t.classify(99.999), LinkState::Normal);
        assert_eq!(t.classify(800.001), LinkState::Abnormal);
        assert_eq!(t.lower(), 100.0);
        assert_eq!(t.upper(), 800.0);
    }

    #[test]
    fn two_state_has_no_band_interior() {
        let t = StateThresholds::two_state(500.0).unwrap();
        assert_eq!(t.classify(499.0), LinkState::Normal);
        assert_eq!(t.classify(500.0), LinkState::Uncertain); // the single point
        assert_eq!(t.classify(501.0), LinkState::Abnormal);
    }

    #[test]
    fn invalid_thresholds_rejected() {
        assert!(StateThresholds::new(800.0, 100.0).is_none());
        assert!(StateThresholds::new(f64::NAN, 1.0).is_none());
        assert!(StateThresholds::new(0.0, f64::INFINITY).is_none());
        assert!(StateThresholds::two_state(f64::NAN).is_none());
    }

    #[test]
    fn classify_all_matches_pointwise() {
        let t = StateThresholds::new(100.0, 800.0).unwrap();
        let v = Vector::from(vec![10.0, 400.0, 900.0]);
        assert_eq!(
            t.classify_all(&v),
            vec![LinkState::Normal, LinkState::Uncertain, LinkState::Abnormal]
        );
    }

    #[test]
    fn display() {
        assert_eq!(LinkState::Normal.to_string(), "normal");
        assert_eq!(LinkState::Uncertain.to_string(), "uncertain");
        assert_eq!(LinkState::Abnormal.to_string(), "abnormal");
    }
}
