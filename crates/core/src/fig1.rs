//! The paper's Fig. 1 measurement setup: the 7-node example network with
//! its canonical 23-path measurement plan.
//!
//! The topology itself lives in [`tomo_graph::topology::fig1`]; this
//! module reconstructs the measurement-path selection. The paper states
//! 23 paths were chosen from the monitor-to-monitor simple paths (the
//! topology has exactly 32) but never prints the list, so we fix a
//! canonical, deterministic choice: enumerate all 32 in sorted order,
//! greedily take the rank-increasing ones (10 paths reach full rank),
//! then fill with the remaining shortest paths up to 23.

use tomo_graph::topology::{self, Fig1Topology};
use tomo_graph::{enumerate, Path};

use crate::selection::select_identifiable_paths;
use crate::{CoreError, TomographySystem};

/// Number of measurement paths in the paper's Fig. 1 setup.
pub const FIG1_NUM_PATHS: usize = 23;

/// All 32 monitor-to-monitor simple paths of the Fig. 1 network, in
/// canonical (sorted) order.
///
/// # Errors
///
/// Propagates graph errors (cannot occur for the fixed topology).
pub fn fig1_all_simple_paths() -> Result<Vec<Path>, CoreError> {
    let f = topology::fig1();
    Ok(enumerate::simple_paths_between_terminals(
        &f.graph,
        &f.monitors,
        10,
        10_000,
    )?)
}

/// The canonical 23-path selection.
///
/// # Errors
///
/// Propagates graph errors (cannot occur for the fixed topology).
pub fn fig1_paths() -> Result<Vec<Path>, CoreError> {
    let pool = fig1_all_simple_paths()?;
    let outcome = select_identifiable_paths(&pool, 10, FIG1_NUM_PATHS - 10);
    debug_assert_eq!(outcome.rank, 10);
    Ok(outcome.paths)
}

/// The complete Fig. 1 tomography system (23 paths, 10 links, monitors
/// `M1, M2, M3`).
///
/// # Errors
///
/// Propagates construction errors (cannot occur for the fixed topology).
///
/// ```
/// let sys = tomo_core::fig1::fig1_system().unwrap();
/// assert_eq!(sys.num_paths(), 23);
/// assert_eq!(sys.num_links(), 10);
/// ```
pub fn fig1_system() -> Result<TomographySystem, CoreError> {
    let f = fig1_topology();
    let paths = fig1_paths()?;
    TomographySystem::new(f.graph, f.monitors, paths)
}

/// Re-export of the annotated topology (graph + monitors + attackers).
#[must_use]
pub fn fig1_topology() -> Fig1Topology {
    topology::fig1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_linalg::Vector;

    #[test]
    fn canonical_selection_is_23_paths_rank_10() {
        let paths = fig1_paths().unwrap();
        assert_eq!(paths.len(), FIG1_NUM_PATHS);
        let sys = fig1_system().unwrap();
        assert_eq!(sys.num_paths(), 23);
        assert_eq!(sys.num_links(), 10);
        assert_eq!(tomo_linalg::rank::rank(sys.routing_matrix()), 10);
    }

    #[test]
    fn selection_is_deterministic() {
        assert_eq!(fig1_paths().unwrap(), fig1_paths().unwrap());
    }

    #[test]
    fn pool_has_32_paths() {
        assert_eq!(fig1_all_simple_paths().unwrap().len(), 32);
    }

    #[test]
    fn noise_free_tomography_is_exact_on_fig1() {
        let sys = fig1_system().unwrap();
        let x = Vector::from(vec![3.0, 7.0, 2.0, 9.0, 4.0, 6.0, 8.0, 1.0, 5.0, 10.0]);
        let y = sys.measure(&x).unwrap();
        let x_hat = sys.estimate(&y).unwrap();
        assert!(x_hat.approx_eq(&x, 1e-8));
    }

    #[test]
    fn every_link_is_covered_by_some_path() {
        let sys = fig1_system().unwrap();
        let r = sys.routing_matrix();
        for j in 0..10 {
            let covered = (0..23).any(|i| r[(i, j)] == 1.0);
            assert!(covered, "link {j} uncovered");
        }
    }

    #[test]
    fn attackers_cover_many_paths() {
        // B and C "are on many measurement paths" (Section V-B) — the
        // premise of the running example.
        let sys = fig1_system().unwrap();
        let f = fig1_topology();
        let touched = sys.paths_through_nodes(&f.attackers).len();
        assert!(touched >= 15, "attackers only touch {touched}/23 paths");
    }
}
