//! Identifiability-driven measurement-path selection.
//!
//! Monitors "only need to choose a sufficient number of paths to ensure
//! identifiability" (paper, footnote 1). Given a candidate pool, the
//! greedy selector accepts every path whose routing-matrix row increases
//! the rank, reaching full column rank with the minimum-size prefix, and
//! can then add *redundant* paths — which matter for security: a square
//! `R` makes scapegoating undetectable (Theorem 3), so real deployments
//! want `|P| > |L|`.

use tomo_graph::Path;
use tomo_linalg::rank::IncrementalRank;
use tomo_linalg::Vector;

/// Result of a greedy selection pass.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Chosen paths (rank-increasing prefix first, then redundant fills).
    pub paths: Vec<Path>,
    /// Rank achieved (= number of identifiable link-metric dimensions).
    pub rank: usize,
    /// Number of redundant (non-rank-increasing) paths included.
    pub redundant: usize,
}

/// Converts a path to its routing-matrix row over `num_links` links.
#[must_use]
pub fn path_row(path: &Path, num_links: usize) -> Vector {
    let mut row = Vector::zeros(num_links);
    for l in path.links() {
        row[l.index()] = 1.0;
    }
    row
}

/// Greedy rank-first selection from an ordered candidate pool.
///
/// Scans `candidates` in order, accepting each path that increases the
/// rank; afterwards appends up to `extra` of the skipped paths (in pool
/// order) as redundant measurements.
///
/// The returned [`SelectionOutcome::rank`] may be less than `num_links`
/// if the pool cannot identify every link — callers decide whether that
/// is fatal (see `TomographySystem::new`) or a signal to add monitors
/// (see [`crate::placement`]).
#[must_use]
pub fn select_identifiable_paths(
    candidates: &[Path],
    num_links: usize,
    extra: usize,
) -> SelectionOutcome {
    let mut tracker = IncrementalRank::new(num_links);
    let mut chosen = Vec::new();
    let mut skipped = Vec::new();
    for p in candidates {
        if tracker.try_add(&path_row(p, num_links)) {
            chosen.push(p.clone());
        } else {
            skipped.push(p.clone());
        }
    }
    let rank = tracker.rank();
    let redundant = skipped.len().min(extra);
    chosen.extend(skipped.into_iter().take(extra));
    SelectionOutcome {
        paths: chosen,
        rank,
        redundant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::{enumerate, topology};

    #[test]
    fn path_row_marks_links() {
        let f = topology::fig1();
        let nodes = [f.node("M3"), f.node("D"), f.node("M2")];
        let p = tomo_graph::Path::from_nodes(&f.graph, &nodes).unwrap();
        let row = path_row(&p, 10);
        // Links 9 and 10 (paper numbering) = indices 8 and 9.
        assert_eq!(row[8], 1.0);
        assert_eq!(row[9], 1.0);
        assert_eq!(row.sum(), 2.0);
    }

    #[test]
    fn fig1_pool_reaches_full_rank() {
        let f = topology::fig1();
        let pool =
            enumerate::simple_paths_between_terminals(&f.graph, &f.monitors, 10, 1000).unwrap();
        assert_eq!(
            pool.len(),
            32,
            "Fig. 1 has exactly 32 monitor-pair simple paths"
        );
        let outcome = select_identifiable_paths(&pool, 10, 0);
        assert_eq!(outcome.rank, 10);
        assert_eq!(outcome.paths.len(), 10);
        assert_eq!(outcome.redundant, 0);
    }

    #[test]
    fn extras_are_appended_up_to_budget() {
        let f = topology::fig1();
        let pool =
            enumerate::simple_paths_between_terminals(&f.graph, &f.monitors, 10, 1000).unwrap();
        let outcome = select_identifiable_paths(&pool, 10, 13);
        assert_eq!(outcome.rank, 10);
        assert_eq!(outcome.paths.len(), 23);
        assert_eq!(outcome.redundant, 13);
        // Extras beyond the pool size are harmless.
        let all = select_identifiable_paths(&pool, 10, 1000);
        assert_eq!(all.paths.len(), 32);
        assert_eq!(all.redundant, 22);
    }

    #[test]
    fn insufficient_pool_reports_partial_rank() {
        let f = topology::fig1();
        // Only paths between M1 and M2 — cannot identify all 10 links.
        let pool = enumerate::simple_paths(&f.graph, f.node("M1"), f.node("M2"), 10, 100).unwrap();
        let outcome = select_identifiable_paths(&pool, 10, 0);
        assert!(outcome.rank < 10);
        assert_eq!(outcome.paths.len(), outcome.rank);
    }

    #[test]
    fn empty_pool() {
        let outcome = select_identifiable_paths(&[], 5, 3);
        assert_eq!(outcome.rank, 0);
        assert!(outcome.paths.is_empty());
        assert_eq!(outcome.redundant, 0);
    }
}
