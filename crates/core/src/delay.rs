//! Link-delay and measurement-noise models (Section V-A).

use rand::Rng;
use serde::{Deserialize, Serialize};

use tomo_linalg::Vector;

/// Uniform per-link delay model: each link's routine delay is drawn
/// independently from `U(min, max)` milliseconds.
///
/// ```
/// use rand::SeedableRng;
/// use tomo_core::delay::DelayModel;
///
/// let model = DelayModel::uniform(1.0, 20.0).unwrap();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let x = model.sample(10, &mut rng);
/// assert_eq!(x.len(), 10);
/// assert!(x.iter().all(|&d| (1.0..=20.0).contains(&d)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    min_ms: f64,
    max_ms: f64,
}

impl DelayModel {
    /// Creates a uniform delay model on `[min_ms, max_ms]`.
    ///
    /// Returns `None` if the bounds are not finite, negative, or out of
    /// order.
    #[must_use]
    pub fn uniform(min_ms: f64, max_ms: f64) -> Option<Self> {
        if min_ms.is_finite() && max_ms.is_finite() && 0.0 <= min_ms && min_ms < max_ms {
            Some(DelayModel { min_ms, max_ms })
        } else {
            None
        }
    }

    /// Lower bound in ms.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min_ms
    }

    /// Upper bound in ms.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max_ms
    }

    /// Samples a per-link delay vector of length `num_links`.
    pub fn sample<R: Rng + ?Sized>(&self, num_links: usize, rng: &mut R) -> Vector {
        (0..num_links)
            .map(|_| rng.gen_range(self.min_ms..self.max_ms))
            .collect()
    }
}

/// Zero-mean Gaussian measurement noise added to path measurements, used
/// by the Remark-4 robust-detector experiments.
///
/// Sampling uses the Box-Muller transform (no extra dependency needed for
/// one distribution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianNoise {
    std_ms: f64,
}

impl GaussianNoise {
    /// Creates a noise model with standard deviation `std_ms ≥ 0`.
    ///
    /// Returns `None` for negative or non-finite values.
    #[must_use]
    pub fn new(std_ms: f64) -> Option<Self> {
        if std_ms.is_finite() && std_ms >= 0.0 {
            Some(GaussianNoise { std_ms })
        } else {
            None
        }
    }

    /// Standard deviation in ms.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.std_ms
    }

    /// Draws one `N(0, std²)` sample.
    pub fn sample_one<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std_ms == 0.0 {
            return 0.0;
        }
        // Box-Muller: two uniforms → one normal deviate.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        z * self.std_ms
    }

    /// Returns `measurements + noise`, never letting a noisy measurement
    /// go negative (delays cannot be negative).
    pub fn perturb<R: Rng + ?Sized>(&self, measurements: &Vector, rng: &mut R) -> Vector {
        measurements
            .iter()
            .map(|&y| (y + self.sample_one(rng)).max(0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn delay_model_validates() {
        assert!(DelayModel::uniform(1.0, 20.0).is_some());
        assert!(DelayModel::uniform(20.0, 1.0).is_none());
        assert!(DelayModel::uniform(-1.0, 5.0).is_none());
        assert!(DelayModel::uniform(1.0, f64::NAN).is_none());
        assert!(DelayModel::uniform(5.0, 5.0).is_none());
    }

    #[test]
    fn samples_in_range_and_seeded() {
        let m = DelayModel::uniform(1.0, 20.0).unwrap();
        let a = m.sample(100, &mut ChaCha8Rng::seed_from_u64(1));
        let b = m.sample(100, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
        assert!(a.iter().all(|&d| (1.0..20.0).contains(&d)));
        // Mean should be near (1+20)/2 for 100 samples (loose band).
        let mean = a.mean().unwrap();
        assert!((5.0..16.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn noise_validates() {
        assert!(GaussianNoise::new(1.0).is_some());
        assert!(GaussianNoise::new(0.0).is_some());
        assert!(GaussianNoise::new(-0.1).is_none());
        assert!(GaussianNoise::new(f64::INFINITY).is_none());
    }

    #[test]
    fn zero_noise_is_identity() {
        let n = GaussianNoise::new(0.0).unwrap();
        let y = Vector::from(vec![5.0, 10.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(n.perturb(&y, &mut rng), y);
        assert_eq!(n.sample_one(&mut rng), 0.0);
    }

    #[test]
    fn noise_statistics_are_plausible() {
        let n = GaussianNoise::new(3.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample_one(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    fn perturb_clamps_at_zero() {
        let n = GaussianNoise::new(100.0).unwrap();
        let y = Vector::from(vec![0.5; 100]);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let noisy = n.perturb(&y, &mut rng);
        assert!(noisy.iter().all(|&v| v >= 0.0));
        // With std 100 on 0.5-mean data, clamping must actually trigger.
        assert!(noisy.iter().any(|&v| v == 0.0));
    }
}
