//! The paper's experimental parameters (Section V-A), collected in one
//! place so every crate and bench agrees on them.

use crate::delay::{DelayModel, GaussianNoise};
use crate::StateThresholds;

/// Lower state threshold `b_l`: links below 100 ms are *normal*.
pub const B_L_MS: f64 = 100.0;

/// Upper state threshold `b_u`: links above 800 ms are *abnormal*.
pub const B_U_MS: f64 = 800.0;

/// Per-path manipulation cap: attackers "should not delay the delivery of
/// a packet on a measurement path for more than 2000 ms".
pub const PATH_CAP_MS: f64 = 2000.0;

/// Detection threshold `α = 200 ms` for the consistency check
/// `‖R x̂ − y′‖₁ > α` (Section V-D).
pub const ALPHA_MS: f64 = 200.0;

/// Routine per-link delay lower bound (1 ms).
pub const DELAY_MIN_MS: f64 = 1.0;

/// Routine per-link delay upper bound (20 ms).
pub const DELAY_MAX_MS: f64 = 20.0;

/// Minimum number of uncertain victim links for obfuscation to count as
/// successful (Section V-C2).
pub const OBFUSCATION_MIN_VICTIMS: usize = 5;

/// The paper's link-state thresholds `(100 ms, 800 ms)`.
///
/// ```
/// let t = tomo_core::params::default_thresholds();
/// assert_eq!(t.lower(), 100.0);
/// assert_eq!(t.upper(), 800.0);
/// ```
#[must_use]
pub fn default_thresholds() -> StateThresholds {
    StateThresholds::new(B_L_MS, B_U_MS).expect("constants are ordered")
}

/// The paper's routine traffic model: per-link delay uniform in
/// `[1 ms, 20 ms]`.
#[must_use]
pub fn default_delay_model() -> DelayModel {
    DelayModel::uniform(DELAY_MIN_MS, DELAY_MAX_MS).expect("constants are ordered")
}

/// A mild measurement-noise model for the Remark-4 detector experiments
/// (the paper's main runs are noise-free).
#[must_use]
pub fn default_noise_model() -> GaussianNoise {
    GaussianNoise::new(1.0).expect("positive std")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // consistency checks ARE the test
    fn constants_are_consistent() {
        assert!(B_L_MS < B_U_MS);
        assert!(DELAY_MIN_MS < DELAY_MAX_MS);
        assert!(DELAY_MAX_MS < B_L_MS, "routine delays must look normal");
        assert!(PATH_CAP_MS > B_U_MS, "cap must allow abnormal estimates");
        assert!(ALPHA_MS > 0.0);
        assert!(OBFUSCATION_MIN_VICTIMS >= 1);
    }

    #[test]
    fn factories_match_constants() {
        let t = default_thresholds();
        assert_eq!((t.lower(), t.upper()), (B_L_MS, B_U_MS));
        let d = default_delay_model();
        assert_eq!((d.min(), d.max()), (DELAY_MIN_MS, DELAY_MAX_MS));
    }
}
