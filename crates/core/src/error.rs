use std::error::Error;
use std::fmt;

use tomo_graph::GraphError;
use tomo_linalg::LinalgError;

/// Errors produced by the tomography engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The selected measurement paths do not identify every link metric:
    /// the routing matrix lacks full column rank.
    NotIdentifiable {
        /// Achieved rank.
        rank: usize,
        /// Required rank (number of links).
        links: usize,
    },
    /// A measurement path does not start and end at (distinct) monitors.
    PathNotBetweenMonitors {
        /// Index of the offending path.
        path_index: usize,
    },
    /// The system needs at least one measurement path.
    NoPaths,
    /// The system needs at least two monitors.
    TooFewMonitors {
        /// Number provided.
        got: usize,
    },
    /// Monitor placement could not achieve identifiability within its
    /// budget.
    PlacementFailed {
        /// Explanation.
        reason: String,
    },
    /// A measurement value was NaN or infinite where a finite reading is
    /// required (degraded solves must drop such rows, not ingest them).
    NonFiniteMeasurement {
        /// The offending row (path index within the supplied subset).
        row: usize,
    },
    /// A vector argument has the wrong length.
    DimensionMismatch {
        /// What was being measured/estimated.
        context: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotIdentifiable { rank, links } => write!(
                f,
                "routing matrix rank {rank} < {links} links: link metrics not identifiable"
            ),
            CoreError::PathNotBetweenMonitors { path_index } => {
                write!(
                    f,
                    "path {path_index} does not run between two distinct monitors"
                )
            }
            CoreError::NoPaths => write!(f, "at least one measurement path is required"),
            CoreError::TooFewMonitors { got } => {
                write!(f, "at least 2 monitors are required, got {got}")
            }
            CoreError::PlacementFailed { reason } => {
                write!(f, "monitor placement failed: {reason}")
            }
            CoreError::NonFiniteMeasurement { row } => {
                write!(f, "measurement row {row} is NaN or infinite")
            }
            CoreError::DimensionMismatch {
                context,
                expected,
                got,
            } => write!(f, "{context}: expected length {expected}, got {got}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::NotIdentifiable { rank: 8, links: 10 };
        assert!(e.to_string().contains("rank 8"));
        assert!(e.source().is_none());

        let g: CoreError = GraphError::SelfLoop {
            node: tomo_graph::NodeId(1),
        }
        .into();
        assert!(g.source().is_some());
        assert!(g.to_string().contains("graph error"));

        let l: CoreError = LinalgError::Singular { pivot: 0 }.into();
        assert!(l.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
