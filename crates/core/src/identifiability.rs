//! Identifiability analysis for routing matrices.
//!
//! `TomographySystem` requires full column rank, but *why* a path set
//! fails that bar matters to operators: which link metrics are pinned
//! down, and which are entangled with others? A link `l` is
//! **identifiable** iff `e_l` is orthogonal to the null space of `R` —
//! equivalently, every null vector has a zero in `l`'s coordinate. The
//! classic failure mode is a degree-2 internal relay: its two links only
//! ever appear together, so `e_i − e_j` is a null direction and both
//! links are unidentifiable (exactly the issue a naive reconstruction of
//! the paper's Fig. 1 runs into — see `tomo-graph::topology`).

use tomo_graph::{LinkId, Path};
use tomo_linalg::{norms, Matrix, Vector};

use crate::system::build_routing_matrix;

/// Result of analyzing a candidate path set.
#[derive(Debug, Clone)]
pub struct IdentifiabilityReport {
    /// Rank of the routing matrix.
    pub rank: usize,
    /// Number of links (columns).
    pub num_links: usize,
    /// Per-link identifiability flags.
    pub identifiable: Vec<bool>,
}

impl IdentifiabilityReport {
    /// `true` iff every link metric is identifiable (full column rank).
    #[must_use]
    pub fn is_fully_identifiable(&self) -> bool {
        self.rank == self.num_links
    }

    /// Links whose metrics cannot be determined from the path set.
    #[must_use]
    pub fn unidentifiable_links(&self) -> Vec<LinkId> {
        self.identifiable
            .iter()
            .enumerate()
            .filter(|(_, &ok)| !ok)
            .map(|(j, _)| LinkId(j))
            .collect()
    }
}

/// Analyzes which link metrics a path set can determine.
///
/// Uses an orthonormal null-space basis of `R` (built column-by-column
/// from the identity complement of the row space): link `j` is
/// identifiable iff the null-space basis has (numerically) zero `j`-th
/// coordinates throughout.
#[must_use]
pub fn analyze_paths(paths: &[Path], num_links: usize) -> IdentifiabilityReport {
    let r = build_routing_matrix(paths, num_links);
    analyze_matrix(&r)
}

/// Matrix-level variant of [`analyze_paths`].
#[must_use]
pub fn analyze_matrix(r: &Matrix) -> IdentifiabilityReport {
    let num_links = r.cols();
    // Row-space basis via Gram-Schmidt over the rows.
    let mut row_basis: Vec<Vector> = Vec::new();
    let tol = 1e-9 * (1.0 + r.max_abs());
    for i in 0..r.rows() {
        let mut v = Vector::from(r.row(i));
        for _ in 0..2 {
            for b in &row_basis {
                let c = v.dot(b).expect("same length");
                if c != 0.0 {
                    v = v.axpy(-c, b).expect("same length");
                }
            }
        }
        let n = norms::l2(&v);
        if n > tol {
            row_basis.push(v.scaled(1.0 / n));
        }
    }
    let rank = row_basis.len();

    // Link j identifiable ⟺ e_j lies in the row space ⟺ the residual of
    // e_j against the row-space basis is zero.
    let identifiable: Vec<bool> = (0..num_links)
        .map(|j| {
            let mut v = Vector::basis(num_links, j);
            for _ in 0..2 {
                for b in &row_basis {
                    let c = v.dot(b).expect("same length");
                    if c != 0.0 {
                        v = v.axpy(-c, b).expect("same length");
                    }
                }
            }
            norms::l2(&v) <= 1e-7
        })
        .collect();

    IdentifiabilityReport {
        rank,
        num_links,
        identifiable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::{Graph, NodeId};

    /// m0 — v — m1 line: the degree-2 relay makes both links
    /// unidentifiable from end-to-end paths alone.
    fn degree_2_relay() -> (Graph, Vec<Path>) {
        let mut g = Graph::new();
        let m0 = g.add_node("m0");
        let v = g.add_node("v");
        let m1 = g.add_node("m1");
        g.add_link(m0, v).unwrap();
        g.add_link(v, m1).unwrap();
        let p = Path::from_nodes(&g, &[m0, v, m1]).unwrap();
        (g, vec![p])
    }

    #[test]
    fn degree_2_relay_is_unidentifiable() {
        let (g, paths) = degree_2_relay();
        let report = analyze_paths(&paths, g.num_links());
        assert_eq!(report.rank, 1);
        assert!(!report.is_fully_identifiable());
        assert_eq!(
            report.unidentifiable_links(),
            vec![LinkId(0), LinkId(1)],
            "both links of the relay are entangled"
        );
    }

    #[test]
    fn fig1_canonical_paths_are_fully_identifiable() {
        let paths = crate::fig1::fig1_paths().unwrap();
        let report = analyze_paths(&paths, 10);
        assert_eq!(report.rank, 10);
        assert!(report.is_fully_identifiable());
        assert!(report.unidentifiable_links().is_empty());
        assert!(report.identifiable.iter().all(|&b| b));
    }

    #[test]
    fn partial_identifiability_is_per_link() {
        // Triangle where every node is a monitor, but only paths that pin
        // down link 2 (m0-m2 direct) are provided; links 0 and 1 appear
        // only as a sum.
        let mut g = Graph::new();
        let m0 = g.add_node("m0");
        let m1 = g.add_node("m1");
        let m2 = g.add_node("m2");
        g.add_link(m0, m1).unwrap(); // l0
        g.add_link(m1, m2).unwrap(); // l1
        g.add_link(m0, m2).unwrap(); // l2
        let paths = vec![
            Path::from_nodes(&g, &[m0, m1, m2]).unwrap(), // l0 + l1
            Path::from_nodes(&g, &[m0, m2]).unwrap(),     // l2
        ];
        let report = analyze_paths(&paths, 3);
        assert_eq!(report.rank, 2);
        assert_eq!(report.identifiable, vec![false, false, true]);
        assert_eq!(report.unidentifiable_links(), vec![LinkId(0), LinkId(1)]);
    }

    #[test]
    fn empty_path_set() {
        let report = analyze_paths(&[], 4);
        assert_eq!(report.rank, 0);
        assert_eq!(report.unidentifiable_links().len(), 4);
    }

    #[test]
    fn zero_column_is_unidentifiable() {
        // A link never measured: its column is zero.
        let r = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let report = analyze_matrix(&r);
        assert_eq!(report.rank, 1);
        assert_eq!(report.identifiable, vec![true, false]);
    }

    #[test]
    fn uncovered_relay_subgraph() {
        // Mixed case on a square with a diagonal: exercise a 5-link set
        // where one extra path completes identifiability.
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..4).map(|i| g.add_node(format!("m{i}"))).collect();
        g.add_link(ids[0], ids[1]).unwrap(); // l0
        g.add_link(ids[1], ids[2]).unwrap(); // l1
        g.add_link(ids[2], ids[3]).unwrap(); // l2
        g.add_link(ids[3], ids[0]).unwrap(); // l3
        g.add_link(ids[0], ids[2]).unwrap(); // l4
        let mut paths = vec![
            Path::from_nodes(&g, &[ids[0], ids[1]]).unwrap(),
            Path::from_nodes(&g, &[ids[1], ids[2]]).unwrap(),
            Path::from_nodes(&g, &[ids[2], ids[3]]).unwrap(),
            Path::from_nodes(&g, &[ids[0], ids[2]]).unwrap(),
        ];
        let partial = analyze_paths(&paths, 5);
        assert_eq!(partial.rank, 4);
        assert_eq!(partial.unidentifiable_links(), vec![LinkId(3)]);
        paths.push(Path::from_nodes(&g, &[ids[3], ids[0]]).unwrap());
        let full = analyze_paths(&paths, 5);
        assert!(full.is_fully_identifiable());
    }
}
