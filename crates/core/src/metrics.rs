//! Metric-domain conversions.
//!
//! Network tomography requires *additive* path metrics (Section II-A).
//! Delay is natively additive. Packet-loss/delivery ratios multiply along
//! a path, so they become additive in the logarithmic domain: with
//! per-link delivery ratio `d ∈ (0, 1]`, the additive metric is
//! `x = −ln d`, and a path's delivery ratio is `exp(−Σ x)`.
//!
//! These helpers let every attack/detection routine stay metric-agnostic
//! (they operate on additive values) while experiments present results in
//! the natural unit.

use tomo_linalg::Vector;

/// Converts a per-link delivery ratio `d ∈ (0, 1]` to its additive
/// log-domain metric `−ln d`.
///
/// Returns `None` outside `(0, 1]`.
///
/// ```
/// let x = tomo_core::metrics::delivery_to_additive(0.9).unwrap();
/// assert!((x - 0.10536).abs() < 1e-4);
/// assert_eq!(tomo_core::metrics::delivery_to_additive(1.0), Some(0.0));
/// ```
#[must_use]
pub fn delivery_to_additive(delivery_ratio: f64) -> Option<f64> {
    if delivery_ratio > 0.0 && delivery_ratio <= 1.0 {
        Some(-delivery_ratio.ln())
    } else {
        None
    }
}

/// Converts an additive log-domain metric back to a delivery ratio.
///
/// Returns `None` for negative or non-finite metrics.
#[must_use]
pub fn additive_to_delivery(metric: f64) -> Option<f64> {
    if metric.is_finite() && metric >= 0.0 {
        Some((-metric).exp())
    } else {
        None
    }
}

/// Converts a per-link loss ratio `p ∈ [0, 1)` to the additive metric of
/// its delivery ratio `1 − p`.
///
/// Returns `None` outside `[0, 1)`.
#[must_use]
pub fn loss_to_additive(loss_ratio: f64) -> Option<f64> {
    if (0.0..1.0).contains(&loss_ratio) {
        delivery_to_additive(1.0 - loss_ratio)
    } else {
        None
    }
}

/// Converts an additive metric to a loss ratio.
///
/// Returns `None` for negative or non-finite metrics.
#[must_use]
pub fn additive_to_loss(metric: f64) -> Option<f64> {
    additive_to_delivery(metric).map(|d| 1.0 - d)
}

/// Converts a whole vector of loss ratios to additive metrics.
///
/// Returns `None` if any entry is outside `[0, 1)`.
#[must_use]
pub fn loss_vector_to_additive(losses: &Vector) -> Option<Vector> {
    losses.iter().map(|&p| loss_to_additive(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_conversions() {
        assert_eq!(delivery_to_additive(1.0), Some(0.0));
        assert_eq!(loss_to_additive(0.0), Some(0.0));
        assert!(delivery_to_additive(0.0).is_none());
        assert!(delivery_to_additive(1.5).is_none());
        assert!(loss_to_additive(1.0).is_none());
        assert!(loss_to_additive(-0.1).is_none());
        assert!(additive_to_delivery(-1.0).is_none());
        assert!(additive_to_loss(f64::NAN).is_none());
    }

    #[test]
    fn additivity_along_a_path() {
        // Two links with delivery 0.9 and 0.8: path delivery 0.72.
        let x1 = delivery_to_additive(0.9).unwrap();
        let x2 = delivery_to_additive(0.8).unwrap();
        let path = additive_to_delivery(x1 + x2).unwrap();
        assert!((path - 0.72).abs() < 1e-12);
    }

    #[test]
    fn vector_conversion() {
        let v = Vector::from(vec![0.0, 0.1, 0.5]);
        let add = loss_vector_to_additive(&v).unwrap();
        assert_eq!(add.len(), 3);
        assert_eq!(add[0], 0.0);
        let bad = Vector::from(vec![0.1, 1.0]);
        assert!(loss_vector_to_additive(&bad).is_none());
    }

    proptest! {
        #[test]
        fn roundtrips(d in 0.0001f64..1.0) {
            let x = delivery_to_additive(d).unwrap();
            prop_assert!(x >= 0.0);
            let back = additive_to_delivery(x).unwrap();
            prop_assert!((back - d).abs() < 1e-9);

            let p = 1.0 - d;
            let xl = loss_to_additive(p).unwrap();
            let back_l = additive_to_loss(xl).unwrap();
            prop_assert!((back_l - p).abs() < 1e-9);
        }

        /// Higher loss ⇒ strictly larger additive metric (monotone).
        #[test]
        fn monotonicity(p1 in 0.0f64..0.98, delta in 0.001f64..0.01) {
            let p2 = (p1 + delta).min(0.989);
            let x1 = loss_to_additive(p1).unwrap();
            let x2 = loss_to_additive(p2).unwrap();
            prop_assert!(x2 > x1);
        }
    }
}
