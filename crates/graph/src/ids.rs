use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node within a [`Graph`](crate::Graph).
///
/// Node ids are dense indices `0..num_nodes()` assigned in insertion
/// order; they are only meaningful relative to the graph that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Positional index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// Identifier of an undirected link within a [`Graph`](crate::Graph).
///
/// Link ids are dense indices `0..num_links()` assigned in insertion
/// order. The paper numbers links from 1; this crate is 0-based and the
/// Fig. 1 topology documents the correspondence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Positional index of the link.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<usize> for LinkId {
    fn from(i: usize) -> Self {
        LinkId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_convert() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(7).to_string(), "l7");
        assert_eq!(NodeId::from(2).index(), 2);
        assert_eq!(LinkId::from(5).index(), 5);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(0) < LinkId(9));
    }
}
