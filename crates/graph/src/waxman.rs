//! Waxman random graphs — a third topology family for robustness
//! experiments.
//!
//! The Waxman model (the classic Internet-topology baseline that
//! preceded Rocketfuel's measured maps) places nodes uniformly in a unit
//! square and connects each pair with probability
//! `β · exp(−d / (α · D))`, where `d` is their Euclidean distance and
//! `D` the diameter of the region. It produces distance-biased,
//! moderately heavy-tailed graphs — a useful middle ground between the
//! geometric wireless model and the hierarchical ISP generator for
//! checking that attack/detection results are not artifacts of one
//! generator.

use rand::Rng;

use crate::{Graph, GraphError, NodeId};

/// Configuration for the Waxman generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WaxmanConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Waxman α ∈ (0, 1]: larger means distance decays connectivity less.
    pub alpha: f64,
    /// Waxman β ∈ (0, 1]: overall link density.
    pub beta: f64,
    /// Placements to try for a connected graph before giving up.
    pub max_attempts: usize,
}

impl Default for WaxmanConfig {
    /// A classic parameterization (α = 0.4, β = 0.4, 100 nodes) that
    /// yields connected, ISP-scale graphs with high probability.
    fn default() -> Self {
        WaxmanConfig {
            num_nodes: 100,
            alpha: 0.4,
            beta: 0.4,
            max_attempts: 50,
        }
    }
}

/// Generates a connected Waxman graph.
///
/// # Errors
///
/// Returns [`GraphError::GenerationFailed`] for degenerate parameters or
/// if no connected placement is found within the attempt budget.
pub fn generate<R: Rng + ?Sized>(config: &WaxmanConfig, rng: &mut R) -> Result<Graph, GraphError> {
    if config.num_nodes == 0 {
        return Err(GraphError::GenerationFailed {
            reason: "num_nodes must be positive".into(),
        });
    }
    let in_unit = |v: f64| v > 0.0 && v <= 1.0;
    if !in_unit(config.alpha) || !in_unit(config.beta) {
        return Err(GraphError::GenerationFailed {
            reason: format!(
                "alpha ({}) and beta ({}) must lie in (0, 1]",
                config.alpha, config.beta
            ),
        });
    }
    let diameter = std::f64::consts::SQRT_2; // unit square
    for _ in 0..config.max_attempts.max(1) {
        let positions: Vec<(f64, f64)> = (0..config.num_nodes)
            .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let mut graph = Graph::new();
        for i in 0..config.num_nodes {
            graph.add_node(format!("x{i}"));
        }
        for i in 0..config.num_nodes {
            for j in (i + 1)..config.num_nodes {
                let dx = positions[i].0 - positions[j].0;
                let dy = positions[i].1 - positions[j].1;
                let d = (dx * dx + dy * dy).sqrt();
                let p = config.beta * (-d / (config.alpha * diameter)).exp();
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    graph.add_link(NodeId(i), NodeId(j)).expect("fresh pair");
                }
            }
        }
        if crate::traversal::is_connected(&graph) {
            return Ok(graph);
        }
    }
    Err(GraphError::GenerationFailed {
        reason: format!(
            "no connected Waxman graph with n={}, α={}, β={} in {} attempts",
            config.num_nodes, config.alpha, config.beta, config.max_attempts
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_config_generates_connected_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generate(&WaxmanConfig::default(), &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 100);
        assert!(crate::traversal::is_connected(&g));
        // β=0.4, α=0.4 on 100 nodes gives a dense-ish graph.
        assert!(g.average_degree() > 4.0, "degree {}", g.average_degree());
    }

    #[test]
    fn distance_bias_favors_short_links() {
        // With tiny alpha almost all links are short: the graph looks
        // geometric; with alpha = 1 distance barely matters. We check
        // the densities differ as expected.
        let dense_cfg = WaxmanConfig {
            alpha: 1.0,
            ..WaxmanConfig::default()
        };
        let sparse_cfg = WaxmanConfig {
            alpha: 0.05,
            max_attempts: 1, // may be disconnected; only counting links
            ..WaxmanConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dense = generate(&dense_cfg, &mut rng).unwrap();
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        let sparse = generate(&sparse_cfg, &mut rng2)
            .map(|g| g.num_links())
            .unwrap_or(0);
        assert!(dense.num_links() > sparse.max(1) * 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WaxmanConfig::default();
        let a = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        let b = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a.num_links(), b.num_links());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for bad in [
            WaxmanConfig {
                num_nodes: 0,
                ..WaxmanConfig::default()
            },
            WaxmanConfig {
                alpha: 0.0,
                ..WaxmanConfig::default()
            },
            WaxmanConfig {
                beta: 1.5,
                ..WaxmanConfig::default()
            },
        ] {
            assert!(generate(&bad, &mut rng).is_err());
        }
    }

    #[test]
    fn hopeless_config_fails_cleanly() {
        let cfg = WaxmanConfig {
            num_nodes: 50,
            alpha: 0.01,
            beta: 0.01,
            max_attempts: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(matches!(
            generate(&cfg, &mut rng),
            Err(GraphError::GenerationFailed { .. })
        ));
    }

    #[test]
    fn supports_tomography_pipeline() {
        // The family works end-to-end with monitor placement.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generate(
            &WaxmanConfig {
                num_nodes: 40,
                ..WaxmanConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(crate::traversal::is_connected(&g));
        assert!(g.num_links() >= g.num_nodes() - 1);
    }
}
