use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{GraphError, LinkId, NodeId};

/// An undirected simple graph (no self-loops, at most one link per node
/// pair), exactly the network model `G = (V, L)` of Section II-A of the
/// paper.
///
/// Nodes carry string labels (e.g. `"M1"`, `"A"`); links are unlabeled but
/// densely indexed so that link metrics can live in plain vectors.
///
/// ```
/// use tomo_graph::Graph;
///
/// # fn main() -> Result<(), tomo_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let ab = g.add_link(a, b)?;
/// assert_eq!(g.endpoints(ab)?, (a, b));
/// assert_eq!(g.degree(a)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    labels: Vec<String>,
    links: Vec<(NodeId, NodeId)>,
    /// adjacency[v] = list of (neighbor, connecting link).
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` anonymous nodes labeled `"v0"… "v{n-1}"`
    /// and no links.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_node(format!("v{i}"));
        }
        g
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of links.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.labels.len());
        self.labels.push(label.into());
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if either endpoint is missing,
    /// * [`GraphError::SelfLoop`] if `a == b`,
    /// * [`GraphError::DuplicateLink`] if the link already exists.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> Result<LinkId, GraphError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        if self.link_between(a, b).is_some() {
            return Err(GraphError::DuplicateLink { a, b });
        }
        let id = LinkId(self.links.len());
        self.links.push((a, b));
        self.adjacency[a.index()].push((b, id));
        self.adjacency[b.index()].push((a, id));
        Ok(id)
    }

    /// Label of a node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the node is missing.
    pub fn label(&self, node: NodeId) -> Result<&str, GraphError> {
        self.check_node(node)?;
        Ok(&self.labels[node.index()])
    }

    /// Finds a node by label (linear scan; labels need not be unique, the
    /// first match wins).
    #[must_use]
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.labels.iter().position(|l| l == label).map(NodeId)
    }

    /// Endpoints of a link.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownLink`] if the link is missing.
    pub fn endpoints(&self, link: LinkId) -> Result<(NodeId, NodeId), GraphError> {
        self.check_link(link)?;
        Ok(self.links[link.index()])
    }

    /// Neighbors of `node` with the connecting links.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the node is missing.
    pub fn neighbors(&self, node: NodeId) -> Result<&[(NodeId, LinkId)], GraphError> {
        self.check_node(node)?;
        Ok(&self.adjacency[node.index()])
    }

    /// Degree of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the node is missing.
    pub fn degree(&self, node: NodeId) -> Result<usize, GraphError> {
        Ok(self.neighbors(node)?.len())
    }

    /// The link connecting `a` and `b`, if any.
    #[must_use]
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        if a.index() >= self.num_nodes() || b.index() >= self.num_nodes() {
            return None;
        }
        self.adjacency[a.index()]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, l)| *l)
    }

    /// Links incident to `node`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the node is missing.
    pub fn incident_links(&self, node: NodeId) -> Result<Vec<LinkId>, GraphError> {
        Ok(self.neighbors(node)?.iter().map(|(_, l)| *l).collect())
    }

    /// Returns `true` if `node` is an endpoint of `link`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownLink`] if the link is missing.
    pub fn is_incident(&self, node: NodeId, link: LinkId) -> Result<bool, GraphError> {
        let (a, b) = self.endpoints(link)?;
        Ok(a == node || b == node)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId)
    }

    /// Iterator over all link ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.num_links()).map(LinkId)
    }

    /// Map from label to node id (last duplicate wins).
    #[must_use]
    pub fn label_index(&self) -> HashMap<&str, NodeId> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.as_str(), NodeId(i)))
            .collect()
    }

    /// Average node degree (0 for the empty graph).
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_links() as f64 / self.num_nodes() as f64
        }
    }

    /// Builds the subgraph induced by `members`, with node ids densely
    /// remapped in ascending order of the original ids. Returns the new
    /// graph and the mapping `new_id -> old_id`.
    ///
    /// Labels are preserved. Duplicate members are deduplicated.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if any member is missing.
    ///
    /// ```
    /// use tomo_graph::{Graph, NodeId};
    ///
    /// # fn main() -> Result<(), tomo_graph::GraphError> {
    /// let mut g = Graph::new();
    /// let a = g.add_node("a");
    /// let b = g.add_node("b");
    /// let c = g.add_node("c");
    /// g.add_link(a, b)?;
    /// g.add_link(b, c)?;
    /// let (sub, mapping) = g.induced_subgraph(&[b, c])?;
    /// assert_eq!(sub.num_nodes(), 2);
    /// assert_eq!(sub.num_links(), 1); // only b-c survives
    /// assert_eq!(mapping, vec![b, c]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn induced_subgraph(&self, members: &[NodeId]) -> Result<(Graph, Vec<NodeId>), GraphError> {
        let mut sorted = members.to_vec();
        sorted.sort();
        sorted.dedup();
        for &n in &sorted {
            self.check_node(n)?;
        }
        let mut remap = vec![usize::MAX; self.num_nodes()];
        let mut sub = Graph::new();
        for (new_idx, &old) in sorted.iter().enumerate() {
            remap[old.index()] = new_idx;
            sub.add_node(self.labels[old.index()].clone());
        }
        for &(a, b) in &self.links {
            let (ra, rb) = (remap[a.index()], remap[b.index()]);
            if ra != usize::MAX && rb != usize::MAX {
                sub.add_link(NodeId(ra), NodeId(rb))
                    .expect("induced links are fresh non-loops");
            }
        }
        Ok((sub, sorted))
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() >= self.num_nodes() {
            Err(GraphError::UnknownNode {
                node,
                count: self.num_nodes(),
            })
        } else {
            Ok(())
        }
    }

    fn check_link(&self, link: LinkId) -> Result<(), GraphError> {
        if link.index() >= self.num_links() {
            Err(GraphError::UnknownLink {
                link,
                count: self.num_links(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [NodeId; 3], [LinkId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let ab = g.add_link(a, b).unwrap();
        let bc = g.add_link(b, c).unwrap();
        let ca = g.add_link(c, a).unwrap();
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c], [ab, bc, _ca]) = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_links(), 3);
        assert_eq!(g.label(a).unwrap(), "a");
        assert_eq!(g.endpoints(ab).unwrap(), (a, b));
        assert_eq!(g.degree(b).unwrap(), 2);
        assert_eq!(g.link_between(b, c), Some(bc));
        assert_eq!(g.link_between(c, b), Some(bc));
        assert!(g.is_incident(a, ab).unwrap());
        assert!(!g.is_incident(c, ab).unwrap());
        assert_eq!(g.node_by_label("c"), Some(c));
        assert_eq!(g.node_by_label("zz"), None);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        assert!(matches!(g.add_link(a, a), Err(GraphError::SelfLoop { .. })));
        g.add_link(a, b).unwrap();
        assert!(matches!(
            g.add_link(a, b),
            Err(GraphError::DuplicateLink { .. })
        ));
        assert!(matches!(
            g.add_link(b, a),
            Err(GraphError::DuplicateLink { .. })
        ));
    }

    #[test]
    fn rejects_unknown_ids() {
        let (g, _, _) = triangle();
        assert!(g.label(NodeId(9)).is_err());
        assert!(g.endpoints(LinkId(9)).is_err());
        assert!(g.neighbors(NodeId(9)).is_err());
        assert!(g.is_incident(NodeId(0), LinkId(9)).is_err());
        assert_eq!(g.link_between(NodeId(0), NodeId(9)), None);
        let mut g2 = Graph::new();
        let a = g2.add_node("a");
        assert!(g2.add_link(a, NodeId(5)).is_err());
    }

    #[test]
    fn iterators_cover_everything() {
        let (g, _, _) = triangle();
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.links().count(), 3);
        let idx = g.label_index();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx["b"], NodeId(1));
    }

    #[test]
    fn with_nodes_labels() {
        let g = Graph::with_nodes(3);
        assert_eq!(g.label(NodeId(2)).unwrap(), "v2");
        assert_eq!(g.num_links(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn incident_links_listing() {
        let (g, [_, b, _], [ab, bc, _]) = triangle();
        let mut incident = g.incident_links(b).unwrap();
        incident.sort();
        assert_eq!(incident, vec![ab, bc]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_links() {
        let (g, [a, b, c], _) = triangle();
        let (sub, mapping) = g.induced_subgraph(&[c, a, a]).unwrap();
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_links(), 1); // only c-a survives
        assert_eq!(mapping, vec![a, c]);
        assert_eq!(sub.label(NodeId(0)).unwrap(), "a");
        assert_eq!(sub.label(NodeId(1)).unwrap(), "c");
        // Full member set reproduces the graph.
        let (full, _) = g.induced_subgraph(&[a, b, c]).unwrap();
        assert_eq!(full.num_links(), 3);
        // Unknown members rejected; empty set fine.
        assert!(g.induced_subgraph(&[NodeId(9)]).is_err());
        let (empty, mapping) = g.induced_subgraph(&[]).unwrap();
        assert_eq!(empty.num_nodes(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let (g, _, _) = triangle();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.num_links(), 3);
        assert_eq!(back.link_between(NodeId(0), NodeId(1)), Some(LinkId(0)));
    }
}
