//! Canonical topologies from the paper's figures.
//!
//! * [`fig1`] — the running example: 7 nodes, 10 links, monitors
//!   `M1, M2, M3`, attackers `B, C`.
//! * [`fig3_perfect_cut`] / [`fig3_imperfect_cut`] — the cut-structure
//!   illustrations behind Theorems 1 and 3.
//!
//! The paper never prints its 23-path list for Fig. 1; path selection is
//! reconstructed in `tomo-core` (see `fig1_paths` there). What *is* pinned
//! down by the text is the link structure, which this module encodes:
//! path 3 = links 1,4,7,10 = `M1-A-C-D-M2`; path 5 = links 8,7,5,3; path
//! 17 = links 9,10; links 2-8 all touch B or C; {B, C} perfectly cut
//! link 1 (every neighbor of A other than M1 is an attacker, so any path
//! continuing past A meets B or C); and — required for the paper's
//! claimed identifiability — no internal non-monitor node has degree 2
//! (a degree-2 relay would make its two links linearly inseparable).

use crate::{Graph, LinkId, NodeId};

/// The Fig. 1 example network with its roles annotated.
#[derive(Debug, Clone)]
pub struct Fig1Topology {
    /// The 7-node, 10-link graph.
    pub graph: Graph,
    /// Monitors `[M1, M2, M3]`.
    pub monitors: Vec<NodeId>,
    /// The malicious nodes `[B, C]` from the running example.
    pub attackers: Vec<NodeId>,
}

impl Fig1Topology {
    /// Node id for a label (`"M1"`, `"A"`, …).
    ///
    /// # Panics
    ///
    /// Panics if the label is not one of the Fig. 1 node names.
    #[must_use]
    pub fn node(&self, label: &str) -> NodeId {
        self.graph
            .node_by_label(label)
            .unwrap_or_else(|| panic!("{label} is not a Fig. 1 node"))
    }

    /// Link id for the paper's 1-based link number (1..=10).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ number ≤ 10`.
    #[must_use]
    pub fn paper_link(&self, number: usize) -> LinkId {
        assert!(
            (1..=10).contains(&number),
            "Fig. 1 links are numbered 1..=10, got {number}"
        );
        LinkId(number - 1)
    }

    /// The paper's 1-based number for a link id.
    #[must_use]
    pub fn paper_number(&self, link: LinkId) -> usize {
        link.index() + 1
    }
}

/// Builds the Fig. 1 example network.
///
/// Link numbering (paper 1-based → endpoints):
///
/// | # | endpoints | # | endpoints |
/// |---|-----------|---|-----------|
/// | 1 | M1-A      | 6 | A-B       |
/// | 2 | M1-B      | 7 | C-D       |
/// | 3 | B-M2      | 8 | M3-C      |
/// | 4 | A-C       | 9 | M3-D      |
/// | 5 | B-D       | 10| D-M2      |
///
/// ```
/// let fig1 = tomo_graph::topology::fig1();
/// // Links 2-8 all touch an attacker (B or C), as the paper states.
/// for n in 2..=8 {
///     let l = fig1.paper_link(n);
///     let (a, b) = fig1.graph.endpoints(l).unwrap();
///     assert!(fig1.attackers.contains(&a) || fig1.attackers.contains(&b));
/// }
/// ```
#[must_use]
pub fn fig1() -> Fig1Topology {
    let mut g = Graph::new();
    let m1 = g.add_node("M1");
    let m2 = g.add_node("M2");
    let m3 = g.add_node("M3");
    let a = g.add_node("A");
    let b = g.add_node("B");
    let c = g.add_node("C");
    let d = g.add_node("D");

    // Insertion order defines LinkId = paper number − 1.
    g.add_link(m1, a).expect("fresh"); // 1
    g.add_link(m1, b).expect("fresh"); // 2
    g.add_link(b, m2).expect("fresh"); // 3
    g.add_link(a, c).expect("fresh"); // 4
    g.add_link(b, d).expect("fresh"); // 5
    g.add_link(a, b).expect("fresh"); // 6
    g.add_link(c, d).expect("fresh"); // 7
    g.add_link(m3, c).expect("fresh"); // 8
    g.add_link(m3, d).expect("fresh"); // 9
    g.add_link(d, m2).expect("fresh"); // 10

    Fig1Topology {
        graph: g,
        monitors: vec![m1, m2, m3],
        attackers: vec![b, c],
    }
}

/// A Fig. 3 cut illustration: graph, monitors, attackers, victim link.
#[derive(Debug, Clone)]
pub struct Fig3Topology {
    /// The graph.
    pub graph: Graph,
    /// Monitor nodes.
    pub monitors: Vec<NodeId>,
    /// Attacker nodes `A1`, `A2`.
    pub attackers: Vec<NodeId>,
    /// The victim link `C-D`.
    pub victim_link: LinkId,
}

/// Fig. 3(a): attackers `A1`, `A2` **perfectly cut** the victim link
/// `C-D` — every monitor-to-monitor path crossing `C-D` passes an
/// attacker.
#[must_use]
pub fn fig3_perfect_cut() -> Fig3Topology {
    let mut g = Graph::new();
    let m1 = g.add_node("M1");
    let m2 = g.add_node("M2");
    let m3 = g.add_node("M3");
    let a1 = g.add_node("A1");
    let a2 = g.add_node("A2");
    let c = g.add_node("C");
    let d = g.add_node("D");

    g.add_link(m1, a1).expect("fresh");
    g.add_link(a1, c).expect("fresh");
    let victim = g.add_link(c, d).expect("fresh");
    g.add_link(d, a2).expect("fresh");
    g.add_link(a2, m2).expect("fresh");
    g.add_link(d, m3).expect("fresh");

    Fig3Topology {
        graph: g,
        monitors: vec![m1, m2, m3],
        attackers: vec![a1, a2],
        victim_link: victim,
    }
}

/// Fig. 3(b): the cut is **imperfect** — the path `M1-B-C-D-M4` crosses
/// the victim link `C-D` without passing any attacker.
#[must_use]
pub fn fig3_imperfect_cut() -> Fig3Topology {
    let mut g = Graph::new();
    let m1 = g.add_node("M1");
    let m2 = g.add_node("M2");
    let m3 = g.add_node("M3");
    let m4 = g.add_node("M4");
    let a1 = g.add_node("A1");
    let a2 = g.add_node("A2");
    let b = g.add_node("B");
    let c = g.add_node("C");
    let d = g.add_node("D");

    g.add_link(m1, a1).expect("fresh");
    g.add_link(a1, c).expect("fresh");
    let victim = g.add_link(c, d).expect("fresh");
    g.add_link(d, a2).expect("fresh");
    g.add_link(a2, m2).expect("fresh");
    g.add_link(d, m3).expect("fresh");
    g.add_link(m1, b).expect("fresh");
    g.add_link(b, c).expect("fresh");
    g.add_link(d, m4).expect("fresh");

    Fig3Topology {
        graph: g,
        monitors: vec![m1, m2, m3, m4],
        attackers: vec![a1, a2],
        victim_link: victim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::traversal;

    #[test]
    fn fig1_structure_matches_paper() {
        let f = fig1();
        assert_eq!(f.graph.num_nodes(), 7);
        assert_eq!(f.graph.num_links(), 10);
        assert!(traversal::is_connected(&f.graph));
        assert_eq!(f.monitors.len(), 3);

        // Links 2-8 all touch B or C (the paper: "links 2-8 … connecting
        // to them").
        for n in 2..=8 {
            let (a, b) = f.graph.endpoints(f.paper_link(n)).unwrap();
            assert!(
                f.attackers.contains(&a) || f.attackers.contains(&b),
                "paper link {n} must touch an attacker"
            );
        }
        // Links 1, 9, 10 touch neither attacker.
        for n in [1, 9, 10] {
            let (a, b) = f.graph.endpoints(f.paper_link(n)).unwrap();
            assert!(!f.attackers.contains(&a) && !f.attackers.contains(&b));
        }
    }

    #[test]
    fn fig1_path3_is_m1_a_c_d_m2() {
        // Paper: "path 3 is formed by links 1, 4, 7, 10 (probe packets go
        // through M1, A, C, D, M2)".
        let f = fig1();
        let nodes = [
            f.node("M1"),
            f.node("A"),
            f.node("C"),
            f.node("D"),
            f.node("M2"),
        ];
        let p = crate::Path::from_nodes(&f.graph, &nodes).unwrap();
        let expect: Vec<_> = [1, 4, 7, 10].iter().map(|&n| f.paper_link(n)).collect();
        assert_eq!(p.links(), expect.as_slice());
    }

    #[test]
    fn fig1_path5_is_m3_c_d_b_m2() {
        // Paper: "path 5 consisting of links 8, 7, 5, and 3".
        let f = fig1();
        let nodes = [
            f.node("M3"),
            f.node("C"),
            f.node("D"),
            f.node("B"),
            f.node("M2"),
        ];
        let p = crate::Path::from_nodes(&f.graph, &nodes).unwrap();
        let expect: Vec<_> = [8, 7, 5, 3].iter().map(|&n| f.paper_link(n)).collect();
        assert_eq!(p.links(), expect.as_slice());
    }

    #[test]
    fn fig1_path17_is_m3_d_m2() {
        // Paper: "path 17 (formed by links 9 and 10)".
        let f = fig1();
        let nodes = [f.node("M3"), f.node("D"), f.node("M2")];
        let p = crate::Path::from_nodes(&f.graph, &nodes).unwrap();
        let expect: Vec<_> = [9, 10].iter().map(|&n| f.paper_link(n)).collect();
        assert_eq!(p.links(), expect.as_slice());
    }

    #[test]
    fn fig1_attackers_perfectly_cut_link_1() {
        // Every monitor-to-monitor simple path crossing link 1 (M1-A)
        // visits B or C: A's only other neighbor is C.
        let f = fig1();
        let link1 = f.paper_link(1);
        let pool =
            enumerate::simple_paths_between_terminals(&f.graph, &f.monitors, 10, 10_000).unwrap();
        assert!(!pool.is_empty());
        let crossing: Vec<_> = pool.iter().filter(|p| p.contains_link(link1)).collect();
        assert!(!crossing.is_empty());
        for p in crossing {
            assert!(
                p.contains_any_node(&f.attackers),
                "path {:?} crosses link 1 without an attacker",
                p.display_with(&f.graph).unwrap()
            );
        }
    }

    #[test]
    #[should_panic(expected = "numbered 1..=10")]
    fn fig1_paper_link_out_of_range() {
        let _ = fig1().paper_link(11);
    }

    #[test]
    fn fig1_roundtrip_numbering() {
        let f = fig1();
        for n in 1..=10 {
            assert_eq!(f.paper_number(f.paper_link(n)), n);
        }
    }

    #[test]
    fn fig3a_is_a_perfect_cut() {
        let f = fig3_perfect_cut();
        let pool =
            enumerate::simple_paths_between_terminals(&f.graph, &f.monitors, 10, 10_000).unwrap();
        let crossing: Vec<_> = pool
            .iter()
            .filter(|p| p.contains_link(f.victim_link))
            .collect();
        assert!(!crossing.is_empty());
        for p in crossing {
            assert!(p.contains_any_node(&f.attackers));
        }
    }

    #[test]
    fn fig3b_is_an_imperfect_cut() {
        let f = fig3_imperfect_cut();
        let pool =
            enumerate::simple_paths_between_terminals(&f.graph, &f.monitors, 10, 10_000).unwrap();
        // At least one path crosses the victim link with no attacker
        // (M1-B-C-D-M4 from the paper).
        assert!(pool
            .iter()
            .any(|p| p.contains_link(f.victim_link) && !p.contains_any_node(&f.attackers)));
        // And at least one crossing path does contain an attacker.
        assert!(pool
            .iter()
            .any(|p| p.contains_link(f.victim_link) && p.contains_any_node(&f.attackers)));
    }
}
