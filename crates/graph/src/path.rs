use serde::{Deserialize, Serialize};

use crate::{Graph, GraphError, LinkId, NodeId};

/// A simple path in a [`Graph`]: an alternating, validated sequence of
/// nodes and links with no repeated nodes.
///
/// Paths are the measurement unit of network tomography: monitors send
/// probes along paths, and a path's metric is the sum of its links'
/// metrics (Section II of the paper).
///
/// ```
/// use tomo_graph::{Graph, Path};
///
/// # fn main() -> Result<(), tomo_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let c = g.add_node("c");
/// g.add_link(a, b)?;
/// g.add_link(b, c)?;
/// let p = Path::from_nodes(&g, &[a, b, c])?;
/// assert_eq!(p.num_links(), 2);
/// assert_eq!(p.source(), a);
/// assert_eq!(p.destination(), c);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
    links: Vec<LinkId>,
}

impl Path {
    /// Builds a path from a node sequence, resolving each consecutive pair
    /// to the connecting link.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPath`] if the sequence has fewer than
    /// two nodes, repeats a node, or two consecutive nodes are not
    /// adjacent; [`GraphError::UnknownNode`] if a node is missing.
    pub fn from_nodes(graph: &Graph, nodes: &[NodeId]) -> Result<Self, GraphError> {
        if nodes.len() < 2 {
            return Err(GraphError::InvalidPath {
                reason: format!("a path needs at least 2 nodes, got {}", nodes.len()),
            });
        }
        for &n in nodes {
            // Trigger UnknownNode early for nice errors.
            let _ = graph.label(n)?;
        }
        let mut seen = vec![false; graph.num_nodes()];
        for &n in nodes {
            if seen[n.index()] {
                return Err(GraphError::InvalidPath {
                    reason: format!("node {n} repeats; paths must be simple"),
                });
            }
            seen[n.index()] = true;
        }
        let mut links = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            match graph.link_between(w[0], w[1]) {
                Some(l) => links.push(l),
                None => {
                    return Err(GraphError::InvalidPath {
                        reason: format!("nodes {} and {} are not adjacent", w[0], w[1]),
                    })
                }
            }
        }
        Ok(Path {
            nodes: nodes.to_vec(),
            links,
        })
    }

    /// Node sequence, source first.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Link sequence in traversal order.
    #[must_use]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// First node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    #[must_use]
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("paths have ≥ 2 nodes")
    }

    /// Number of links (hops).
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the path traverses `link`.
    #[must_use]
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Returns `true` if the path visits `node` (including endpoints).
    #[must_use]
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Returns `true` if the path visits any node of `nodes`.
    #[must_use]
    pub fn contains_any_node(&self, nodes: &[NodeId]) -> bool {
        nodes.iter().any(|n| self.contains_node(*n))
    }

    /// Returns `true` if the path traverses any link of `links`.
    #[must_use]
    pub fn contains_any_link(&self, links: &[LinkId]) -> bool {
        links.iter().any(|l| self.contains_link(*l))
    }

    /// Human-readable rendering using graph labels, e.g. `"M1-A-C-D-M2"`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the path does not belong to
    /// `graph`.
    pub fn display_with(&self, graph: &Graph) -> Result<String, GraphError> {
        let mut parts = Vec::with_capacity(self.nodes.len());
        for &n in &self.nodes {
            parts.push(graph.label(n)?.to_string());
        }
        Ok(parts.join("-"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> (Graph, Vec<NodeId>) {
        // a - b
        // |   |
        // d - c
        let mut g = Graph::new();
        let ids: Vec<NodeId> = ["a", "b", "c", "d"]
            .iter()
            .map(|l| g.add_node(*l))
            .collect();
        g.add_link(ids[0], ids[1]).unwrap();
        g.add_link(ids[1], ids[2]).unwrap();
        g.add_link(ids[2], ids[3]).unwrap();
        g.add_link(ids[3], ids[0]).unwrap();
        (g, ids)
    }

    #[test]
    fn valid_path_resolves_links() {
        let (g, ids) = square();
        let p = Path::from_nodes(&g, &[ids[0], ids[1], ids[2]]).unwrap();
        assert_eq!(p.num_links(), 2);
        assert_eq!(p.source(), ids[0]);
        assert_eq!(p.destination(), ids[2]);
        assert_eq!(p.links(), &[LinkId(0), LinkId(1)]);
        assert!(p.contains_node(ids[1]));
        assert!(!p.contains_node(ids[3]));
        assert!(p.contains_link(LinkId(0)));
        assert!(!p.contains_link(LinkId(2)));
        assert_eq!(p.display_with(&g).unwrap(), "a-b-c");
    }

    #[test]
    fn any_node_any_link() {
        let (g, ids) = square();
        let p = Path::from_nodes(&g, &[ids[0], ids[1]]).unwrap();
        assert!(p.contains_any_node(&[ids[3], ids[1]]));
        assert!(!p.contains_any_node(&[ids[2], ids[3]]));
        assert!(p.contains_any_link(&[LinkId(0), LinkId(3)]));
        assert!(!p.contains_any_link(&[LinkId(1), LinkId(2)]));
        assert!(!p.contains_any_node(&[]));
    }

    #[test]
    fn rejects_too_short() {
        let (g, ids) = square();
        assert!(Path::from_nodes(&g, &[ids[0]]).is_err());
        assert!(Path::from_nodes(&g, &[]).is_err());
    }

    #[test]
    fn rejects_nonadjacent() {
        let (g, ids) = square();
        let err = Path::from_nodes(&g, &[ids[0], ids[2]]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidPath { .. }));
    }

    #[test]
    fn rejects_repeated_node() {
        let (g, ids) = square();
        let err = Path::from_nodes(&g, &[ids[0], ids[1], ids[2], ids[3], ids[0]]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidPath { .. }));
    }

    #[test]
    fn rejects_unknown_node() {
        let (g, ids) = square();
        assert!(Path::from_nodes(&g, &[ids[0], NodeId(99)]).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let (g, ids) = square();
        let p = Path::from_nodes(&g, &[ids[0], ids[1], ids[2]]).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Path = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
