use std::error::Error;
use std::fmt;

use crate::{LinkId, NodeId};

/// Errors produced by graph construction, queries, and parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id does not belong to the graph.
    UnknownNode {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        count: usize,
    },
    /// A link id does not belong to the graph.
    UnknownLink {
        /// The offending link.
        link: LinkId,
        /// Number of links in the graph.
        count: usize,
    },
    /// Attempted to add a self-loop (forbidden by the paper's model:
    /// "no link for i = j").
    SelfLoop {
        /// The node in question.
        node: NodeId,
    },
    /// Attempted to add a duplicate link ("at most one link between
    /// nodes").
    DuplicateLink {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
    },
    /// A path description is not a valid walk in the graph.
    InvalidPath {
        /// Explanation of the violation.
        reason: String,
    },
    /// A topology file could not be parsed.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// A generator could not satisfy its constraints
    /// (e.g. could not produce a connected graph within the retry budget).
    GenerationFailed {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { node, count } => {
                write!(f, "unknown node {node} (graph has {count} nodes)")
            }
            GraphError::UnknownLink { link, count } => {
                write!(f, "unknown link {link} (graph has {count} links)")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at {node} is not allowed")
            }
            GraphError::DuplicateLink { a, b } => {
                write!(f, "link between {a} and {b} already exists")
            }
            GraphError::InvalidPath { reason } => write!(f, "invalid path: {reason}"),
            GraphError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            GraphError::GenerationFailed { reason } => {
                write!(f, "topology generation failed: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::UnknownNode {
            node: NodeId(4),
            count: 2,
        };
        assert!(e.to_string().contains("n4"));
        assert!(GraphError::SelfLoop { node: NodeId(1) }
            .to_string()
            .contains("self-loop"));
        assert!(GraphError::Parse {
            line: 12,
            reason: "bad token".into()
        }
        .to_string()
        .contains("line 12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
