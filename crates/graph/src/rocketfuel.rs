//! Parsers for Rocketfuel-style ISP topology files.
//!
//! The paper's wireline experiments run on Rocketfuel AS maps (AS1221 /
//! Telstra). Two on-disk formats are supported:
//!
//! * **edge lists** — one `src dst` pair per line (comments with `#`),
//!   the format of the weighted/simplified Rocketfuel releases;
//! * **`.cch` router files** — the native Rocketfuel format
//!   (`uid @loc … -> <nbr> <nbr> … =name rn`), from which we keep
//!   internal routers and router-router adjacencies.
//!
//! The dataset itself is not bundled (see DESIGN.md); the synthetic
//! [`isp`](crate::isp) generator is the default wireline substrate.

use std::collections::HashMap;

use crate::{Graph, GraphError};

/// Parses an edge-list topology: one `src dst` pair of node names per
/// line. Blank lines and `#` comments are ignored; duplicate edges and
/// self-loops are skipped (Rocketfuel maps contain both).
///
/// # Errors
///
/// Returns [`GraphError::Parse`] if a non-comment line does not contain
/// at least two whitespace-separated tokens.
///
/// ```
/// let input = "# AS65000\na b\nb c\na c\n";
/// let g = tomo_graph::rocketfuel::from_edge_list_str(input).unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_links(), 3);
/// ```
pub fn from_edge_list_str(input: &str) -> Result<Graph, GraphError> {
    let mut graph = Graph::new();
    let mut nodes: HashMap<String, crate::NodeId> = HashMap::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(GraphError::Parse {
                line: lineno + 1,
                reason: format!("expected `src dst`, got {line:?}"),
            });
        };
        let ai = *nodes
            .entry(a.to_string())
            .or_insert_with(|| graph.add_node(a));
        let bi = *nodes
            .entry(b.to_string())
            .or_insert_with(|| graph.add_node(b));
        if ai != bi && graph.link_between(ai, bi).is_none() {
            graph.add_link(ai, bi).expect("checked fresh non-loop");
        }
    }
    Ok(graph)
}

/// Parses the native Rocketfuel `.cch` router-level format.
///
/// Each line describes one router:
///
/// ```text
/// uid @loc [+] [bb] (num_neigh) [&ext] -> <nuid-1> … {-euid} … =name rn
/// ```
///
/// We keep internal routers (`uid ≥ 0`) and the `<nuid>` internal
/// adjacencies; external (`-euid`, `{…}`) links are dropped, matching how
/// the paper uses the maps (a single AS's internal topology).
///
/// # Errors
///
/// Returns [`GraphError::Parse`] if a line has no leading integer uid or
/// no `->` separator.
pub fn from_cch_str(input: &str) -> Result<Graph, GraphError> {
    let mut graph = Graph::new();
    let mut nodes: HashMap<i64, crate::NodeId> = HashMap::new();
    let mut edges: Vec<(i64, i64)> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let uid_tok = tokens.next().expect("non-empty line has a token");
        let uid: i64 = uid_tok.parse().map_err(|_| GraphError::Parse {
            line: lineno + 1,
            reason: format!("expected integer uid, got {uid_tok:?}"),
        })?;
        if uid < 0 {
            // External router line; irrelevant for the internal map.
            continue;
        }
        let rest: Vec<&str> = tokens.collect();
        let Some(arrow) = rest.iter().position(|t| *t == "->") else {
            return Err(GraphError::Parse {
                line: lineno + 1,
                reason: "missing `->` separator".into(),
            });
        };
        nodes
            .entry(uid)
            .or_insert_with(|| graph.add_node(format!("r{uid}")));
        for tok in &rest[arrow + 1..] {
            if let Some(stripped) = tok.strip_prefix('<') {
                if let Some(nbr) = stripped.strip_suffix('>') {
                    if let Ok(nbr_uid) = nbr.parse::<i64>() {
                        if nbr_uid >= 0 {
                            edges.push((uid, nbr_uid));
                        }
                    }
                }
            }
            // `{-euid}` external links and `=name`, `rN` suffixes ignored.
        }
    }

    for (a, b) in edges {
        let ai = *nodes
            .entry(a)
            .or_insert_with(|| graph.add_node(format!("r{a}")));
        let bi = *nodes
            .entry(b)
            .or_insert_with(|| graph.add_node(format!("r{b}")));
        if ai != bi && graph.link_between(ai, bi).is_none() {
            graph.add_link(ai, bi).expect("checked fresh non-loop");
        }
    }
    Ok(graph)
}

/// Reads an edge-list topology from a file.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] with line 0 if the file cannot be read,
/// or the underlying parse error.
pub fn from_edge_list_file(path: &std::path::Path) -> Result<Graph, GraphError> {
    let input = std::fs::read_to_string(path).map_err(|e| GraphError::Parse {
        line: 0,
        reason: format!("cannot read {}: {e}", path.display()),
    })?;
    from_edge_list_str(&input)
}

/// Reads a `.cch` topology from a file.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] with line 0 if the file cannot be read,
/// or the underlying parse error.
pub fn from_cch_file(path: &std::path::Path) -> Result<Graph, GraphError> {
    let input = std::fs::read_to_string(path).map_err(|e| GraphError::Parse {
        line: 0,
        reason: format!("cannot read {}: {e}", path.display()),
    })?;
    from_cch_str(&input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_basic() {
        let g = from_edge_list_str("a b\nb c\n\n# comment\nc a\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_links(), 3);
    }

    #[test]
    fn edge_list_dedupes_and_skips_self_loops() {
        let g = from_edge_list_str("a b\nb a\na a\n").unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_links(), 1);
    }

    #[test]
    fn edge_list_rejects_malformed() {
        let err = from_edge_list_str("a b\nonly_one_token\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn edge_list_extra_columns_tolerated() {
        // Weighted format: third column ignored.
        let g = from_edge_list_str("a b 3.5\nb c 1.0\n").unwrap();
        assert_eq!(g.num_links(), 2);
    }

    #[test]
    fn cch_basic() {
        let input = "\
1 @sydney,+australia bb (3) -> <2> <3> =r1.syd rn
2 @sydney,+australia bb (2) -> <1> <3> =r2.syd rn
3 @melbourne,+australia (2) -> <1> <2> =r1.mel rn
";
        let g = from_cch_str(input).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_links(), 3);
        assert!(g.node_by_label("r1").is_some());
    }

    #[test]
    fn cch_skips_external_routers_and_links() {
        let input = "\
1 @x bb (2) &1 -> <2> {-77} =r1 rn
2 @x (1) -> <1> =r2 rn
-77 @ext -> <1> =ext rn
";
        let g = from_cch_str(input).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_links(), 1);
    }

    #[test]
    fn cch_forward_references_create_nodes() {
        // Node 5 referenced before (never) being defined on its own line.
        let input = "1 @x (1) -> <5> =r1 rn\n";
        let g = from_cch_str(input).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_links(), 1);
    }

    #[test]
    fn cch_rejects_bad_lines() {
        assert!(matches!(
            from_cch_str("notanint @x -> <1>\n"),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            from_cch_str("1 @x (0) =r1 rn\n"),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn files_missing_give_parse_error() {
        let missing = std::path::Path::new("/nonexistent/rocketfuel.cch");
        assert!(from_cch_file(missing).is_err());
        assert!(from_edge_list_file(missing).is_err());
    }
}
