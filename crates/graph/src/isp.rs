//! Synthetic ISP backbone topologies — the wireline stand-in for the
//! paper's Rocketfuel AS1221 (Telstra) dataset.
//!
//! The raw Rocketfuel maps are not redistributable with this repository,
//! so wireline experiments default to a seeded generator that reproduces
//! the structural features the scapegoating results depend on:
//!
//! * a small, densely meshed **backbone** (ring + random chords, so the
//!   core is 2-connected and offers path diversity),
//! * **access routers** attached by preferential attachment (heavy-tailed
//!   degrees, like real ISP maps), each multi-homed with probability
//!   `multihoming_prob` (so leaves are not trivially cut by one node).
//!
//! Users with the actual dataset can load it through
//! [`rocketfuel`](crate::rocketfuel) instead; the experiment harness
//! accepts either.

use rand::Rng;

use crate::{Graph, GraphError, NodeId};

/// Configuration for the synthetic ISP topology generator.
#[derive(Debug, Clone, PartialEq)]
pub struct IspConfig {
    /// Number of backbone (core) routers.
    pub backbone_nodes: usize,
    /// Extra random chords added to the backbone ring.
    pub backbone_chords: usize,
    /// Number of access routers attached to the core.
    pub access_nodes: usize,
    /// Probability that an access router gets a second uplink.
    pub multihoming_prob: f64,
}

impl Default for IspConfig {
    /// AS1221-like scale: ~100 routers with a 12-node core.
    fn default() -> Self {
        IspConfig {
            backbone_nodes: 12,
            backbone_chords: 8,
            access_nodes: 88,
            multihoming_prob: 0.45,
        }
    }
}

/// Generates an ISP-like topology.
///
/// The result is connected by construction: the backbone is a ring and
/// every access router has at least one uplink into the already-connected
/// component.
///
/// # Errors
///
/// Returns [`GraphError::GenerationFailed`] if `backbone_nodes < 3` or
/// `multihoming_prob ∉ [0, 1]`.
///
/// ```
/// use rand::SeedableRng;
/// use tomo_graph::isp::{self, IspConfig};
///
/// # fn main() -> Result<(), tomo_graph::GraphError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let g = isp::generate(&IspConfig::default(), &mut rng)?;
/// assert_eq!(g.num_nodes(), 100);
/// assert!(tomo_graph::traversal::is_connected(&g));
/// # Ok(())
/// # }
/// ```
pub fn generate<R: Rng + ?Sized>(config: &IspConfig, rng: &mut R) -> Result<Graph, GraphError> {
    if config.backbone_nodes < 3 {
        return Err(GraphError::GenerationFailed {
            reason: format!(
                "backbone needs at least 3 nodes, got {}",
                config.backbone_nodes
            ),
        });
    }
    if !(0.0..=1.0).contains(&config.multihoming_prob) {
        return Err(GraphError::GenerationFailed {
            reason: format!("multihoming_prob {} not in [0, 1]", config.multihoming_prob),
        });
    }

    let mut graph = Graph::new();
    let nb = config.backbone_nodes;

    // Backbone ring.
    let backbone: Vec<NodeId> = (0..nb).map(|i| graph.add_node(format!("bb{i}"))).collect();
    for i in 0..nb {
        graph
            .add_link(backbone[i], backbone[(i + 1) % nb])
            .expect("ring links are fresh");
    }
    // Random chords across the core (skip duplicates silently).
    let mut added = 0;
    let mut guard = 0;
    while added < config.backbone_chords && guard < config.backbone_chords * 20 {
        guard += 1;
        let a = backbone[rng.gen_range(0..nb)];
        let b = backbone[rng.gen_range(0..nb)];
        if a != b && graph.link_between(a, b).is_none() {
            graph.add_link(a, b).expect("checked fresh");
            added += 1;
        }
    }

    // Access routers by preferential attachment over current degrees.
    for i in 0..config.access_nodes {
        let new = graph.add_node(format!("ar{i}"));
        let first = pick_preferential(&graph, rng, new);
        graph
            .add_link(new, first)
            .expect("new node has no links yet");
        if rng.gen_bool(config.multihoming_prob) {
            // Second, distinct uplink.
            for _ in 0..20 {
                let second = pick_preferential(&graph, rng, new);
                if second != first && graph.link_between(new, second).is_none() {
                    graph.add_link(new, second).expect("checked fresh");
                    break;
                }
            }
        }
    }
    Ok(graph)
}

/// Picks an existing node (≠ `exclude`) with probability proportional to
/// `degree + 1`.
fn pick_preferential<R: Rng + ?Sized>(graph: &Graph, rng: &mut R, exclude: NodeId) -> NodeId {
    let total: usize = graph
        .nodes()
        .filter(|&n| n != exclude)
        .map(|n| graph.degree(n).expect("node exists") + 1)
        .sum();
    let mut ticket = rng.gen_range(0..total);
    for n in graph.nodes() {
        if n == exclude {
            continue;
        }
        let w = graph.degree(n).expect("node exists") + 1;
        if ticket < w {
            return n;
        }
        ticket -= w;
    }
    unreachable!("ticket drawn within total weight")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_config_generates_connected_as_scale_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(1221);
        let g = generate(&IspConfig::default(), &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 100);
        assert!(traversal::is_connected(&g));
        // Ring(12) + ≤8 chords + ≥88 uplinks.
        assert!(g.num_links() >= 100);
        assert!(g.average_degree() > 2.0);
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let g = generate(&IspConfig::default(), &mut rng).unwrap();
        let max_degree = g.nodes().map(|n| g.degree(n).unwrap()).max().unwrap();
        // Preferential attachment concentrates degree on hubs.
        assert!(
            max_degree >= 8,
            "expected a hub with degree ≥ 8, max was {max_degree}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = IspConfig::default();
        let a = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let b = generate(&cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        assert_eq!(a.num_links(), b.num_links());
        for l in a.links() {
            assert_eq!(a.endpoints(l).unwrap(), b.endpoints(l).unwrap());
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(generate(
            &IspConfig {
                backbone_nodes: 2,
                ..IspConfig::default()
            },
            &mut rng
        )
        .is_err());
        assert!(generate(
            &IspConfig {
                multihoming_prob: 1.5,
                ..IspConfig::default()
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn zero_access_nodes_is_just_the_core() {
        let cfg = IspConfig {
            backbone_nodes: 5,
            backbone_chords: 0,
            access_nodes: 0,
            multihoming_prob: 0.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generate(&cfg, &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_links(), 5); // the ring
        assert!(traversal::is_connected(&g));
    }
}
