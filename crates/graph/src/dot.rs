//! Graphviz DOT export for topologies and attack scenarios.
//!
//! Operators and paper readers both think in pictures; this module emits
//! `dot(1)` source so any scenario can be rendered with
//! `dot -Tsvg topology.dot`.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{Graph, LinkId, NodeId};

/// Visual role of a node in a rendered scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// A monitor (drawn as a double circle).
    Monitor,
    /// A malicious node (drawn filled).
    Attacker,
    /// Anything else.
    Plain,
}

/// Visual role of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkRole {
    /// A victim/scapegoat link (drawn bold and dashed).
    Victim,
    /// An attacker-controlled link.
    Controlled,
    /// Anything else.
    Plain,
}

/// Renders `graph` as an undirected Graphviz document.
///
/// `node_roles` and `link_roles` override the default appearance for the
/// listed elements; everything else renders plainly. Labels come from the
/// graph.
///
/// ```
/// use tomo_graph::{dot, topology};
///
/// let fig1 = topology::fig1();
/// let out = dot::to_dot(&fig1.graph, &[], &[]);
/// assert!(out.starts_with("graph tomography"));
/// assert!(out.contains("\"M1\" -- \"A\""));
/// ```
#[must_use]
pub fn to_dot(
    graph: &Graph,
    node_roles: &[(NodeId, NodeRole)],
    link_roles: &[(LinkId, LinkRole)],
) -> String {
    let node_map: HashMap<NodeId, NodeRole> = node_roles.iter().copied().collect();
    let link_map: HashMap<LinkId, LinkRole> = link_roles.iter().copied().collect();

    let mut out = String::from("graph tomography {\n  layout=neato;\n  overlap=false;\n");
    for v in graph.nodes() {
        let label = graph.label(v).expect("node exists");
        let attrs = match node_map.get(&v).copied().unwrap_or(NodeRole::Plain) {
            NodeRole::Monitor => " [shape=doublecircle, color=blue]",
            NodeRole::Attacker => " [style=filled, fillcolor=red]",
            NodeRole::Plain => "",
        };
        writeln!(out, "  \"{label}\"{attrs};").expect("write to String");
    }
    for l in graph.links() {
        let (a, b) = graph.endpoints(l).expect("link exists");
        let la = graph.label(a).expect("node exists");
        let lb = graph.label(b).expect("node exists");
        let attrs = match link_map.get(&l).copied().unwrap_or(LinkRole::Plain) {
            LinkRole::Victim => " [style=dashed, penwidth=3, color=orange]",
            LinkRole::Controlled => " [color=red]",
            LinkRole::Plain => "",
        };
        writeln!(out, "  \"{la}\" -- \"{lb}\"{attrs};").expect("write to String");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn plain_export_lists_all_elements() {
        let f = topology::fig1();
        let out = to_dot(&f.graph, &[], &[]);
        assert!(out.starts_with("graph tomography {"));
        assert!(out.trim_end().ends_with('}'));
        for label in ["M1", "M2", "M3", "A", "B", "C", "D"] {
            assert!(out.contains(&format!("\"{label}\"")), "{label} missing");
        }
        // 10 undirected edges.
        assert_eq!(out.matches(" -- ").count(), 10);
    }

    #[test]
    fn roles_change_attributes() {
        let f = topology::fig1();
        let nodes: Vec<_> = f
            .monitors
            .iter()
            .map(|&m| (m, NodeRole::Monitor))
            .chain(f.attackers.iter().map(|&a| (a, NodeRole::Attacker)))
            .collect();
        let links = vec![(f.paper_link(10), LinkRole::Victim)];
        let out = to_dot(&f.graph, &nodes, &links);
        assert_eq!(out.matches("doublecircle").count(), 3);
        assert_eq!(out.matches("fillcolor=red").count(), 2);
        assert_eq!(out.matches("penwidth=3").count(), 1);
    }

    #[test]
    fn empty_graph() {
        let out = to_dot(&Graph::new(), &[], &[]);
        assert!(out.contains("graph tomography"));
        assert_eq!(out.matches(" -- ").count(), 0);
    }
}
