//! Topology statistics.
//!
//! Used to sanity-check generated topologies against the families the
//! paper evaluates on (AS-like heavy-tailed degrees vs. geometric
//! wireless graphs) and to analyze attack exposure: articulation points
//! are exactly the nodes that can perfectly cut some victim from parts
//! of the network on their own.

use serde::{Deserialize, Serialize};

use crate::traversal;
use crate::{Graph, NodeId};

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Link count.
    pub links: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Hop diameter of the graph (`None` if disconnected or empty).
    pub diameter: Option<usize>,
    /// Average shortest-path length in hops (`None` if disconnected).
    pub avg_path_length: Option<f64>,
    /// Number of articulation points (cut vertices).
    pub articulation_points: usize,
}

/// Computes [`GraphStats`] (all-pairs BFS; fine for the ≤ few-hundred
/// node graphs used in tomography experiments).
#[must_use]
pub fn stats(graph: &Graph) -> GraphStats {
    let n = graph.num_nodes();
    let degrees: Vec<usize> = graph
        .nodes()
        .map(|v| graph.degree(v).expect("node exists"))
        .collect();
    let (mut diameter, mut sum, mut pairs) = (Some(0usize), 0usize, 0usize);
    if n == 0 || !traversal::is_connected(graph) {
        diameter = None;
    } else {
        for v in graph.nodes() {
            let dist = traversal::bfs_distances(graph, v).expect("node exists");
            for d in dist.into_iter().flatten() {
                if let Some(dia) = diameter.as_mut() {
                    *dia = (*dia).max(d);
                }
                if d > 0 {
                    sum += d;
                    pairs += 1;
                }
            }
        }
    }
    GraphStats {
        nodes: n,
        links: graph.num_links(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_degree: graph.average_degree(),
        diameter,
        avg_path_length: if diameter.is_some() && pairs > 0 {
            Some(sum as f64 / pairs as f64)
        } else {
            None
        },
        articulation_points: articulation_points(graph).len(),
    }
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
#[must_use]
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in graph.nodes() {
        let d = graph.degree(v).expect("node exists");
        if hist.len() <= d {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Articulation points (cut vertices) via Tarjan's low-link algorithm,
/// implemented iteratively to stay stack-safe on path-like graphs.
///
/// An articulation point inside a measurement infrastructure is a
/// one-node perfect cut for everything behind it — the structurally
/// most dangerous place for an attacker to sit.
#[must_use]
pub fn articulation_points(graph: &Graph) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut disc = vec![usize::MAX; n]; // discovery times
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_ap = vec![false; n];
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS: stack of (node, neighbor cursor).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;

        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            let neighbors = graph.neighbors(NodeId(u)).expect("node exists");
            if *cursor < neighbors.len() {
                let (w, _) = neighbors[*cursor];
                *cursor += 1;
                let w = w.index();
                if disc[w] == usize::MAX {
                    parent[w] = u;
                    if u == root {
                        root_children += 1;
                    }
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    stack.push((w, 0));
                } else if w != parent[u] {
                    low[u] = low[u].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        is_ap[p] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_ap[root] = true;
        }
    }
    (0..n).filter(|&v| is_ap[v]).map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("v{i}"))).collect();
        for w in ids.windows(2) {
            g.add_link(w[0], w[1]).unwrap();
        }
        g
    }

    fn cycle_graph(n: usize) -> Graph {
        let mut g = path_graph(n);
        g.add_link(NodeId(n - 1), NodeId(0)).unwrap();
        g
    }

    #[test]
    fn stats_of_path_graph() {
        let s = stats(&path_graph(5));
        assert_eq!(s.nodes, 5);
        assert_eq!(s.links, 4);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.diameter, Some(4));
        // 3 interior nodes are articulation points.
        assert_eq!(s.articulation_points, 3);
        // Average path length of P5: known value 2.0.
        assert!((s.avg_path_length.unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_cycle_graph() {
        let s = stats(&cycle_graph(6));
        assert_eq!(s.diameter, Some(3));
        assert_eq!(s.articulation_points, 0);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn disconnected_and_empty() {
        let mut g = path_graph(3);
        g.add_node("island");
        let s = stats(&g);
        assert_eq!(s.diameter, None);
        assert_eq!(s.avg_path_length, None);
        assert_eq!(s.min_degree, 0);

        let s = stats(&Graph::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.diameter, None);
        assert_eq!(s.articulation_points, 0);
    }

    #[test]
    fn degree_histogram_counts() {
        let hist = degree_histogram(&path_graph(4));
        // P4: two degree-1 ends, two degree-2 interiors.
        assert_eq!(hist, vec![0, 2, 2]);
        assert_eq!(degree_histogram(&Graph::new()), Vec::<usize>::new());
    }

    #[test]
    fn articulation_points_of_barbell() {
        // Two triangles joined by a bridge node:
        //   0-1-2-0   2-3   3-4-5-3
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..6).map(|i| g.add_node(format!("v{i}"))).collect();
        g.add_link(ids[0], ids[1]).unwrap();
        g.add_link(ids[1], ids[2]).unwrap();
        g.add_link(ids[2], ids[0]).unwrap();
        g.add_link(ids[2], ids[3]).unwrap();
        g.add_link(ids[3], ids[4]).unwrap();
        g.add_link(ids[4], ids[5]).unwrap();
        g.add_link(ids[5], ids[3]).unwrap();
        let aps = articulation_points(&g);
        assert_eq!(aps, vec![ids[2], ids[3]]);
    }

    #[test]
    fn fig1_has_no_articulation_points() {
        // The Fig. 1 network is 2-connected: no single node can cut it.
        let f = crate::topology::fig1();
        assert!(articulation_points(&f.graph).is_empty());
    }

    #[test]
    fn isp_topology_is_heavy_tailed_and_connected() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let g = crate::isp::generate(&crate::isp::IspConfig::default(), &mut rng).unwrap();
        let s = stats(&g);
        assert!(s.diameter.is_some(), "connected");
        assert!(s.max_degree >= 4 * s.min_degree.max(1), "heavy tail");
        // Leaf-heavy access layer ⇒ articulation points exist.
        assert!(s.articulation_points > 0);
    }

    #[test]
    fn star_center_is_articulation_point() {
        let mut g = Graph::new();
        let c = g.add_node("c");
        for i in 0..4 {
            let v = g.add_node(format!("v{i}"));
            g.add_link(c, v).unwrap();
        }
        assert_eq!(articulation_points(&g), vec![c]);
        let s = stats(&g);
        assert_eq!(s.diameter, Some(2));
        assert_eq!(s.max_degree, 4);
    }
}
