//! Shortest paths: Dijkstra and Yen's k-shortest loopless paths.
//!
//! Monitor pairs use these to build candidate measurement-path pools. Yen's
//! algorithm provides path *diversity*, which identifiability-driven path
//! selection needs (distinct paths must cover independent link
//! combinations).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{Graph, GraphError, NodeId, Path};

/// Max-heap entry flipped into a min-heap by reversing the comparison.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest distance first; ties by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra with optional per-link weights (unit weights when `None`) and
/// optional node/link bans (used internally by Yen's spur computation).
///
/// Returns the shortest path from `source` to `target`, or `None` if
/// unreachable.
///
/// # Errors
///
/// Returns [`GraphError::UnknownNode`] for missing endpoints, or
/// [`GraphError::InvalidPath`] if `weights` has the wrong length or a
/// negative entry.
pub fn dijkstra_with_bans(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    weights: Option<&[f64]>,
    banned_nodes: &[bool],
    banned_links: &[bool],
) -> Result<Option<Path>, GraphError> {
    let _ = graph.label(source)?;
    let _ = graph.label(target)?;
    if let Some(w) = weights {
        if w.len() != graph.num_links() {
            return Err(GraphError::InvalidPath {
                reason: format!(
                    "weights length {} does not match link count {}",
                    w.len(),
                    graph.num_links()
                ),
            });
        }
        if w.iter().any(|&x| x < 0.0 || !x.is_finite()) {
            return Err(GraphError::InvalidPath {
                reason: "link weights must be finite and non-negative".into(),
            });
        }
    }
    if banned_nodes.get(source.index()).copied().unwrap_or(false)
        || banned_nodes.get(target.index()).copied().unwrap_or(false)
    {
        return Ok(None);
    }

    let n = graph.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        if u == target {
            break;
        }
        for &(v, l) in graph.neighbors(u)? {
            if done[v.index()]
                || banned_nodes.get(v.index()).copied().unwrap_or(false)
                || banned_links.get(l.index()).copied().unwrap_or(false)
            {
                continue;
            }
            let w = weights.map_or(1.0, |ws| ws[l.index()]);
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    if dist[target.index()].is_infinite() {
        return Ok(None);
    }
    // Reconstruct node sequence.
    let mut nodes = vec![target];
    let mut cur = target;
    while cur != source {
        cur = prev[cur.index()].expect("reached nodes have predecessors");
        nodes.push(cur);
    }
    nodes.reverse();
    Ok(Some(Path::from_nodes(graph, &nodes)?))
}

/// Shortest path by hop count (unit weights).
///
/// # Errors
///
/// Returns [`GraphError::UnknownNode`] for missing endpoints.
///
/// ```
/// use tomo_graph::{Graph, shortest};
///
/// # fn main() -> Result<(), tomo_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let c = g.add_node("c");
/// g.add_link(a, b)?;
/// g.add_link(b, c)?;
/// g.add_link(a, c)?;
/// let p = shortest::shortest_path(&g, a, c)?.expect("connected");
/// assert_eq!(p.num_links(), 1);
/// # Ok(())
/// # }
/// ```
pub fn shortest_path(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
) -> Result<Option<Path>, GraphError> {
    dijkstra_with_bans(graph, source, target, None, &[], &[])
}

/// Yen's algorithm: up to `k` shortest loopless paths from `source` to
/// `target` by hop count, in non-decreasing length order.
///
/// # Errors
///
/// Returns [`GraphError::UnknownNode`] for missing endpoints.
pub fn yen_k_shortest(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    k: usize,
) -> Result<Vec<Path>, GraphError> {
    let mut result: Vec<Path> = Vec::new();
    if k == 0 {
        return Ok(result);
    }
    let Some(first) = shortest_path(graph, source, target)? else {
        return Ok(result);
    };
    result.push(first);

    // Candidate pool, kept sorted by (len, node sequence) for determinism.
    let mut candidates: Vec<Path> = Vec::new();

    while result.len() < k {
        let last = result.last().expect("nonempty").clone();
        // Each node of the previous path (except the final node) is a spur.
        for spur_idx in 0..last.nodes().len() - 1 {
            let spur_node = last.nodes()[spur_idx];
            let root_nodes = &last.nodes()[..=spur_idx];

            let mut banned_links = vec![false; graph.num_links()];
            let mut banned_nodes = vec![false; graph.num_nodes()];

            // Ban the next link of every accepted/candidate path sharing
            // this root.
            for p in result.iter() {
                if p.nodes().len() > spur_idx && p.nodes()[..=spur_idx] == *root_nodes {
                    if let Some(&l) = p.links().get(spur_idx) {
                        banned_links[l.index()] = true;
                    }
                }
            }
            // Ban root nodes except the spur node (loopless requirement).
            for &n in &root_nodes[..spur_idx] {
                banned_nodes[n.index()] = true;
            }

            if let Some(spur_path) =
                dijkstra_with_bans(graph, spur_node, target, None, &banned_nodes, &banned_links)?
            {
                // Total path = root + spur.
                let mut nodes = root_nodes[..spur_idx].to_vec();
                nodes.extend_from_slice(spur_path.nodes());
                if let Ok(total) = Path::from_nodes(graph, &nodes) {
                    if !result.contains(&total) && !candidates.contains(&total) {
                        candidates.push(total);
                    }
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| {
            a.num_links()
                .cmp(&b.num_links())
                .then_with(|| a.nodes().cmp(b.nodes()))
        });
        result.push(candidates.remove(0));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkId;

    /// Diamond with a long detour:
    /// a-b, b-d, a-c, c-d, a-d(direct), c-e, e-d
    fn diamond() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|l| g.add_node(*l))
            .collect();
        g.add_link(ids[0], ids[1]).unwrap(); // l0 a-b
        g.add_link(ids[1], ids[3]).unwrap(); // l1 b-d
        g.add_link(ids[0], ids[2]).unwrap(); // l2 a-c
        g.add_link(ids[2], ids[3]).unwrap(); // l3 c-d
        g.add_link(ids[0], ids[3]).unwrap(); // l4 a-d
        g.add_link(ids[2], ids[4]).unwrap(); // l5 c-e
        g.add_link(ids[4], ids[3]).unwrap(); // l6 e-d
        (g, ids)
    }

    #[test]
    fn shortest_is_direct_link() {
        let (g, ids) = diamond();
        let p = shortest_path(&g, ids[0], ids[3]).unwrap().unwrap();
        assert_eq!(p.num_links(), 1);
        assert_eq!(p.links(), &[LinkId(4)]);
    }

    #[test]
    fn weighted_shortest_avoids_heavy_link() {
        let (g, ids) = diamond();
        let mut w = vec![1.0; g.num_links()];
        w[4] = 100.0; // direct a-d is expensive now
        let p = dijkstra_with_bans(&g, ids[0], ids[3], Some(&w), &[], &[])
            .unwrap()
            .unwrap();
        assert_eq!(p.num_links(), 2);
    }

    #[test]
    fn weights_validated() {
        let (g, ids) = diamond();
        assert!(dijkstra_with_bans(&g, ids[0], ids[3], Some(&[1.0]), &[], &[]).is_err());
        let neg = vec![-1.0; g.num_links()];
        assert!(dijkstra_with_bans(&g, ids[0], ids[3], Some(&neg), &[], &[]).is_err());
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        assert!(shortest_path(&g, a, b).unwrap().is_none());
    }

    #[test]
    fn banned_node_blocks_path() {
        let (g, ids) = diamond();
        let mut banned_nodes = vec![false; g.num_nodes()];
        banned_nodes[ids[1].index()] = true; // ban b
        let mut banned_links = vec![false; g.num_links()];
        banned_links[4] = true; // ban direct a-d
        let p = dijkstra_with_bans(&g, ids[0], ids[3], None, &banned_nodes, &banned_links)
            .unwrap()
            .unwrap();
        // Must go a-c-d.
        assert_eq!(p.num_links(), 2);
        assert!(p.contains_node(ids[2]));
    }

    #[test]
    fn banned_endpoint_returns_none() {
        let (g, ids) = diamond();
        let mut banned = vec![false; g.num_nodes()];
        banned[ids[0].index()] = true;
        assert!(dijkstra_with_bans(&g, ids[0], ids[3], None, &banned, &[])
            .unwrap()
            .is_none());
    }

    #[test]
    fn yen_returns_increasing_lengths_without_duplicates() {
        let (g, ids) = diamond();
        let paths = yen_k_shortest(&g, ids[0], ids[3], 5).unwrap();
        // Paths a→d: direct (1), a-b-d (2), a-c-d (2), a-c-e-d (3) = 4 total.
        assert_eq!(paths.len(), 4);
        for w in paths.windows(2) {
            assert!(w[0].num_links() <= w[1].num_links());
            assert_ne!(w[0], w[1]);
        }
        assert_eq!(paths[0].num_links(), 1);
        assert_eq!(paths[3].num_links(), 3);
        // All simple & valid (constructor guarantees, spot-check endpoints).
        for p in &paths {
            assert_eq!(p.source(), ids[0]);
            assert_eq!(p.destination(), ids[3]);
        }
    }

    #[test]
    fn yen_k_zero_and_disconnected() {
        let (g, ids) = diamond();
        assert!(yen_k_shortest(&g, ids[0], ids[3], 0).unwrap().is_empty());
        let mut g2 = Graph::new();
        let a = g2.add_node("a");
        let b = g2.add_node("b");
        assert!(yen_k_shortest(&g2, a, b, 3).unwrap().is_empty());
    }

    #[test]
    fn yen_more_than_available_paths() {
        let (g, ids) = diamond();
        let paths = yen_k_shortest(&g, ids[0], ids[3], 100).unwrap();
        assert_eq!(paths.len(), 4);
    }
}
