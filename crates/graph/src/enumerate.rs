//! Bounded enumeration of simple paths.
//!
//! The Fig. 1 experiments use an explicit pool of monitor-to-monitor
//! simple paths; larger topologies use bounded enumeration to build
//! candidate pools for identifiability-driven path selection.

use crate::{Graph, GraphError, NodeId, Path};

/// Enumerates simple paths from `source` to `target` with at most
/// `max_hops` links, stopping after `max_count` paths.
///
/// Results are returned sorted by `(hop count, node sequence)` so the
/// output is canonical regardless of adjacency insertion order.
///
/// # Errors
///
/// Returns [`GraphError::UnknownNode`] for missing endpoints.
///
/// ```
/// use tomo_graph::{enumerate, Graph};
///
/// # fn main() -> Result<(), tomo_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let c = g.add_node("c");
/// g.add_link(a, b)?;
/// g.add_link(b, c)?;
/// g.add_link(a, c)?;
/// let paths = enumerate::simple_paths(&g, a, c, 5, 100)?;
/// assert_eq!(paths.len(), 2); // a-c and a-b-c
/// # Ok(())
/// # }
/// ```
pub fn simple_paths(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    max_hops: usize,
    max_count: usize,
) -> Result<Vec<Path>, GraphError> {
    let _ = graph.label(source)?;
    let _ = graph.label(target)?;
    let mut found: Vec<Vec<NodeId>> = Vec::new();
    if max_count == 0 || max_hops == 0 || source == target {
        return Ok(Vec::new());
    }

    let mut on_path = vec![false; graph.num_nodes()];
    let mut stack: Vec<NodeId> = vec![source];
    on_path[source.index()] = true;

    fn dfs(
        graph: &Graph,
        target: NodeId,
        max_hops: usize,
        max_count: usize,
        stack: &mut Vec<NodeId>,
        on_path: &mut Vec<bool>,
        found: &mut Vec<Vec<NodeId>>,
    ) -> Result<(), GraphError> {
        if found.len() >= max_count {
            return Ok(());
        }
        let current = *stack.last().expect("stack nonempty");
        if current == target {
            found.push(stack.clone());
            return Ok(());
        }
        if stack.len() > max_hops {
            return Ok(());
        }
        for &(next, _) in graph.neighbors(current)? {
            if on_path[next.index()] {
                continue;
            }
            stack.push(next);
            on_path[next.index()] = true;
            dfs(graph, target, max_hops, max_count, stack, on_path, found)?;
            on_path[next.index()] = false;
            stack.pop();
            if found.len() >= max_count {
                break;
            }
        }
        Ok(())
    }

    dfs(
        graph,
        target,
        max_hops,
        max_count,
        &mut stack,
        &mut on_path,
        &mut found,
    )?;

    found.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    found
        .into_iter()
        .map(|nodes| Path::from_nodes(graph, &nodes))
        .collect()
}

/// Enumerates simple paths between every ordered pair of the given
/// terminals (each unordered pair once, smaller id as source), sorted by
/// `(source, dest, hop count, node sequence)`.
///
/// This is the pool construction used for monitor sets: tomography probes
/// run between distinct monitors.
///
/// # Errors
///
/// Returns [`GraphError::UnknownNode`] if a terminal is missing.
pub fn simple_paths_between_terminals(
    graph: &Graph,
    terminals: &[NodeId],
    max_hops: usize,
    max_count_per_pair: usize,
) -> Result<Vec<Path>, GraphError> {
    let mut sorted = terminals.to_vec();
    sorted.sort();
    sorted.dedup();
    let mut all = Vec::new();
    for (i, &s) in sorted.iter().enumerate() {
        for &t in &sorted[i + 1..] {
            all.extend(simple_paths(graph, s, t, max_hops, max_count_per_pair)?);
        }
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..4).map(|i| g.add_node(format!("v{i}"))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_link(ids[i], ids[j]).unwrap();
            }
        }
        (g, ids)
    }

    #[test]
    fn k4_path_counts() {
        let (g, ids) = k4();
        // Simple paths v0→v3 in K4: 1 direct + 2 two-hop + 2 three-hop = 5.
        let paths = simple_paths(&g, ids[0], ids[3], 10, 100).unwrap();
        assert_eq!(paths.len(), 5);
        assert_eq!(paths[0].num_links(), 1);
        assert_eq!(paths[4].num_links(), 3);
    }

    #[test]
    fn max_hops_prunes() {
        let (g, ids) = k4();
        let paths = simple_paths(&g, ids[0], ids[3], 2, 100).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.num_links() <= 2));
    }

    #[test]
    fn max_count_truncates() {
        let (g, ids) = k4();
        let paths = simple_paths(&g, ids[0], ids[3], 10, 2).unwrap();
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn same_source_target_empty() {
        let (g, ids) = k4();
        assert!(simple_paths(&g, ids[0], ids[0], 5, 10).unwrap().is_empty());
    }

    #[test]
    fn disconnected_pair_empty() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        assert!(simple_paths(&g, a, b, 5, 10).unwrap().is_empty());
    }

    #[test]
    fn unknown_node_rejected() {
        let (g, ids) = k4();
        assert!(simple_paths(&g, ids[0], NodeId(99), 5, 10).is_err());
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let (g, ids) = k4();
        let a = simple_paths(&g, ids[0], ids[3], 10, 100).unwrap();
        let b = simple_paths(&g, ids[0], ids[3], 10, 100).unwrap();
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(
                w[0].num_links() < w[1].num_links()
                    || (w[0].num_links() == w[1].num_links() && w[0].nodes() <= w[1].nodes())
            );
        }
    }

    #[test]
    fn terminal_pool_covers_all_pairs() {
        let (g, ids) = k4();
        let terminals = [ids[0], ids[1], ids[2]];
        let pool = simple_paths_between_terminals(&g, &terminals, 3, 100).unwrap();
        // Each of the 3 pairs in K4 with ≤3 hops: direct(1) + 2 two-hop +
        // 2 three-hop = 5 paths per pair.
        assert_eq!(pool.len(), 15);
        // Duplicated terminals are deduplicated.
        let pool2 = simple_paths_between_terminals(&g, &[ids[0], ids[0], ids[1]], 3, 100).unwrap();
        let pool3 = simple_paths_between_terminals(&g, &[ids[0], ids[1]], 3, 100).unwrap();
        assert_eq!(pool2, pool3);
    }
}
