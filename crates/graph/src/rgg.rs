//! Random geometric graphs — the paper's wireless-network model.
//!
//! Section V-C: "we use the random geometric graph to generate wireless
//! network topologies … randomly distribute 100 nodes on region
//! `[0, sqrt(100/λ)]²` according to node density λ = 5 such that each node
//! has 5 neighbors on average."
//!
//! With node density λ and a connection radius `r`, the expected degree is
//! `λ·π·r²`; the generator derives `r` from the requested average degree.
//!
//! At the paper's parameters (n = 100, average degree 5) a uniform RGG is
//! *below* the connectivity threshold once border effects shave the
//! effective degree, so full-placement connectivity essentially never
//! happens. Like standard practice for sparse RGG experiments, the
//! generator therefore falls back to the **giant connected component**
//! when no fully connected placement is found, and reports which case
//! occurred via [`RggTopology::fully_connected`].

use rand::Rng;

use crate::{Graph, GraphError, NodeId};

/// Configuration for a random geometric graph.
#[derive(Debug, Clone, PartialEq)]
pub struct RggConfig {
    /// Number of nodes placed (the paper uses 100).
    pub num_nodes: usize,
    /// Node density λ (nodes per unit area; the paper uses 5).
    pub density: f64,
    /// Target average degree (the paper uses 5 neighbors on average).
    pub target_avg_degree: f64,
    /// Placements to try for a *fully* connected graph before falling back
    /// to the giant component.
    pub connect_attempts: usize,
    /// Minimum acceptable giant-component fraction of `num_nodes`.
    pub min_component_fraction: f64,
}

impl Default for RggConfig {
    /// The paper's wireless setup: 100 nodes, λ = 5, average degree 5.
    fn default() -> Self {
        RggConfig {
            num_nodes: 100,
            density: 5.0,
            target_avg_degree: 5.0,
            connect_attempts: 5,
            min_component_fraction: 0.6,
        }
    }
}

/// A generated wireless topology: the graph plus node positions (useful
/// for plots and for distance-dependent extensions).
#[derive(Debug, Clone)]
pub struct RggTopology {
    /// The connectivity graph (always connected).
    pub graph: Graph,
    /// Node positions, indexed by node id of `graph`.
    pub positions: Vec<(f64, f64)>,
    /// Side length of the deployment region.
    pub region_side: f64,
    /// Connection radius used.
    pub radius: f64,
    /// `true` if the full placement was connected; `false` if `graph` is
    /// the giant component of a disconnected placement.
    pub fully_connected: bool,
}

impl RggConfig {
    /// Deployment region side `sqrt(n/λ)`.
    #[must_use]
    pub fn region_side(&self) -> f64 {
        (self.num_nodes as f64 / self.density).sqrt()
    }

    /// Connection radius giving the target average degree:
    /// `r = sqrt(target_avg_degree / (λ·π))`.
    #[must_use]
    pub fn radius(&self) -> f64 {
        (self.target_avg_degree / (self.density * std::f64::consts::PI)).sqrt()
    }

    /// Generates a connected wireless topology (see the module docs for
    /// the giant-component fallback).
    ///
    /// # Errors
    ///
    /// * [`GraphError::GenerationFailed`] if the configuration is
    ///   degenerate (zero nodes, non-positive density/degree) or the giant
    ///   component stays below `min_component_fraction` for all attempts.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<RggTopology, GraphError> {
        if self.num_nodes == 0 {
            return Err(GraphError::GenerationFailed {
                reason: "num_nodes must be positive".into(),
            });
        }
        if self.density <= 0.0 || self.target_avg_degree <= 0.0 {
            return Err(GraphError::GenerationFailed {
                reason: "density and target_avg_degree must be positive".into(),
            });
        }
        let side = self.region_side();
        let radius = self.radius();
        let attempts = self.connect_attempts.max(1);

        type Candidate = (Graph, Vec<(f64, f64)>, bool);
        let mut best: Option<Candidate> = None;
        for _ in 0..attempts {
            let (graph, positions) = self.place(rng, side, radius);
            let components = crate::traversal::connected_components(&graph);
            let giant = components
                .iter()
                .max_by_key(|c| c.len())
                .expect("num_nodes > 0 implies a component");
            if giant.len() == self.num_nodes {
                return Ok(RggTopology {
                    graph,
                    positions,
                    region_side: side,
                    radius,
                    fully_connected: true,
                });
            }
            let replace = match &best {
                None => true,
                Some((g, _, _)) => giant.len() > g.num_nodes(),
            };
            if replace {
                let (sub, mapping) = graph
                    .induced_subgraph(giant)
                    .expect("component members exist");
                let sub_pos = mapping.iter().map(|&n| positions[n.index()]).collect();
                best = Some((sub, sub_pos, false));
            }
        }

        let (graph, positions, fully_connected) =
            best.expect("attempts ≥ 1 always produces a candidate");
        let fraction = graph.num_nodes() as f64 / self.num_nodes as f64;
        if fraction < self.min_component_fraction {
            return Err(GraphError::GenerationFailed {
                reason: format!(
                    "giant component has only {} of {} nodes (fraction {:.2} < {:.2}); \
                     increase density or target_avg_degree",
                    graph.num_nodes(),
                    self.num_nodes,
                    fraction,
                    self.min_component_fraction
                ),
            });
        }
        Ok(RggTopology {
            graph,
            positions,
            region_side: side,
            radius,
            fully_connected,
        })
    }

    /// One uniform placement with radius-based connectivity.
    fn place<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        side: f64,
        radius: f64,
    ) -> (Graph, Vec<(f64, f64)>) {
        let r2 = radius * radius;
        let positions: Vec<(f64, f64)> = (0..self.num_nodes)
            .map(|_| (rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect();
        let mut graph = Graph::new();
        for i in 0..self.num_nodes {
            graph.add_node(format!("w{i}"));
        }
        for i in 0..self.num_nodes {
            for j in (i + 1)..self.num_nodes {
                let dx = positions[i].0 - positions[j].0;
                let dy = positions[i].1 - positions[j].1;
                if dx * dx + dy * dy <= r2 {
                    graph
                        .add_link(NodeId(i), NodeId(j))
                        .expect("i < j and nodes exist");
                }
            }
        }
        (graph, positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_defaults() {
        let cfg = RggConfig::default();
        assert_eq!(cfg.num_nodes, 100);
        assert!((cfg.region_side() - (100.0f64 / 5.0).sqrt()).abs() < 1e-12);
        // r = sqrt(5/(5π)) = sqrt(1/π)
        assert!((cfg.radius() - (1.0 / std::f64::consts::PI).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn generates_connected_graph_with_expected_degree() {
        let cfg = RggConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let topo = cfg.generate(&mut rng).expect("paper config must generate");
        assert!(crate::traversal::is_connected(&topo.graph));
        // Giant component keeps most of the 100 nodes.
        assert!(
            topo.graph.num_nodes() >= 60,
            "kept {}",
            topo.graph.num_nodes()
        );
        // Average degree within a loose band of the target (border effects
        // reduce it below 5).
        let avg = topo.graph.average_degree();
        assert!(avg > 2.5 && avg < 8.0, "average degree {avg}");
        assert_eq!(topo.positions.len(), topo.graph.num_nodes());
        let side = topo.region_side;
        assert!(topo
            .positions
            .iter()
            .all(|&(x, y)| (0.0..=side).contains(&x) && (0.0..=side).contains(&y)));
    }

    #[test]
    fn dense_config_is_fully_connected() {
        let cfg = RggConfig {
            num_nodes: 60,
            target_avg_degree: 20.0,
            ..RggConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let topo = cfg.generate(&mut rng).unwrap();
        assert!(topo.fully_connected);
        assert_eq!(topo.graph.num_nodes(), 60);
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = RggConfig {
            num_nodes: 40,
            ..RggConfig::default()
        };
        let a = cfg.generate(&mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        let b = cfg.generate(&mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        assert_eq!(a.graph.num_links(), b.graph.num_links());
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(RggConfig {
            num_nodes: 0,
            ..RggConfig::default()
        }
        .generate(&mut rng)
        .is_err());
        assert!(RggConfig {
            density: 0.0,
            ..RggConfig::default()
        }
        .generate(&mut rng)
        .is_err());
        assert!(RggConfig {
            target_avg_degree: -1.0,
            ..RggConfig::default()
        }
        .generate(&mut rng)
        .is_err());
    }

    #[test]
    fn impossibly_sparse_config_fails_cleanly() {
        // Tiny radius: nodes essentially never connect, so the giant
        // component stays far below the acceptance fraction.
        let cfg = RggConfig {
            num_nodes: 50,
            density: 5.0,
            target_avg_degree: 0.01,
            connect_attempts: 3,
            min_component_fraction: 0.6,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(matches!(
            cfg.generate(&mut rng),
            Err(GraphError::GenerationFailed { .. })
        ));
    }

    #[test]
    fn single_node_graph_is_connected() {
        let cfg = RggConfig {
            num_nodes: 1,
            ..RggConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let topo = cfg.generate(&mut rng).unwrap();
        assert_eq!(topo.graph.num_nodes(), 1);
        assert_eq!(topo.graph.num_links(), 0);
        assert!(topo.fully_connected);
    }

    #[test]
    fn giant_component_positions_follow_remap() {
        let cfg = RggConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let topo = cfg.generate(&mut rng).unwrap();
        // Every linked pair must actually be within the radius.
        for l in topo.graph.links() {
            let (a, b) = topo.graph.endpoints(l).unwrap();
            let (ax, ay) = topo.positions[a.index()];
            let (bx, by) = topo.positions[b.index()];
            let d2 = (ax - bx).powi(2) + (ay - by).powi(2);
            assert!(d2 <= topo.radius * topo.radius + 1e-12);
        }
    }
}
