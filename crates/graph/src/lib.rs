//! Graph substrate and topology generators for network-tomography
//! experiments.
//!
//! The scapegoating paper evaluates on three topology families, all of
//! which this crate provides:
//!
//! * the **Fig. 1 example network** (7 nodes, 10 links, 3 monitors) —
//!   [`topology::fig1`],
//! * **wireline ISP backbones** (the paper uses Rocketfuel AS1221) — a
//!   [`rocketfuel`] parser for the real dataset plus a seeded synthetic
//!   stand-in, [`isp::IspConfig`],
//! * **wireless multi-hop networks** modeled as random geometric graphs —
//!   [`rgg::RggConfig`].
//!
//! On top of the plain [`Graph`] type it implements the path machinery
//! tomography needs: BFS/Dijkstra/Yen shortest paths
//! ([`shortest`]) and bounded simple-path enumeration ([`enumerate`]).
//!
//! # Example
//!
//! ```
//! use tomo_graph::topology;
//!
//! let fig1 = topology::fig1();
//! assert_eq!(fig1.graph.num_nodes(), 7);
//! assert_eq!(fig1.graph.num_links(), 10);
//! assert_eq!(fig1.monitors.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod ids;
mod path;

pub mod dot;
pub mod enumerate;
pub mod isp;
pub mod rgg;
pub mod rocketfuel;
pub mod shortest;
pub mod stats;
pub mod topology;
pub mod traversal;
pub mod waxman;

pub use error::GraphError;
pub use graph::Graph;
pub use ids::{LinkId, NodeId};
pub use path::Path;
