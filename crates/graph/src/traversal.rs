//! Breadth-first traversal, connectivity, and component analysis.

use std::collections::VecDeque;

use crate::{Graph, GraphError, NodeId};

/// Nodes reachable from `start` (including `start`), in BFS order.
///
/// # Errors
///
/// Returns [`GraphError::UnknownNode`] if `start` is missing.
///
/// ```
/// use tomo_graph::{Graph, traversal};
///
/// # fn main() -> Result<(), tomo_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let _lonely = g.add_node("c");
/// g.add_link(a, b)?;
/// assert_eq!(traversal::bfs_reachable(&g, a)?.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn bfs_reachable(graph: &Graph, start: NodeId) -> Result<Vec<NodeId>, GraphError> {
    let _ = graph.label(start)?;
    let mut visited = vec![false; graph.num_nodes()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, _) in graph.neighbors(u)? {
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    Ok(order)
}

/// Returns `true` if the graph is connected (the empty graph counts as
/// connected).
#[must_use]
pub fn is_connected(graph: &Graph) -> bool {
    if graph.num_nodes() == 0 {
        return true;
    }
    match bfs_reachable(graph, NodeId(0)) {
        Ok(reach) => reach.len() == graph.num_nodes(),
        Err(_) => false,
    }
}

/// Partitions nodes into connected components; each component is a list of
/// node ids, components ordered by their smallest member.
#[must_use]
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let mut assigned = vec![false; graph.num_nodes()];
    let mut components = Vec::new();
    for start in graph.nodes() {
        if assigned[start.index()] {
            continue;
        }
        let comp = bfs_reachable(graph, start).expect("node exists by construction");
        for &n in &comp {
            assigned[n.index()] = true;
        }
        components.push(comp);
    }
    components
}

/// Hop distance from `start` to every node (`None` where unreachable).
///
/// # Errors
///
/// Returns [`GraphError::UnknownNode`] if `start` is missing.
pub fn bfs_distances(graph: &Graph, start: NodeId) -> Result<Vec<Option<usize>>, GraphError> {
    let _ = graph.label(start)?;
    let mut dist = vec![None; graph.num_nodes()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &(v, _) in graph.neighbors(u)? {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        let _e = g.add_node("e"); // isolated
        g.add_link(a, b).unwrap();
        g.add_link(b, c).unwrap();
        g.add_link(c, d).unwrap();
        g
    }

    #[test]
    fn reachability_and_connectivity() {
        let g = two_components();
        assert_eq!(bfs_reachable(&g, NodeId(0)).unwrap().len(), 4);
        assert!(!is_connected(&g));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[1], vec![NodeId(4)]);
    }

    #[test]
    fn bfs_order_starts_at_start() {
        let g = two_components();
        let order = bfs_reachable(&g, NodeId(2)).unwrap();
        assert_eq!(order[0], NodeId(2));
    }

    #[test]
    fn empty_and_singleton_connected() {
        assert!(is_connected(&Graph::new()));
        let mut g = Graph::new();
        g.add_node("a");
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn distances() {
        let g = two_components();
        let dist = bfs_distances(&g, NodeId(0)).unwrap();
        assert_eq!(dist[0], Some(0));
        assert_eq!(dist[1], Some(1));
        assert_eq!(dist[3], Some(3));
        assert_eq!(dist[4], None);
    }

    #[test]
    fn unknown_start_rejected() {
        let g = Graph::new();
        assert!(bfs_reachable(&g, NodeId(0)).is_err());
        assert!(bfs_distances(&g, NodeId(3)).is_err());
    }
}
