//! Property test: Yen's k-shortest paths agree with exhaustive
//! enumeration on random small graphs.
//!
//! Enumeration generates *all* simple paths between two nodes, sorts by
//! hop count; Yen must return exactly the k shortest lengths (the path
//! multiset at each length must match as sets).

use proptest::prelude::*;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tomo_graph::{enumerate, shortest, Graph, NodeId};

/// Random connected-ish graph on `n ≤ 8` nodes with edge probability `p`.
fn random_graph(seed: u64) -> (Graph, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(3usize..=8);
    let mut g = Graph::new();
    for i in 0..n {
        g.add_node(format!("v{i}"));
    }
    // Spanning path to keep endpoints connected, plus random chords.
    for i in 1..n {
        g.add_link(NodeId(i - 1), NodeId(i)).unwrap();
    }
    for i in 0..n {
        for j in (i + 2)..n {
            if rng.gen_bool(0.4) {
                let _ = g.add_link(NodeId(i), NodeId(j));
            }
        }
    }
    (g, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn yen_matches_enumeration(seed in 0u64..5000, k in 1usize..12) {
        let (g, n) = random_graph(seed);
        let s = NodeId(0);
        let t = NodeId(n - 1);

        let mut all = enumerate::simple_paths(&g, s, t, n, 100_000).unwrap();
        all.sort_by_key(tomo_graph::Path::num_links);
        let yen = shortest::yen_k_shortest(&g, s, t, k).unwrap();

        // Yen returns min(k, total) paths.
        prop_assert_eq!(yen.len(), k.min(all.len()));
        // Lengths must match the k smallest enumeration lengths.
        let expected: Vec<usize> =
            all.iter().take(yen.len()).map(tomo_graph::Path::num_links).collect();
        let got: Vec<usize> = yen.iter().map(tomo_graph::Path::num_links).collect();
        prop_assert_eq!(&got, &expected,
            "lengths differ on seed {} (k = {})", seed, k);
        // Every Yen path is a genuine simple path from the enumeration.
        for p in &yen {
            prop_assert!(all.contains(p), "Yen fabricated a path");
        }
        // No duplicates.
        for (i, p) in yen.iter().enumerate() {
            for q in &yen[i + 1..] {
                prop_assert_ne!(p, q);
            }
        }
    }
}

#[test]
fn yen_complete_graph_regression() {
    // K5: v0→v4 has 1 + 3 + 6 + 6 = 16 simple paths.
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..5).map(|i| g.add_node(format!("v{i}"))).collect();
    for i in 0..5 {
        for j in (i + 1)..5 {
            g.add_link(ids[i], ids[j]).unwrap();
        }
    }
    let all = enumerate::simple_paths(&g, ids[0], ids[4], 10, 1000).unwrap();
    assert_eq!(all.len(), 16);
    let yen = shortest::yen_k_shortest(&g, ids[0], ids[4], 16).unwrap();
    assert_eq!(yen.len(), 16);
    let yen_more = shortest::yen_k_shortest(&g, ids[0], ids[4], 40).unwrap();
    assert_eq!(yen_more.len(), 16, "no phantom paths beyond the total");
}
