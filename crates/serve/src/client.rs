//! The `tomo-probe` client: batched measurement delivery with retry,
//! jittered exponential backoff, and deliberate wire-fault injection.
//!
//! Delivery is lockstep-with-a-window: a batch is written, then its
//! `Ack` awaited; only the injected duplicate/reorder faults widen the
//! in-flight window to two. Every failure mode maps to a recovery:
//!
//! | server says / does            | client does                        |
//! |-------------------------------|------------------------------------|
//! | `Reject(QueueFull)`           | sleep `retry_after` + jitter, retry|
//! | `Reject(StaleEpoch)`          | re-handshake, resend with new epoch|
//! | `Reject(BadBatch)`            | count it quarantined, move on      |
//! | connection refused / dropped  | reconnect with exponential backoff |
//! | ack timeout                   | reconnect, resend unacked          |
//!
//! Batch ids are assigned once, in batch order, *before* any delivery —
//! so retries, reconnects, and even a server restart mid-stream never
//! change which id carries which rows, which is what makes the
//! kill-and-restart chaos run reconverge bit-identically.
//!
//! Fault injection ([`TrialFaults::frame_fault`]) exercises the server's
//! quarantine paths deliberately: truncate/garble frames are *discarded*
//! by the server (ledger: quarantined) and the rows re-delivered
//! cleanly; duplicate/reorder frames are *absorbed* by dedup and
//! last-writer-wins (ledger: handled).

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tomo_fault::{FaultKindCounts, FrameFaultKind, TrialFaults};
use tomo_obs::LazyCounter;

use crate::wire::{
    read_frame, write_frame, Frame, ProbeBatch, ProbeRow, RejectCode, WireError, WIRE_VERSION,
};

static RECONNECTS: LazyCounter = LazyCounter::new("probe.reconnects");
static QUEUE_FULL: LazyCounter = LazyCounter::new("probe.queue_full_rejects");
static ACKED: LazyCounter = LazyCounter::new("probe.acked");

/// Client tuning knobs. [`Default`] suits tests and the chaos sweep.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long to wait for an `Ack` before assuming the connection is
    /// dead.
    pub ack_timeout: Duration,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Base of the exponential reconnect backoff.
    pub backoff_base: Duration,
    /// Ceiling on one backoff sleep.
    pub backoff_max: Duration,
    /// Delivery attempts per batch before giving up (each attempt may
    /// include a reconnect).
    pub max_attempts: u32,
    /// Most unacked batches the client will hold for resend at once.
    /// Exceeding it is a typed [`ClientError::ResendOverflow`] instead
    /// of unbounded buffer growth.
    pub max_unacked: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            ack_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(250),
            max_attempts: 60,
            max_unacked: 256,
        }
    }
}

/// Client-side failure (after retries were exhausted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not (re)connect or deliver within
    /// [`ClientConfig::max_attempts`].
    RetriesExhausted {
        /// The batch that could not be delivered.
        batch_id: u64,
    },
    /// The server answered the handshake with something else.
    BadHandshake,
    /// The resend buffer would exceed [`ClientConfig::max_unacked`]
    /// unacked batches.
    ResendOverflow {
        /// Unacked batches the delivery needed to hold.
        unacked: usize,
        /// The configured cap.
        capacity: usize,
    },
    /// An unrecoverable wire error.
    Wire(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::RetriesExhausted { batch_id } => {
                write!(f, "batch {batch_id}: delivery attempts exhausted")
            }
            ClientError::BadHandshake => write!(f, "server handshake was not a HelloAck"),
            ClientError::ResendOverflow { unacked, capacity } => write!(
                f,
                "resend buffer overflow: {unacked} unacked batches exceed the cap of {capacity}"
            ),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What one [`ProbeClient::stream`] call observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Batches acknowledged durable by the server.
    pub acked: u64,
    /// Batches the server quarantined (`Reject(BadBatch)`).
    pub server_quarantined: u64,
    /// Reconnects performed (including the initial connect retries).
    pub reconnects: u64,
    /// `Reject(QueueFull)` backpressure events honored.
    pub queue_full_rejects: u64,
    /// `Reject(StaleEpoch)` re-handshakes honored.
    pub stale_epoch_rejects: u64,
    /// Wire faults this client injected, by kind.
    pub injected: FaultKindCounts,
    /// Injected faults absorbed by the server's dedup/ordering
    /// (duplicate + reorder).
    pub handled: u64,
    /// Injected faults the server discarded as unusable frames
    /// (truncate + garble), re-delivered cleanly afterwards.
    pub quarantined: u64,
}

struct Conn {
    stream: TcpStream,
    epoch: u64,
}

struct Pending {
    batch_id: u64,
    rows: Vec<ProbeRow>,
    acked: bool,
}

/// A probe sender bound to one daemon address.
pub struct ProbeClient {
    addr: SocketAddr,
    config: ClientConfig,
    rng: ChaCha8Rng,
    conn: Option<Conn>,
    next_batch_id: u64,
    batch_id_stride: u64,
    outcome: StreamOutcome,
}

impl ProbeClient {
    /// Creates a client for the daemon at `addr`. `seed` drives backoff
    /// jitter (and nothing else), keeping sleep sequences reproducible.
    #[must_use]
    pub fn new(addr: SocketAddr, seed: u64) -> Self {
        ProbeClient {
            addr,
            config: ClientConfig::default(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            conn: None,
            next_batch_id: 0,
            batch_id_stride: 1,
            outcome: StreamOutcome::default(),
        }
    }

    /// Replaces the tuning knobs.
    #[must_use]
    pub fn with_config(mut self, config: ClientConfig) -> Self {
        self.config = config;
        self
    }

    /// Starts batch-id allocation at `id` instead of 0 — used when a new
    /// client continues a stream an earlier client began (e.g. across a
    /// server restart in the chaos sweep), so ids stay globally
    /// monotonic and dedup/last-writer-wins keep working.
    #[must_use]
    pub fn with_start_batch_id(mut self, id: u64) -> Self {
        self.next_batch_id = id;
        self
    }

    /// Advances batch-id allocation by `stride` instead of 1 — client
    /// `c` of `N` concurrent clients uses start id `c` and stride `N`,
    /// so the fleet partitions the global id sequence without
    /// coordination and dedup/last-writer-wins see exactly the ids a
    /// single client would have assigned.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn with_batch_id_stride(mut self, stride: u64) -> Self {
        assert!(stride > 0, "batch id stride must be positive");
        self.batch_id_stride = stride;
        self
    }

    /// The id the next batch will get.
    #[must_use]
    pub fn next_batch_id(&self) -> u64 {
        self.next_batch_id
    }

    /// Cumulative outcome across every delivery so far.
    #[must_use]
    pub fn outcome(&self) -> &StreamOutcome {
        &self.outcome
    }

    /// The epoch of the current connection, if connected.
    #[must_use]
    pub fn epoch(&self) -> Option<u64> {
        self.conn.as_ref().map(|c| c.epoch)
    }

    /// Delivers one clean batch (lockstep: returns once acked).
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] when the delivery budget runs
    /// out.
    pub fn send_batch(&mut self, rows: Vec<ProbeRow>) -> Result<u64, ClientError> {
        let id = self.alloc_id();
        let mut pending = vec![Pending {
            batch_id: id,
            rows,
            acked: false,
        }];
        self.transact(&mut pending)?;
        Ok(id)
    }

    /// Streams `batches` in order, drawing one wire-fault decision per
    /// batch from `faults` (pass `None` for a clean stream).
    ///
    /// Returns the outcome delta for this call (the cumulative tally
    /// stays available via [`Self::outcome`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] when a batch cannot be
    /// delivered within the attempt budget.
    pub fn stream(
        &mut self,
        batches: Vec<Vec<ProbeRow>>,
        mut faults: Option<&mut TrialFaults>,
    ) -> Result<StreamOutcome, ClientError> {
        let before = self.outcome.clone();
        // Ids are fixed in batch order before any delivery.
        let mut pending: Vec<Pending> = batches
            .into_iter()
            .map(|rows| Pending {
                batch_id: self.alloc_id(),
                rows,
                acked: false,
            })
            .collect();
        let mut i = 0;
        while i < pending.len() {
            let can_reorder = i + 1 < pending.len();
            let fault = faults
                .as_deref_mut()
                .and_then(|f| f.frame_fault(can_reorder));
            match fault {
                None => {
                    self.transact(&mut pending[i..=i])?;
                    i += 1;
                }
                Some(FrameFaultKind::Truncate) => {
                    self.outcome.injected.frame_truncate += 1;
                    self.outcome.quarantined += 1;
                    self.inject_mangled(&pending[i], Mangle::Truncate);
                    self.transact(&mut pending[i..=i])?;
                    i += 1;
                }
                Some(FrameFaultKind::Garble) => {
                    self.outcome.injected.frame_garble += 1;
                    self.outcome.quarantined += 1;
                    self.inject_mangled(&pending[i], Mangle::GarbleType);
                    self.transact(&mut pending[i..=i])?;
                    i += 1;
                }
                Some(FrameFaultKind::Duplicate) => {
                    self.outcome.injected.frame_duplicate += 1;
                    self.outcome.handled += 1;
                    self.transact(&mut pending[i..=i])?;
                    // Second copy: the server must dedup and re-ack.
                    // The re-ack is not a new delivery, so the acked
                    // tally is restored afterwards.
                    pending[i].acked = false;
                    let acked_before = self.outcome.acked;
                    self.transact(&mut pending[i..=i])?;
                    self.outcome.acked = acked_before;
                    i += 1;
                }
                Some(FrameFaultKind::Reorder) => {
                    self.outcome.injected.frame_reorder += 1;
                    self.outcome.handled += 1;
                    // Deliver the successor first: the server sees the
                    // higher id, then the lower, and must absorb it.
                    pending.swap(i, i + 1);
                    self.transact(&mut pending[i..=i + 1])?;
                    pending.swap(i, i + 1);
                    i += 2;
                }
            }
        }
        Ok(self.outcome_delta(&before))
    }

    /// Streams clean batches in pipelined windows: `window` batches are
    /// written back-to-back and then acked as a block, so the ack round
    /// trip is amortized across the window instead of paid per batch.
    /// Ids are fixed in batch order before any delivery, and the server
    /// applies last-writer-wins by batch id, so the final engine state
    /// is identical to a lockstep [`Self::stream`] of the same batches.
    ///
    /// # Errors
    ///
    /// [`ClientError::ResendOverflow`] when `window` exceeds the
    /// configured `max_unacked` resend buffer, and
    /// [`ClientError::RetriesExhausted`] when a window cannot be
    /// delivered within the attempt budget.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn stream_windowed(
        &mut self,
        batches: Vec<Vec<ProbeRow>>,
        window: usize,
    ) -> Result<StreamOutcome, ClientError> {
        assert!(window > 0, "window must be at least 1 batch");
        let before = self.outcome.clone();
        let mut pending: Vec<Pending> = batches
            .into_iter()
            .map(|rows| Pending {
                batch_id: self.alloc_id(),
                rows,
                acked: false,
            })
            .collect();
        let mut lo = 0;
        while lo < pending.len() {
            let hi = (lo + window).min(pending.len());
            self.transact(&mut pending[lo..hi])?;
            lo = hi;
        }
        Ok(self.outcome_delta(&before))
    }

    fn outcome_delta(&self, before: &StreamOutcome) -> StreamOutcome {
        let after = &self.outcome;
        let mut injected = FaultKindCounts::default();
        injected.merge(&after.injected);
        // Per-kind subtraction (counters only grow).
        injected.frame_truncate -= before.injected.frame_truncate;
        injected.frame_garble -= before.injected.frame_garble;
        injected.frame_duplicate -= before.injected.frame_duplicate;
        injected.frame_reorder -= before.injected.frame_reorder;
        StreamOutcome {
            acked: after.acked - before.acked,
            server_quarantined: after.server_quarantined - before.server_quarantined,
            reconnects: after.reconnects - before.reconnects,
            queue_full_rejects: after.queue_full_rejects - before.queue_full_rejects,
            stale_epoch_rejects: after.stale_epoch_rejects - before.stale_epoch_rejects,
            injected,
            handled: after.handled - before.handled,
            quarantined: after.quarantined - before.quarantined,
        }
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_batch_id;
        self.next_batch_id += self.batch_id_stride;
        id
    }

    /// Delivers every batch in `window` (written in slice order) until
    /// all are acked, reconnecting and resending as needed.
    fn transact(&mut self, window: &mut [Pending]) -> Result<(), ClientError> {
        let unacked = window.iter().filter(|p| !p.acked).count();
        if unacked > self.config.max_unacked {
            return Err(ClientError::ResendOverflow {
                unacked,
                capacity: self.config.max_unacked,
            });
        }
        let mut attempts = 0;
        while window.iter().any(|p| !p.acked) {
            attempts += 1;
            if attempts > self.config.max_attempts {
                let batch_id = window.iter().find(|p| !p.acked).map_or(0, |p| p.batch_id);
                return Err(ClientError::RetriesExhausted { batch_id });
            }
            let epoch = match self.ensure_conn() {
                Ok(epoch) => epoch,
                Err(()) => {
                    self.backoff(attempts, None);
                    continue;
                }
            };
            // (Re)send every unacked batch in window order.
            let mut write_ok = true;
            let mut awaiting: BTreeMap<u64, ()> = BTreeMap::new();
            {
                let conn = self.conn.as_mut().expect("ensure_conn succeeded");
                for p in window.iter().filter(|p| !p.acked) {
                    let frame = Frame::Batch(ProbeBatch {
                        batch_id: p.batch_id,
                        epoch,
                        rows: p.rows.clone(),
                    });
                    if write_frame(&mut conn.stream, &frame).is_err() {
                        write_ok = false;
                        break;
                    }
                    awaiting.insert(p.batch_id, ());
                }
            }
            if !write_ok {
                self.drop_conn();
                self.backoff(attempts, None);
                continue;
            }
            // Collect one reply per outstanding batch.
            while !awaiting.is_empty() {
                let conn = self.conn.as_mut().expect("still connected");
                match read_frame(&mut conn.stream) {
                    Ok(Some(Frame::Ack { batch_id, .. })) => {
                        awaiting.remove(&batch_id);
                        if let Some(p) = window.iter_mut().find(|p| p.batch_id == batch_id) {
                            if !p.acked {
                                p.acked = true;
                                self.outcome.acked += 1;
                                ACKED.inc();
                            }
                        }
                    }
                    Ok(Some(Frame::Reject {
                        batch_id,
                        code,
                        retry_after_ms,
                    })) => {
                        awaiting.remove(&batch_id);
                        match code {
                            RejectCode::QueueFull => {
                                self.outcome.queue_full_rejects += 1;
                                QUEUE_FULL.inc();
                                self.backoff(
                                    1,
                                    Some(Duration::from_millis(u64::from(retry_after_ms))),
                                );
                            }
                            RejectCode::StaleEpoch => {
                                self.outcome.stale_epoch_rejects += 1;
                                // Our epoch is from before a restart:
                                // re-handshake and resend.
                                self.drop_conn();
                            }
                            RejectCode::BadBatch => {
                                // Quarantined server-side: resolved, do
                                // not retry.
                                self.outcome.server_quarantined += 1;
                                if let Some(p) = window.iter_mut().find(|p| p.batch_id == batch_id)
                                {
                                    p.acked = true;
                                }
                            }
                        }
                        if self.conn.is_none() {
                            break;
                        }
                    }
                    Ok(Some(_)) | Ok(None) | Err(_) => {
                        // Unexpected frame, hangup, or timeout: the
                        // connection is useless — reconnect and resend.
                        self.drop_conn();
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Writes a deliberately damaged copy of `p`'s frame, then abandons
    /// the connection (the server quarantines the frame; the rows get a
    /// clean delivery afterwards).
    fn inject_mangled(&mut self, p: &Pending, mangle: Mangle) {
        let Ok(epoch) = self.ensure_conn() else {
            // Could not even connect: the fault degenerates to a no-op
            // on the wire, but the clean re-delivery still follows.
            return;
        };
        let frame = Frame::Batch(ProbeBatch {
            batch_id: p.batch_id,
            epoch,
            rows: p.rows.clone(),
        });
        let mut bytes = frame.encode();
        let conn = self.conn.as_mut().expect("ensure_conn succeeded");
        let write = match mangle {
            Mangle::Truncate => {
                // All but the last byte: the server is left mid-frame.
                use std::io::Write;
                conn.stream.write_all(&bytes[..bytes.len() - 1])
            }
            Mangle::GarbleType => {
                // Flip the type byte: guaranteed UnknownFrameType.
                bytes[4] ^= 0xFF;
                use std::io::Write;
                conn.stream.write_all(&bytes)
            }
        };
        let _ = write.and_then(|()| {
            use std::io::Write;
            conn.stream.flush()
        });
        // Either way the server will (or we must) drop this connection.
        self.drop_conn();
    }

    /// Ensures a live, handshaken connection; returns the epoch.
    fn ensure_conn(&mut self) -> Result<u64, ()> {
        if let Some(conn) = &self.conn {
            return Ok(conn.epoch);
        }
        let stream =
            TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).map_err(|_| ())?;
        // Frames are small; without TCP_NODELAY a pipelined window
        // stalls on Nagle waiting for the peer's delayed ACK.
        stream.set_nodelay(true).map_err(|_| ())?;
        stream
            .set_read_timeout(Some(self.config.ack_timeout))
            .map_err(|_| ())?;
        stream
            .set_write_timeout(Some(self.config.ack_timeout))
            .map_err(|_| ())?;
        let mut stream = stream;
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: WIRE_VERSION,
            },
        )
        .map_err(|_| ())?;
        match read_frame(&mut stream) {
            Ok(Some(Frame::HelloAck { epoch, .. })) => {
                self.outcome.reconnects += 1;
                RECONNECTS.inc();
                self.conn = Some(Conn { stream, epoch });
                Ok(epoch)
            }
            _ => Err(()),
        }
    }

    fn drop_conn(&mut self) {
        self.conn = None;
    }

    /// Sleeps `hint` (when the server gave one) or an exponentially
    /// growing, jittered backoff.
    fn backoff(&mut self, attempt: u32, hint: Option<Duration>) {
        let base = match hint {
            Some(h) => h,
            None => {
                let exp = self
                    .config
                    .backoff_base
                    .saturating_mul(1u32 << attempt.min(8));
                exp.min(self.config.backoff_max)
            }
        };
        let jitter_ms = self.rng.gen_range(0..=base.as_millis().max(1) as u64 / 2);
        std::thread::sleep(base + Duration::from_millis(jitter_ms));
    }
}

enum Mangle {
    Truncate,
    GarbleType,
}
