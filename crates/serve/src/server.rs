//! The `tomo-serve` daemon: ingest loop, apply worker, HTTP query front.
//!
//! Three thread families cooperate, but only one of them ever touches
//! the [`Engine`]:
//!
//! * **connection handlers** (one per ingest TCP connection) parse wire
//!   frames under per-connection deadlines and hand batches to the apply
//!   worker through the sharded bounded queue (shard = hash of the
//!   batch's path group, so clients probing different path groups never
//!   contend on a queue lock) — or answer `Reject(QueueFull)` with an
//!   occupancy-scaled retry hint when their shard is at capacity;
//! * the **apply worker** (single consumer, sole owner of the engine)
//!   drains the shards in deterministic round-robin order, journals each
//!   admitted batch, applies it, snapshots on cadence, publishes an
//!   immutable [`EngineSnapshot`] when the queue drains (or every
//!   `publish_coalesce` batches), and holds every `Ack` back until the
//!   publish that covers it — so an acked batch both survives a crash
//!   *and* is visible to the next query, for pipelined clients and
//!   multi-client fleets just as for a lockstep client;
//! * the **HTTP front** and every in-process query answer from the
//!   latest published snapshot — no engine lock exists to take, so
//!   `/state`, `/verdict`, and `/stats` never contend with ingest and a
//!   torn read is impossible by construction (see `snapshot.rs`).
//!
//! Deadline policy: a connection may idle between frames up to
//! `idle_timeout`, but once a frame's first byte arrives the rest must
//! follow within `frame_deadline` — a peer stalled mid-frame holds no
//! handler hostage. Stop-flag polling rides on the socket read timeout,
//! so shutdown latency is one poll interval, not one idle timeout.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use tomo_core::TomographySystem;
use tomo_detect::ConsistencyDetector;
use tomo_obs::{Handler, HttpRequest, HttpResponse, HttpServer, LazyHistogram};

use crate::engine::{ApplyOutcome, Engine, EngineStats, QueryError};
use crate::journal::Journal;
use crate::queue::{ShardStats, ShardedQueue};
use crate::snapshot::{EngineSnapshot, SnapshotStore};
use crate::wire::{Frame, ProbeBatch, RejectCode, WireError, MAX_FRAME_LEN, WIRE_VERSION};

static QUERY_LATENCY_US: LazyHistogram = LazyHistogram::new("serve.query.latency_us");

/// Daemon configuration. [`Default`] is tuned for tests and the chaos
/// sweep: ephemeral ports, small queue, sub-second timeouts.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingest TCP port (0 = OS-assigned).
    pub ingest_port: u16,
    /// HTTP query port (0 = OS-assigned).
    pub http_port: u16,
    /// Bounded ingest queue capacity (batches), split evenly across the
    /// shards.
    pub queue_capacity: usize,
    /// Number of ingest queue shards (per-path-group lanes).
    pub ingest_shards: usize,
    /// Base backoff hint carried by `Reject(QueueFull)`; the actual
    /// hint scales with queue occupancy at reject time.
    pub retry_after_ms: u32,
    /// How long a connection may idle *between* frames.
    pub idle_timeout: Duration,
    /// Once a frame starts arriving, it must complete within this.
    pub frame_deadline: Duration,
    /// Write deadline for responses on the ingest socket.
    pub write_timeout: Duration,
    /// Stop-flag poll interval (also the socket read timeout).
    pub poll_interval: Duration,
    /// Where to journal applied batches; `None` disables persistence.
    pub journal_path: Option<PathBuf>,
    /// Fsync the journal on every append. Off, an acked batch survives
    /// a process crash (appends are flushed to the OS page cache); on,
    /// it also survives an OS crash or power loss, at the cost of one
    /// `sync_data` per batch.
    pub journal_sync: bool,
    /// Snapshot the engine every this many applied batches (0 = never).
    pub snapshot_every: u64,
    /// Under sustained load, publish a query snapshot at least every
    /// this many applied batches (a drained queue always publishes).
    pub publish_coalesce: u64,
    /// The p99 query-latency SLO, milliseconds (reported in `/stats`;
    /// the chaos sweep asserts against it).
    pub slo_ms: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ingest_port: 0,
            http_port: 0,
            queue_capacity: 64,
            ingest_shards: 4,
            retry_after_ms: 20,
            idle_timeout: Duration::from_secs(30),
            frame_deadline: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(100),
            journal_path: None,
            journal_sync: false,
            snapshot_every: 64,
            publish_coalesce: 32,
            slo_ms: 5.0,
        }
    }
}

/// Per-server ingest counters (plain atomics so concurrent sweeps and
/// tests don't share tallies through the global metric registry).
#[derive(Debug, Default)]
pub struct IngestCounters {
    /// Connections accepted on the ingest socket.
    pub connections: AtomicU64,
    /// Handshakes refused (bad first frame or version mismatch).
    pub handshake_rejects: AtomicU64,
    /// Frames quarantined: stream ended inside a frame.
    pub truncated_frames: AtomicU64,
    /// Frames quarantined: unknown frame type (garbled).
    pub garbled_frames: AtomicU64,
    /// Frames quarantined: any other decode violation.
    pub malformed_frames: AtomicU64,
    /// Frames refused by the length-prefix ceiling.
    pub oversized_frames: AtomicU64,
    /// Well-formed frames of an unexpected kind mid-session.
    pub unexpected_frames: AtomicU64,
    /// Batches refused with `Reject(QueueFull)`.
    pub queue_rejects: AtomicU64,
    /// Connections closed for idling past the idle timeout.
    pub idle_closed: AtomicU64,
    /// Connections closed for stalling mid-frame past the deadline.
    pub deadline_closed: AtomicU64,
}

impl IngestCounters {
    /// Frames dropped as unusable (the server side of the fault ledger's
    /// `quarantined` column for wire faults).
    #[must_use]
    pub fn quarantined_frames(&self) -> u64 {
        self.truncated_frames.load(Ordering::Relaxed)
            + self.garbled_frames.load(Ordering::Relaxed)
            + self.malformed_frames.load(Ordering::Relaxed)
            + self.oversized_frames.load(Ordering::Relaxed)
            + self.unexpected_frames.load(Ordering::Relaxed)
    }
}

struct IngestItem {
    batch: ProbeBatch,
    reply: mpsc::Sender<Frame>,
}

/// A running daemon. Dropping the handle shuts everything down.
pub struct Server {
    ingest_addr: SocketAddr,
    http_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<(Mutex<bool>, Condvar)>,
    store: Arc<SnapshotStore>,
    queue: Arc<ShardedQueue<IngestItem>>,
    counters: Arc<IngestCounters>,
    listener_thread: Option<std::thread::JoinHandle<()>>,
    apply_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    http: Option<tomo_obs::HttpServerHandle>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Server {
    /// Starts the daemon: replays the journal (if any), binds both
    /// sockets, and spawns the worker threads.
    ///
    /// # Errors
    ///
    /// Returns socket bind and journal I/O errors.
    pub fn start(
        system: Arc<TomographySystem>,
        detector: ConsistencyDetector,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let mut engine = Engine::new(system, detector);
        let mut journal = match &config.journal_path {
            Some(path) => {
                let replay = Journal::replay(path)?;
                if let Some(snap) = &replay.snapshot {
                    engine.restore(snap);
                }
                // Re-apply before bumping past the recorded epochs: the
                // engine is still at the snapshot's epoch (or zero), so
                // batches journaled under *any* later session pass the
                // stale check — bumping to `last_epoch` first would
                // silently drop every batch from an earlier session.
                for batch in &replay.batches {
                    match engine.apply(batch) {
                        ApplyOutcome::Applied { .. } | ApplyOutcome::Duplicate => {}
                        outcome => tomo_obs::error!(
                            "serve.journal",
                            "replayed batch {} refused: {outcome:?}",
                            batch.batch_id
                        ),
                    }
                }
                let mut journal =
                    Journal::open(path, config.snapshot_every)?.with_sync(config.journal_sync);
                let epoch = replay.last_epoch + 1;
                engine.bump_epoch(epoch);
                journal.append(&Frame::EpochMark { epoch })?;
                Some(journal)
            }
            None => {
                engine.bump_epoch(1);
                None
            }
        };

        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.ingest_port))?;
        let ingest_addr = listener.local_addr()?;

        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new((Mutex::new(false), Condvar::new()));
        let counters = Arc::new(IngestCounters::default());
        let queue = ShardedQueue::<IngestItem>::new(
            config.queue_capacity,
            config.ingest_shards,
            config.retry_after_ms,
        );
        let conn_threads = Arc::new(Mutex::new(Vec::<std::thread::JoinHandle<()>>::new()));
        // Version 0: the post-replay state is queryable before the
        // first batch arrives.
        let store = Arc::new(SnapshotStore::new(engine.published_view(0)));

        // Apply worker: sole owner of the engine — it moves in here, so
        // no other thread *can* take an engine lock. Queries read the
        // published snapshots instead.
        let apply_thread = {
            let queue = Arc::clone(&queue);
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let poll = config.poll_interval;
            let coalesce = config.publish_coalesce.max(1);
            std::thread::Builder::new()
                .name("tomo-serve-apply".into())
                .spawn(move || {
                    let mut engine = engine;
                    let mut version = 1u64;
                    let mut unpublished = 0u64;
                    // Acks are withheld until the publish that covers
                    // them, so "acked" always implies "visible to the
                    // next query" — even under sustained load where
                    // publishes coalesce, a client that saw an ack and
                    // then queries sees its own write. Rejects promise
                    // no visibility and go out immediately. A publish
                    // is never more than `coalesce` batches (or one
                    // poll interval) behind the ack it gates, so the
                    // added ack latency stays far under the client's
                    // ack timeout.
                    let mut pending_acks: Vec<(mpsc::Sender<Frame>, Frame)> = Vec::new();
                    loop {
                        match queue.pop_next(poll) {
                            Some((_, item)) => {
                                let reply = apply_one(&mut engine, journal.as_mut(), &item.batch);
                                unpublished += 1;
                                if matches!(reply, Frame::Ack { .. }) {
                                    pending_acks.push((item.reply, reply));
                                } else {
                                    // A gone receiver just means the
                                    // connection died; the client retries.
                                    let _ = item.reply.send(reply);
                                }
                                // Publish when the queue drains (always
                                // true for a lockstep client's latest
                                // batch); under sustained load, coalesce.
                                if queue.depth() == 0 || unpublished >= coalesce {
                                    store.publish(engine.published_view(version));
                                    version += 1;
                                    unpublished = 0;
                                    for (reply_tx, ack) in pending_acks.drain(..) {
                                        let _ = reply_tx.send(ack);
                                    }
                                }
                            }
                            None => {
                                if unpublished > 0 {
                                    store.publish(engine.published_view(version));
                                    version += 1;
                                    unpublished = 0;
                                }
                                // Any ack still pending is covered now:
                                // a non-empty pending list implies
                                // unpublished > 0 above published it.
                                for (reply_tx, ack) in pending_acks.drain(..) {
                                    let _ = reply_tx.send(ack);
                                }
                                if stop.load(Ordering::Acquire) && queue.depth() == 0 {
                                    break;
                                }
                            }
                        }
                    }
                })?
        };

        // Ingest acceptor.
        let listener_thread = {
            let stop = Arc::clone(&stop);
            let store = Arc::clone(&store);
            let counters = Arc::clone(&counters);
            let queue = Arc::clone(&queue);
            let conn_threads = Arc::clone(&conn_threads);
            let config = config.clone();
            std::thread::Builder::new()
                .name("tomo-serve-ingest".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let Ok((stream, _)) = listener.accept() else {
                            break;
                        };
                        if stop.load(Ordering::Acquire) {
                            break; // the shutdown self-connect
                        }
                        // Acks are tiny; Nagle would hold them hostage
                        // to the client's delayed ACK under pipelining.
                        let _ = stream.set_nodelay(true);
                        counters.connections.fetch_add(1, Ordering::Relaxed);
                        let store = Arc::clone(&store);
                        let counters = Arc::clone(&counters);
                        let queue = Arc::clone(&queue);
                        let stop = Arc::clone(&stop);
                        let config = config.clone();
                        let handle = std::thread::Builder::new()
                            .name("tomo-serve-conn".into())
                            .spawn(move || {
                                handle_ingest_conn(
                                    stream, &store, &counters, &queue, &stop, &config,
                                );
                            });
                        if let Ok(handle) = handle {
                            // Reap finished handlers opportunistically so a
                            // long-running daemon with many short-lived
                            // connections doesn't accumulate handles
                            // without bound (dropping a finished handle
                            // just detaches an already-exited thread).
                            let mut threads = lock(&conn_threads);
                            threads.retain(|h| !h.is_finished());
                            threads.push(handle);
                        }
                    }
                })?
        };

        // HTTP query front.
        let http = HttpServer::bind(config.http_port)?;
        let http_addr = http.local_addr()?;
        let handler = http_handler(
            Arc::clone(&store),
            Arc::clone(&counters),
            Arc::clone(&queue),
            Arc::clone(&shutdown_requested),
            config.slo_ms,
        );
        let http = http.spawn_named(handler, "tomo-serve-http")?;

        Ok(Server {
            ingest_addr,
            http_addr,
            stop,
            shutdown_requested,
            store,
            queue,
            counters,
            listener_thread: Some(listener_thread),
            apply_thread: Some(apply_thread),
            conn_threads,
            http: Some(http),
        })
    }

    /// Address of the ingest (wire protocol) socket.
    #[must_use]
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// Address of the HTTP query front.
    #[must_use]
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// Per-server ingest counters.
    #[must_use]
    pub fn counters(&self) -> &IngestCounters {
        &self.counters
    }

    /// Connection handler threads not yet reaped. Finished handlers are
    /// reaped on each accept, so this tracks concurrently live
    /// connections (plus recently closed ones awaiting the next accept)
    /// rather than growing with connection churn.
    #[must_use]
    pub fn conn_thread_count(&self) -> usize {
        lock(&self.conn_threads).len()
    }

    /// Engine counters from the latest published snapshot.
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        self.store.load().stats()
    }

    /// Current session epoch (from the latest published snapshot).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.store.load().epoch()
    }

    /// The latest published engine snapshot — the same view HTTP
    /// queries answer from. The load sweep uses this to assert
    /// consistency and version monotonicity from reader threads.
    #[must_use]
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.store.load()
    }

    /// Per-shard ingest queue statistics.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.queue.shard_stats()
    }

    /// Runs a query against the latest published snapshot (the
    /// in-process path the chaos and load sweeps use alongside HTTP).
    /// Takes no engine lock: ingest can saturate the apply worker while
    /// this returns in microseconds.
    ///
    /// # Errors
    ///
    /// See [`EngineSnapshot::answer`].
    pub fn query(&self) -> Result<crate::engine::QueryAnswer, QueryError> {
        let start = Instant::now();
        let result = self.store.load().answer();
        QUERY_LATENCY_US.record(start.elapsed().as_secs_f64() * 1e6);
        result
    }

    /// Blocks until `POST /shutdown` arrives or `timeout` elapses;
    /// `true` when a shutdown was requested.
    #[must_use]
    pub fn wait_for_shutdown_request(&self, timeout: Duration) -> bool {
        let (flag, condvar) = &*self.shutdown_requested;
        let deadline = Instant::now() + timeout;
        let mut requested = lock(flag);
        while !*requested {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = condvar
                .wait_timeout(requested, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            requested = guard;
        }
        true
    }

    /// Stops every thread, drains the queue, and closes both sockets
    /// (idempotent).
    pub fn shutdown(&mut self) {
        if self.listener_thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Wake the acceptor so it observes the flag.
        let _ = TcpStream::connect(self.ingest_addr);
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        // Connection handlers notice the flag within one poll interval.
        let handles: Vec<_> = std::mem::take(&mut *lock(&self.conn_threads));
        for h in handles {
            let _ = h.join();
        }
        if let Some(t) = self.apply_thread.take() {
            let _ = t.join();
        }
        if let Some(mut http) = self.http.take() {
            http.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Applies one batch on the apply worker, with write-ahead journaling:
/// an admitted batch is journaled *before* it is applied, so a journal
/// failure leaves the engine untouched — the client's retry re-runs the
/// whole admit→journal→apply path instead of short-circuiting through
/// dedup to an ack that was never made durable.
fn apply_one(engine: &mut Engine, mut journal: Option<&mut Journal>, batch: &ProbeBatch) -> Frame {
    let epoch = engine.epoch();
    if let Some(journal) = journal.as_deref_mut() {
        if engine.admits(batch) {
            if let Err(e) = journal.append(&Frame::Batch(batch.clone())) {
                // Nothing was applied; reject so the client retries.
                tomo_obs::error!("serve.journal", "append failed: {e}");
                return Frame::Reject {
                    batch_id: batch.batch_id,
                    code: RejectCode::QueueFull,
                    retry_after_ms: 100,
                };
            }
        }
    }
    match engine.apply(batch) {
        ApplyOutcome::Applied { .. } => {
            if let Some(journal) = journal {
                if journal.snapshot_due() {
                    let snap = engine.snapshot();
                    if let Err(e) = journal.append_snapshot(snap) {
                        tomo_obs::error!("serve.journal", "snapshot failed: {e}");
                    }
                }
            }
            Frame::Ack {
                batch_id: batch.batch_id,
                epoch,
            }
        }
        // Duplicate: already applied AND journaled (the journal append
        // preceded the apply that marked it) — safe to re-ack.
        ApplyOutcome::Duplicate => Frame::Ack {
            batch_id: batch.batch_id,
            epoch,
        },
        ApplyOutcome::StaleEpoch => Frame::Reject {
            batch_id: batch.batch_id,
            code: RejectCode::StaleEpoch,
            retry_after_ms: 0,
        },
        ApplyOutcome::Quarantined(_) => Frame::Reject {
            batch_id: batch.batch_id,
            code: RejectCode::BadBatch,
            retry_after_ms: 0,
        },
    }
}

/// How one polling read attempt ended.
enum ReadEnd {
    Frame(Frame),
    CleanClose,
    Stopped,
    IdleTimeout,
    DeadlineExceeded,
    Violation(WireError),
    Io,
}

/// Reads one frame with the deadline policy: idle tolerance between
/// frames, a hard completion deadline once the first byte arrives, and
/// stop-flag polling throughout.
fn read_frame_polling(stream: &mut TcpStream, stop: &AtomicBool, config: &ServeConfig) -> ReadEnd {
    if stream.set_read_timeout(Some(config.poll_interval)).is_err() {
        return ReadEnd::Io;
    }
    let mut len_buf = [0u8; 4];
    let mut frame_start: Option<Instant> = None;
    match fill_polling(stream, &mut len_buf, stop, config, &mut frame_start, true) {
        FillEnd::Done => {}
        FillEnd::CleanClose => return ReadEnd::CleanClose,
        FillEnd::Eof => return ReadEnd::Violation(WireError::UnexpectedEof),
        FillEnd::Stopped => return ReadEnd::Stopped,
        FillEnd::IdleTimeout => return ReadEnd::IdleTimeout,
        FillEnd::DeadlineExceeded => return ReadEnd::DeadlineExceeded,
        FillEnd::Io => return ReadEnd::Io,
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return ReadEnd::Violation(WireError::TruncatedFrame {
            expected: 1,
            got: 0,
        });
    }
    if len > MAX_FRAME_LEN {
        return ReadEnd::Violation(WireError::OversizedFrame {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len];
    match fill_polling(stream, &mut payload, stop, config, &mut frame_start, false) {
        FillEnd::Done => {}
        FillEnd::CleanClose | FillEnd::Eof => return ReadEnd::Violation(WireError::UnexpectedEof),
        FillEnd::Stopped => return ReadEnd::Stopped,
        FillEnd::IdleTimeout | FillEnd::DeadlineExceeded => return ReadEnd::DeadlineExceeded,
        FillEnd::Io => return ReadEnd::Io,
    }
    match Frame::decode(&payload) {
        Ok(frame) => ReadEnd::Frame(frame),
        Err(e) => ReadEnd::Violation(e),
    }
}

enum FillEnd {
    Done,
    /// EOF before the first byte of the buffer (only reported when
    /// `allow_clean_close`).
    CleanClose,
    Eof,
    Stopped,
    IdleTimeout,
    DeadlineExceeded,
    Io,
}

fn fill_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    config: &ServeConfig,
    frame_start: &mut Option<Instant>,
    allow_clean_close: bool,
) -> FillEnd {
    let idle_since = Instant::now();
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && allow_clean_close && frame_start.is_none() {
                    FillEnd::CleanClose
                } else {
                    FillEnd::Eof
                };
            }
            Ok(n) => {
                frame_start.get_or_insert_with(Instant::now);
                filled += n;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Acquire) {
                    return FillEnd::Stopped;
                }
                match frame_start {
                    Some(start) if start.elapsed() > config.frame_deadline => {
                        return FillEnd::DeadlineExceeded;
                    }
                    None if idle_since.elapsed() > config.idle_timeout => {
                        return FillEnd::IdleTimeout;
                    }
                    _ => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return FillEnd::Io,
        }
    }
    FillEnd::Done
}

fn handle_ingest_conn(
    mut stream: TcpStream,
    store: &SnapshotStore,
    counters: &IngestCounters,
    queue: &ShardedQueue<IngestItem>,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    if stream
        .set_write_timeout(Some(config.write_timeout))
        .is_err()
    {
        return;
    }
    // Handshake: exactly one Hello, then HelloAck.
    match read_frame_polling(&mut stream, stop, config) {
        ReadEnd::Frame(Frame::Hello { version }) if version == WIRE_VERSION => {}
        ReadEnd::Stopped | ReadEnd::CleanClose => return,
        _ => {
            counters.handshake_rejects.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    let (epoch, num_paths) = {
        let snap = store.load();
        (snap.epoch(), snap.num_paths())
    };
    let ack = Frame::HelloAck {
        epoch,
        num_paths: u32::try_from(num_paths).unwrap_or(u32::MAX),
    };
    if write_reply(&mut stream, &ack).is_err() {
        return;
    }

    // Reply pump: one writer per connection drains apply replies and
    // rejects, so the read loop never blocks on the apply worker — a
    // pipelined client's frames already sitting in the socket buffer
    // are fanned out to the shard queues back-to-back instead of one
    // per apply round trip. The client matches replies by batch id, so
    // reply order never matters.
    let (reply_tx, reply_rx) = mpsc::channel::<Frame>();
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = std::thread::Builder::new()
        .name("tomo-serve-reply".into())
        .spawn(move || {
            let mut stream = writer_stream;
            while let Ok(frame) = reply_rx.recv() {
                if write_reply(&mut stream, &frame).is_err() {
                    // Half-close so the read loop sees the dead peer
                    // now instead of waiting out the idle timeout.
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    break;
                }
            }
        });
    let Ok(writer) = writer else { return };

    loop {
        match read_frame_polling(&mut stream, stop, config) {
            ReadEnd::Frame(Frame::Batch(batch)) => {
                let batch_id = batch.batch_id;
                // Shard by the batch's path group (its smallest path
                // id): a client probing a stable set of paths always
                // lands on the same shard, so it only contends with
                // clients sharing that group.
                let group = batch.rows.iter().map(|r| u64::from(r.path)).min();
                let shard = queue.shard_for(group.unwrap_or(batch_id));
                let item = IngestItem {
                    batch,
                    reply: reply_tx.clone(),
                };
                // The apply worker journals and answers through the
                // reply pump; if it is gone (shutdown), the stop flag
                // ends the read loop within one poll interval.
                if let Err(full) = queue.try_push(shard, item) {
                    counters.queue_rejects.fetch_add(1, Ordering::Relaxed);
                    let reject = Frame::Reject {
                        batch_id,
                        code: RejectCode::QueueFull,
                        retry_after_ms: full.retry_after_ms,
                    };
                    if reply_tx.send(reject).is_err() {
                        break;
                    }
                }
            }
            ReadEnd::Frame(_) => {
                // A well-formed frame the server never expects here
                // (e.g. a second Hello): drop the connection.
                counters.unexpected_frames.fetch_add(1, Ordering::Relaxed);
                break;
            }
            ReadEnd::CleanClose | ReadEnd::Stopped | ReadEnd::Io => break,
            ReadEnd::IdleTimeout => {
                counters.idle_closed.fetch_add(1, Ordering::Relaxed);
                break;
            }
            ReadEnd::DeadlineExceeded => {
                counters.deadline_closed.fetch_add(1, Ordering::Relaxed);
                break;
            }
            ReadEnd::Violation(e) => {
                match e {
                    WireError::UnexpectedEof => {
                        counters.truncated_frames.fetch_add(1, Ordering::Relaxed);
                    }
                    WireError::UnknownFrameType { .. } => {
                        counters.garbled_frames.fetch_add(1, Ordering::Relaxed);
                    }
                    WireError::OversizedFrame { .. } => {
                        counters.oversized_frames.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        counters.malformed_frames.fetch_add(1, Ordering::Relaxed);
                    }
                }
                tomo_obs::debug!("serve.ingest", "quarantined frame: {e}");
                break;
            }
        }
    }
    // The writer exits once every reply sender is gone: ours here, and
    // the clones riding queued batches once the apply worker answers
    // (or drops) them.
    drop(reply_tx);
    let _ = writer.join();
}

fn write_reply(stream: &mut TcpStream, frame: &Frame) -> Result<(), WireError> {
    let bytes = frame.encode();
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .map_err(|e| WireError::Io(e.kind()))
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn http_handler(
    store: Arc<SnapshotStore>,
    counters: Arc<IngestCounters>,
    queue: Arc<ShardedQueue<IngestItem>>,
    shutdown_requested: Arc<(Mutex<bool>, Condvar)>,
    slo_ms: f64,
) -> Handler {
    Arc::new(move |req: &HttpRequest| {
        if req.method == "POST" && req.target == "/shutdown" {
            let (flag, condvar) = &*shutdown_requested;
            *lock(flag) = true;
            condvar.notify_all();
            return HttpResponse::ok("text/plain; charset=utf-8", "shutting down\n".to_string());
        }
        if req.method != "GET" {
            return HttpResponse::method_not_allowed();
        }
        match req.target.as_str() {
            "/healthz" => HttpResponse::ok("text/plain; charset=utf-8", "ok\n".to_string()),
            "/readyz" => {
                let snap = store.load();
                let coverage = snap.coverage();
                let total = snap.num_paths();
                drop(snap);
                if coverage == total {
                    HttpResponse::ok("text/plain; charset=utf-8", "ready\n".to_string())
                } else {
                    HttpResponse::unavailable(format!("coverage {coverage}/{total}\n"), 1)
                }
            }
            "/state" | "/verdict" => {
                let start = Instant::now();
                let answer = store.load().answer();
                QUERY_LATENCY_US.record(start.elapsed().as_secs_f64() * 1e6);
                match answer {
                    Ok(a) => {
                        let body = if req.target == "/state" {
                            let bits: Vec<String> = a
                                .estimate_bits
                                .iter()
                                .map(|b| format!("\"{b:016x}\""))
                                .collect();
                            let floats: Vec<String> = a
                                .estimate_bits
                                .iter()
                                .map(|&b| json_f64(f64::from_bits(b)))
                                .collect();
                            format!(
                                "{{\"epoch\": {}, \"coverage\": {}, \"num_paths\": {}, \
                                 \"degraded\": {}, \"rank\": {}, \"used_ridge\": {}, \
                                 \"unidentifiable\": {}, \"estimate_bits\": [{}], \
                                 \"estimate\": [{}]}}\n",
                                a.epoch,
                                a.coverage,
                                a.num_paths,
                                a.degraded,
                                a.rank,
                                a.used_ridge,
                                a.unidentifiable,
                                bits.join(", "),
                                floats.join(", "),
                            )
                        } else {
                            format!(
                                "{{\"epoch\": {}, \"coverage\": {}, \"detected\": {}, \
                                 \"residual_l1\": {}, \"min_estimate\": {}, \"degraded\": {}, \
                                 \"used_ridge\": {}}}\n",
                                a.epoch,
                                a.coverage,
                                a.verdict.detected,
                                json_f64(a.verdict.residual_l1),
                                json_f64(a.verdict.min_estimate),
                                a.degraded,
                                a.used_ridge,
                            )
                        };
                        HttpResponse::ok("application/json", body)
                    }
                    Err(QueryError::NoCoverage) => {
                        HttpResponse::unavailable("no measurements yet\n".to_string(), 1)
                    }
                    Err(QueryError::Core(e)) => HttpResponse {
                        status: "500 Internal Server Error",
                        content_type: "text/plain; charset=utf-8",
                        body: format!("solve failed: {e}\n"),
                        extra_headers: Vec::new(),
                    },
                }
            }
            "/stats" => {
                let snap = store.load();
                let (stats, epoch, coverage, version) =
                    (snap.stats(), snap.epoch(), snap.coverage(), snap.version());
                drop(snap);
                let shards: Vec<String> = queue
                    .shard_stats()
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"depth\": {}, \"pushed\": {}, \"rejects\": {}}}",
                            s.depth, s.pushed, s.rejects
                        )
                    })
                    .collect();
                let latency = tomo_obs::histogram("serve.query.latency_us").summary();
                let body = format!(
                    "{{\"epoch\": {}, \"coverage\": {}, \"snapshot_version\": {}, \
                     \"queue_depth\": {}, \"shards\": [{}], \
                     \"applied\": {}, \"deduped\": {}, \"reordered\": {}, \
                     \"quarantined_batches\": {}, \"stale_epoch\": {}, \
                     \"connections\": {}, \"quarantined_frames\": {}, \
                     \"truncated_frames\": {}, \"garbled_frames\": {}, \
                     \"queue_rejects\": {}, \"slo_ms\": {}, \
                     \"query_latency_us\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}}}}\n",
                    epoch,
                    coverage,
                    version,
                    queue.depth(),
                    shards.join(", "),
                    stats.applied,
                    stats.deduped,
                    stats.reordered,
                    stats.quarantined,
                    stats.stale_epoch,
                    counters.connections.load(Ordering::Relaxed),
                    counters.quarantined_frames(),
                    counters.truncated_frames.load(Ordering::Relaxed),
                    counters.garbled_frames.load(Ordering::Relaxed),
                    counters.queue_rejects.load(Ordering::Relaxed),
                    json_f64(slo_ms),
                    latency.count,
                    json_f64(latency.p50),
                    json_f64(latency.p99),
                );
                HttpResponse::ok("application/json", body)
            }
            _ => HttpResponse::not_found(),
        }
    })
}
