//! The serve benchmark workload behind `BENCH_serve.json`.
//!
//! One in-process daemon, one probe client streaming full-coverage
//! batches as fast as the lockstep protocol allows, and one query
//! thread hammering the engine *while* ingest is running — so the
//! reported p50/p99 query latency is measured under load, which is what
//! the SLO promises.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tomo_core::fig1::fig1_system;
use tomo_detect::ConsistencyDetector;
use tomo_linalg::Vector;

use crate::client::ProbeClient;
use crate::server::{ServeConfig, Server};
use crate::wire::ProbeRow;

/// Workload knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Batches to stream (each covers every path).
    pub batches: usize,
    /// The p99 SLO the report is judged against, milliseconds.
    pub slo_ms: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            batches: 400,
            slo_ms: 5.0,
        }
    }
}

/// What the workload measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Batches acknowledged durable.
    pub batches: u64,
    /// Rows per batch (= paths in the fig. 1 system).
    pub rows_per_batch: usize,
    /// Wall-clock seconds spent streaming.
    pub ingest_secs: f64,
    /// Acked batches per second.
    pub batches_per_sec: f64,
    /// Measurement rows per second.
    pub rows_per_sec: f64,
    /// Queries answered while ingest was running.
    pub queries: u64,
    /// Median query latency, microseconds.
    pub query_p50_us: f64,
    /// Tail query latency, microseconds.
    pub query_p99_us: f64,
    /// The SLO judged against, milliseconds.
    pub slo_ms: f64,
    /// `true` when `query_p99_us` stayed under the SLO.
    pub slo_met: bool,
}

impl BenchReport {
    /// Renders the report as a JSON object (the `BENCH_serve.json`
    /// payload body).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"batches\": {}, \"rows_per_batch\": {}, \"ingest_secs\": {:.6}, \
             \"batches_per_sec\": {:.1}, \"rows_per_sec\": {:.1}, \"queries\": {}, \
             \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}, \"slo_ms\": {}, \
             \"slo_met\": {}}}",
            self.batches,
            self.rows_per_batch,
            self.ingest_secs,
            self.batches_per_sec,
            self.rows_per_sec,
            self.queries,
            self.query_p50_us,
            self.query_p99_us,
            self.slo_ms,
            self.slo_met,
        )
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the ingest-throughput / query-latency workload against a fresh
/// in-process daemon over the fig. 1 system.
///
/// # Panics
///
/// Panics when the fig. 1 system cannot be built or the daemon cannot
/// bind (both indicate a broken environment, not a measurement).
#[must_use]
pub fn run(config: &BenchConfig) -> BenchReport {
    let system = Arc::new(fig1_system().expect("fig1 system builds"));
    let num_paths = system.num_paths();
    let x = Vector::filled(system.num_links(), 10.0);
    let y = system.measure(&x).expect("fig1 measurement");

    let server = Server::start(
        Arc::clone(&system),
        ConsistencyDetector::recommended(),
        ServeConfig {
            queue_capacity: 256,
            ..ServeConfig::default()
        },
    )
    .expect("daemon binds ephemeral ports");

    let stop_queries = AtomicBool::new(false);
    let (acked, ingest_secs, latencies) = std::thread::scope(|scope| {
        let query_thread = scope.spawn(|| {
            let mut lat = Vec::new();
            while !stop_queries.load(Ordering::Acquire) {
                let start = Instant::now();
                let _ = server.query();
                lat.push(start.elapsed().as_secs_f64() * 1e6);
                std::thread::sleep(Duration::from_micros(500));
            }
            lat
        });

        let mut client = ProbeClient::new(server.ingest_addr(), 0xBEEF);
        let batches: Vec<Vec<ProbeRow>> = (0..config.batches)
            .map(|b| {
                (0..num_paths)
                    .map(|i| {
                        // Vary values so every batch forces a real apply.
                        ProbeRow::new(u32::try_from(i).expect("path fits"), y[i] + b as f64 * 1e-9)
                    })
                    .collect()
            })
            .collect();
        let start = Instant::now();
        let outcome = client.stream(batches, None).expect("clean stream delivers");
        let ingest_secs = start.elapsed().as_secs_f64();
        stop_queries.store(true, Ordering::Release);
        let latencies = query_thread.join().expect("query thread joins");
        (outcome.acked, ingest_secs, latencies)
    });

    drop(server);

    let mut sorted = latencies;
    sorted.sort_by(f64::total_cmp);
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    BenchReport {
        batches: acked,
        rows_per_batch: num_paths,
        ingest_secs,
        batches_per_sec: acked as f64 / ingest_secs.max(1e-9),
        rows_per_sec: (acked as f64 * num_paths as f64) / ingest_secs.max(1e-9),
        queries: sorted.len() as u64,
        query_p50_us: p50,
        query_p99_us: p99,
        slo_ms: config.slo_ms,
        slo_met: p99 < config.slo_ms * 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_produces_a_sane_report() {
        let report = run(&BenchConfig {
            batches: 8,
            slo_ms: 1000.0,
        });
        assert_eq!(report.batches, 8);
        assert!(report.batches_per_sec > 0.0);
        assert!(report.queries > 0, "queries ran during ingest");
        assert!(report.query_p99_us >= report.query_p50_us);
        let json = report.to_json();
        assert!(json.contains("\"slo_met\": true"), "json: {json}");
    }
}
