//! The online estimation engine behind the daemon.
//!
//! State is a per-path *slot* table — the latest measured value for each
//! routing-matrix row plus the batch id that wrote it — maintained under
//! **last-writer-wins by batch id**. Batch ids are assigned
//! monotonically by the sender, so the slot table (and everything
//! derived from it) is a pure function of the *set* of applied batches,
//! independent of arrival order. That is what makes duplicate and
//! reordered frames harmless, and what makes journal replay after a
//! crash reconverge to bit-identical state.
//!
//! Queries answer from the slot table through the PR 7 incremental
//! machinery: full path coverage estimates via the cached normal-
//! equations factor, partial coverage routes through
//! [`TomographySystem::solve_degraded`] (rank-1 downdates, ridge
//! fallback) so the daemon keeps answering while probes are missing.
//! Answers are cached and invalidated per applied batch, so a query
//! burst between ingests costs one solve, not N.

use std::collections::BTreeSet;

use tomo_core::{CoreError, TomographySystem};
use tomo_detect::{ConsistencyDetector, Verdict};
use tomo_linalg::Vector;
use tomo_obs::LazyCounter;

use crate::wire::{ProbeBatch, SnapshotState};

static APPLIED: LazyCounter = LazyCounter::new("serve.engine.applied");
static DEDUPED: LazyCounter = LazyCounter::new("serve.engine.deduped");
static REORDERED: LazyCounter = LazyCounter::new("serve.engine.reordered");
static QUARANTINED: LazyCounter = LazyCounter::new("serve.engine.quarantined");
static STALE: LazyCounter = LazyCounter::new("serve.engine.stale");
static SOLVES: LazyCounter = LazyCounter::new("serve.engine.solves");
static CACHE_HITS: LazyCounter = LazyCounter::new("serve.engine.cache_hits");

/// Why a batch was quarantined instead of applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFault {
    /// A row named a path index outside the routing matrix.
    PathOutOfRange {
        /// The offending index.
        path: u32,
    },
    /// A row carried a NaN or infinite reading.
    NonFiniteValue {
        /// The offending path.
        path: u32,
    },
}

/// The engine's decision for one ingested batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Applied to the slot table. `reordered` is `true` when the batch
    /// arrived after a higher id had already been applied.
    Applied {
        /// Out-of-order arrival was observed (and absorbed).
        reordered: bool,
    },
    /// Already applied — acknowledged again, state untouched.
    Duplicate,
    /// The batch's epoch predates the current session.
    StaleEpoch,
    /// The batch was unusable and discarded.
    Quarantined(BatchFault),
}

/// Cumulative engine counters (mirrored as `serve.engine.*` metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Batches applied to the slot table.
    pub applied: u64,
    /// Duplicate batches absorbed by dedup.
    pub deduped: u64,
    /// Out-of-order arrivals absorbed by last-writer-wins.
    pub reordered: u64,
    /// Batches quarantined (non-finite value / bad path).
    pub quarantined: u64,
    /// Batches refused for carrying a stale epoch.
    pub stale_epoch: u64,
}

/// One query answer, cached until the next applied batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Session epoch at answer time.
    pub epoch: u64,
    /// Paths with a measurement in their slot.
    pub coverage: usize,
    /// Total paths in the routing matrix.
    pub num_paths: usize,
    /// The link-state estimate `x̂`, as exact `f64::to_bits` values (the
    /// serve-chaos byte-identity comparison consumes these).
    pub estimate_bits: Vec<u64>,
    /// The Eq. 23 (+ plausibility) detection verdict over the covered
    /// rows.
    pub verdict: Verdict,
    /// `true` when the answer came from the degraded (partial-coverage)
    /// path.
    pub degraded: bool,
    /// Rank of the covered routing submatrix.
    pub rank: usize,
    /// Whether the degraded solve fell back to ridge regularization.
    pub used_ridge: bool,
    /// Links unidentifiable under the current coverage.
    pub unidentifiable: usize,
}

/// Why a query could not be answered. `Clone` so a snapshot can cache
/// the outcome once and hand copies to every reader.
#[derive(Debug, Clone)]
pub enum QueryError {
    /// No path has reported a measurement yet.
    NoCoverage,
    /// The underlying solve failed.
    Core(CoreError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NoCoverage => write!(f, "no measurements ingested yet"),
            QueryError::Core(e) => write!(f, "estimation failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<CoreError> for QueryError {
    fn from(e: CoreError) -> Self {
        QueryError::Core(e)
    }
}

/// Solves one estimate/verdict answer from a covered-slot view. Shared
/// by the locked [`Engine::query`] path and the lock-free snapshot path
/// so both produce bit-identical answers for the same slot state.
///
/// `covered` lists the paths holding a measurement (ascending) and
/// `values` their readings, parallel to `covered`.
pub(crate) fn solve_answer(
    system: &TomographySystem,
    detector: ConsistencyDetector,
    covered: &[usize],
    values: &[f64],
    epoch: u64,
    num_paths: usize,
) -> Result<QueryAnswer, QueryError> {
    SOLVES.inc();
    if covered.len() == num_paths {
        let y = Vector::from(values.to_vec());
        let estimate = system.estimate(&y)?;
        let verdict = detector.inspect(system, &y)?;
        Ok(QueryAnswer {
            epoch,
            coverage: num_paths,
            num_paths,
            estimate_bits: estimate.iter().map(|v| v.to_bits()).collect(),
            verdict,
            degraded: false,
            rank: system.num_links(),
            used_ridge: false,
            unidentifiable: 0,
        })
    } else {
        let y_sub = Vector::from(values.to_vec());
        let solve = system.solve_degraded(covered, &y_sub)?;
        let degraded = detector.inspect_degraded(system, covered, &y_sub)?;
        Ok(QueryAnswer {
            epoch,
            coverage: covered.len(),
            num_paths,
            estimate_bits: solve.estimate.iter().map(|v| v.to_bits()).collect(),
            verdict: degraded.verdict,
            degraded: true,
            rank: degraded.rank,
            used_ridge: degraded.used_ridge,
            unidentifiable: degraded.unidentifiable.len(),
        })
    }
}

/// The daemon's estimation state. Single-writer (the apply worker);
/// queries share it behind the server's lock.
pub struct Engine {
    system: std::sync::Arc<TomographySystem>,
    detector: ConsistencyDetector,
    epoch: u64,
    /// Every batch id below this has been applied.
    watermark: u64,
    /// Applied ids at/above the watermark (holes from reordering).
    applied_above: BTreeSet<u64>,
    /// Highest applied id, for reorder detection.
    max_applied: Option<u64>,
    /// Per-path `(value_bits, writer_batch_id)`.
    slots: Vec<Option<(u64, u64)>>,
    stats: EngineStats,
    cached: Option<QueryAnswer>,
}

impl Engine {
    /// Creates an empty engine over `system`, judged by `detector`.
    #[must_use]
    pub fn new(system: std::sync::Arc<TomographySystem>, detector: ConsistencyDetector) -> Self {
        let num_paths = system.num_paths();
        Engine {
            system,
            detector,
            epoch: 0,
            watermark: 0,
            applied_above: BTreeSet::new(),
            max_applied: None,
            slots: vec![None; num_paths],
            stats: EngineStats::default(),
            cached: None,
        }
    }

    /// The system being estimated.
    #[must_use]
    pub fn system(&self) -> &TomographySystem {
        &self.system
    }

    /// Current session epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Begins a new session epoch (on daemon start and restart).
    pub fn bump_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Paths currently holding a measurement.
    #[must_use]
    pub fn coverage(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// `true` once `batch_id` has been applied (in any epoch).
    #[must_use]
    pub fn is_applied(&self, batch_id: u64) -> bool {
        batch_id < self.watermark || self.applied_above.contains(&batch_id)
    }

    /// Non-mutating admission check: `true` iff [`Engine::apply`] would
    /// return `Applied` for `batch` right now (not stale, not a
    /// duplicate, every row in range and finite). The apply worker uses
    /// this to journal admitted batches *before* applying them, so a
    /// batch is never applied in memory without being durable first.
    #[must_use]
    pub fn admits(&self, batch: &ProbeBatch) -> bool {
        batch.epoch >= self.epoch
            && !self.is_applied(batch.batch_id)
            && batch
                .rows
                .iter()
                .all(|row| (row.path as usize) < self.slots.len() && row.value().is_finite())
    }

    /// Validates and applies one batch. Never panics; every unusable
    /// input maps to a non-`Applied` outcome.
    pub fn apply(&mut self, batch: &ProbeBatch) -> ApplyOutcome {
        if batch.epoch < self.epoch {
            self.stats.stale_epoch += 1;
            STALE.inc();
            return ApplyOutcome::StaleEpoch;
        }
        if self.is_applied(batch.batch_id) {
            self.stats.deduped += 1;
            DEDUPED.inc();
            return ApplyOutcome::Duplicate;
        }
        // Validate before mutating: a quarantined batch leaves no trace.
        for row in &batch.rows {
            if (row.path as usize) >= self.slots.len() {
                self.stats.quarantined += 1;
                QUARANTINED.inc();
                return ApplyOutcome::Quarantined(BatchFault::PathOutOfRange { path: row.path });
            }
            if !row.value().is_finite() {
                self.stats.quarantined += 1;
                QUARANTINED.inc();
                return ApplyOutcome::Quarantined(BatchFault::NonFiniteValue { path: row.path });
            }
        }
        let reordered = self.max_applied.is_some_and(|max| batch.batch_id < max);
        for row in &batch.rows {
            let slot = &mut self.slots[row.path as usize];
            // Last-writer-wins by id: an out-of-order older batch never
            // clobbers a newer reading.
            if slot.is_none_or(|(_, writer)| writer <= batch.batch_id) {
                *slot = Some((row.value_bits, batch.batch_id));
            }
        }
        self.mark_applied(batch.batch_id);
        self.max_applied = Some(
            self.max_applied
                .map_or(batch.batch_id, |m| m.max(batch.batch_id)),
        );
        self.stats.applied += 1;
        APPLIED.inc();
        if reordered {
            self.stats.reordered += 1;
            REORDERED.inc();
        }
        self.cached = None;
        ApplyOutcome::Applied { reordered }
    }

    fn mark_applied(&mut self, batch_id: u64) {
        self.applied_above.insert(batch_id);
        while self.applied_above.remove(&self.watermark) {
            self.watermark += 1;
        }
    }

    /// Answers a link-state / detection query from the slot table,
    /// reusing the cached answer when nothing was applied since.
    ///
    /// # Errors
    ///
    /// [`QueryError::NoCoverage`] before the first measurement;
    /// [`QueryError::Core`] if the solve itself fails.
    pub fn query(&mut self) -> Result<QueryAnswer, QueryError> {
        if let Some(cached) = &self.cached {
            CACHE_HITS.inc();
            return Ok(cached.clone());
        }
        let num_paths = self.slots.len();
        let covered: Vec<usize> = (0..num_paths)
            .filter(|&i| self.slots[i].is_some())
            .collect();
        if covered.is_empty() {
            return Err(QueryError::NoCoverage);
        }
        let values: Vec<f64> = covered
            .iter()
            .map(|&i| f64::from_bits(self.slots[i].expect("covered row has a slot").0))
            .collect();
        let answer = solve_answer(
            &self.system,
            self.detector,
            &covered,
            &values,
            self.epoch,
            num_paths,
        )?;
        self.cached = Some(answer.clone());
        Ok(answer)
    }

    /// Freezes the engine's observable state into an immutable snapshot
    /// for the lock-free query path. Called by the apply worker after a
    /// drain burst; `version` is the publish counter.
    #[must_use]
    pub fn published_view(&self, version: u64) -> crate::snapshot::EngineSnapshot {
        let mut covered = Vec::new();
        let mut values_bits = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some((bits, _)) = slot {
                covered.push(i);
                values_bits.push(*bits);
            }
        }
        crate::snapshot::EngineSnapshot::new(
            version,
            self.epoch,
            self.watermark,
            self.slots.len(),
            covered,
            values_bits,
            self.stats,
            std::sync::Arc::clone(&self.system),
            self.detector,
        )
    }

    /// Captures the full engine state for a journal snapshot frame.
    #[must_use]
    pub fn snapshot(&self) -> SnapshotState {
        SnapshotState {
            epoch: self.epoch,
            watermark: self.watermark,
            applied_above: self.applied_above.iter().copied().collect(),
            slots: self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    s.map(|(bits, writer)| (u32::try_from(i).expect("path fits u32"), bits, writer))
                })
                .collect(),
        }
    }

    /// Resets the engine to a journal snapshot (replay fast-forward).
    pub fn restore(&mut self, snap: &SnapshotState) {
        self.epoch = snap.epoch;
        self.watermark = snap.watermark;
        self.applied_above = snap.applied_above.iter().copied().collect();
        self.max_applied = snap
            .applied_above
            .iter()
            .max()
            .copied()
            .or(snap.watermark.checked_sub(1));
        self.slots = vec![None; self.slots.len()];
        for &(path, bits, writer) in &snap.slots {
            if let Some(slot) = self.slots.get_mut(path as usize) {
                *slot = Some((bits, writer));
            }
        }
        self.cached = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ProbeRow;
    use tomo_core::fig1;

    fn engine() -> Engine {
        let system = std::sync::Arc::new(fig1::fig1_system().expect("fig1 builds"));
        Engine::new(system, ConsistencyDetector::recommended())
    }

    fn full_batch(id: u64, epoch: u64, base: f64, n: usize) -> ProbeBatch {
        ProbeBatch {
            batch_id: id,
            epoch,
            rows: (0..n)
                .map(|i| ProbeRow::new(u32::try_from(i).unwrap(), base + i as f64))
                .collect(),
        }
    }

    #[test]
    fn applies_and_answers_full_coverage() {
        let mut e = engine();
        let n = e.system().num_paths();
        // A consistent measurement: y = R x for a known x.
        let x = Vector::filled(e.system().num_links(), 10.0);
        let y = e.system().measure(&x).unwrap();
        let batch = ProbeBatch {
            batch_id: 0,
            epoch: 0,
            rows: y
                .iter()
                .enumerate()
                .map(|(i, &v)| ProbeRow::new(u32::try_from(i).unwrap(), v))
                .collect(),
        };
        assert_eq!(e.apply(&batch), ApplyOutcome::Applied { reordered: false });
        assert_eq!(e.coverage(), n);
        let a = e.query().unwrap();
        assert!(!a.degraded);
        assert!(!a.verdict.detected, "consistent y must not trip Eq. 23");
        assert!(a.verdict.residual_l1 < 1e-6);
        let est: Vec<f64> = a.estimate_bits.iter().map(|&b| f64::from_bits(b)).collect();
        for v in est {
            assert!((v - 10.0).abs() < 1e-8);
        }
    }

    #[test]
    fn partial_coverage_degrades_gracefully() {
        let mut e = engine();
        let n = e.system().num_paths();
        let x = Vector::filled(e.system().num_links(), 5.0);
        let y = e.system().measure(&x).unwrap();
        // Cover all but the last two paths.
        let batch = ProbeBatch {
            batch_id: 0,
            epoch: 0,
            rows: (0..n - 2)
                .map(|i| ProbeRow::new(u32::try_from(i).unwrap(), y[i]))
                .collect(),
        };
        assert!(matches!(e.apply(&batch), ApplyOutcome::Applied { .. }));
        let a = e.query().unwrap();
        assert!(a.degraded);
        assert_eq!(a.coverage, n - 2);
        assert!(!a.verdict.detected);
    }

    #[test]
    fn no_coverage_is_a_typed_error() {
        let mut e = engine();
        assert!(matches!(e.query(), Err(QueryError::NoCoverage)));
    }

    #[test]
    fn duplicates_dedup_and_stale_epochs_refuse() {
        let mut e = engine();
        e.bump_epoch(2);
        let b = full_batch(0, 2, 1.0, 3);
        assert!(matches!(e.apply(&b), ApplyOutcome::Applied { .. }));
        assert_eq!(e.apply(&b), ApplyOutcome::Duplicate);
        let old = full_batch(1, 1, 1.0, 3);
        assert_eq!(e.apply(&old), ApplyOutcome::StaleEpoch);
        assert_eq!(e.stats().deduped, 1);
        assert_eq!(e.stats().stale_epoch, 1);
    }

    #[test]
    fn non_finite_and_bad_path_quarantine_without_trace() {
        let mut e = engine();
        let nan = ProbeBatch {
            batch_id: 0,
            epoch: 0,
            rows: vec![ProbeRow::new(0, 1.0), ProbeRow::new(1, f64::NAN)],
        };
        assert!(matches!(
            e.apply(&nan),
            ApplyOutcome::Quarantined(BatchFault::NonFiniteValue { path: 1 })
        ));
        // The valid first row must NOT have been applied.
        assert_eq!(e.coverage(), 0);
        assert!(!e.is_applied(0), "quarantined ids stay unapplied");
        let oob = ProbeBatch {
            batch_id: 1,
            epoch: 0,
            rows: vec![ProbeRow::new(9999, 1.0)],
        };
        assert!(matches!(
            e.apply(&oob),
            ApplyOutcome::Quarantined(BatchFault::PathOutOfRange { path: 9999 })
        ));
        assert_eq!(e.stats().quarantined, 2);
    }

    #[test]
    fn admits_agrees_with_apply_and_never_mutates() {
        let mut e = engine();
        e.bump_epoch(2);
        let good = full_batch(0, 2, 1.0, 3);
        assert!(e.admits(&good));
        assert!(matches!(e.apply(&good), ApplyOutcome::Applied { .. }));
        assert!(!e.admits(&good), "duplicates are not admitted");
        assert!(!e.admits(&full_batch(1, 1, 1.0, 3)), "stale epoch");
        let nan = ProbeBatch {
            batch_id: 2,
            epoch: 2,
            rows: vec![ProbeRow::new(0, f64::NAN)],
        };
        assert!(!e.admits(&nan), "non-finite row");
        let oob = ProbeBatch {
            batch_id: 3,
            epoch: 2,
            rows: vec![ProbeRow::new(9999, 1.0)],
        };
        assert!(!e.admits(&oob), "out-of-range path");
        let stats = e.stats();
        assert_eq!(
            (
                stats.applied,
                stats.deduped,
                stats.stale_epoch,
                stats.quarantined
            ),
            (1, 0, 0, 0),
            "admits leaves stats untouched"
        );
    }

    #[test]
    fn arrival_order_does_not_matter() {
        // Apply {0,1,2} in order vs. {0,2,1}: identical slots.
        let batches: Vec<ProbeBatch> = (0..3u64)
            .map(|id| full_batch(id, 0, id as f64 * 100.0, 5))
            .collect();
        let mut in_order = engine();
        for b in &batches {
            in_order.apply(b);
        }
        let mut reordered = engine();
        reordered.apply(&batches[0]);
        assert_eq!(
            reordered.apply(&batches[2]),
            ApplyOutcome::Applied { reordered: false }
        );
        assert_eq!(
            reordered.apply(&batches[1]),
            ApplyOutcome::Applied { reordered: true }
        );
        assert_eq!(in_order.snapshot(), reordered.snapshot());
        assert_eq!(reordered.stats().reordered, 1);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut e = engine();
        e.bump_epoch(3);
        e.apply(&full_batch(0, 3, 1.0, 4));
        e.apply(&full_batch(2, 3, 2.0, 4)); // leaves a hole at id 1
        let snap = e.snapshot();
        let mut fresh = engine();
        fresh.restore(&snap);
        assert_eq!(fresh.snapshot(), snap);
        assert_eq!(fresh.epoch(), 3);
        assert!(fresh.is_applied(0) && fresh.is_applied(2) && !fresh.is_applied(1));
        // The hole closes identically after restore.
        fresh.apply(&full_batch(1, 3, 9.0, 4));
        e.apply(&full_batch(1, 3, 9.0, 4));
        assert_eq!(fresh.snapshot(), e.snapshot());
    }

    #[test]
    fn published_view_answers_bit_identical_to_query() {
        let mut e = engine();
        let n = e.system().num_paths();
        // Partial coverage, so the degraded path is exercised too.
        let x = Vector::filled(e.system().num_links(), 7.0);
        let y = e.system().measure(&x).unwrap();
        let batch = ProbeBatch {
            batch_id: 0,
            epoch: 0,
            rows: (0..n - 1)
                .map(|i| ProbeRow::new(u32::try_from(i).unwrap(), y[i]))
                .collect(),
        };
        assert!(matches!(e.apply(&batch), ApplyOutcome::Applied { .. }));
        let view = e.published_view(1);
        let from_snapshot = view.answer().unwrap();
        let from_engine = e.query().unwrap();
        assert_eq!(from_snapshot, from_engine);
        assert_eq!(view.watermark(), 1);
        assert_eq!(view.coverage(), n - 1);
        assert!(view.self_check());
    }

    #[test]
    fn query_cache_invalidates_on_apply() {
        let mut e = engine();
        let n = e.system().num_paths();
        e.apply(&full_batch(0, 0, 10.0, n));
        let a1 = e.query().unwrap();
        let a2 = e.query().unwrap();
        assert_eq!(a1, a2, "cached answer identical");
        e.apply(&full_batch(1, 0, 20.0, n));
        let a3 = e.query().unwrap();
        assert_ne!(a1.estimate_bits, a3.estimate_bits);
    }
}
