//! A bounded MPSC hand-off between connection handlers and the apply
//! worker.
//!
//! The daemon never buffers without bound: when the queue is at
//! capacity, [`BoundedQueue::try_push`] fails *immediately* and the
//! connection handler turns that into an explicit `Reject(QueueFull)`
//! with a retry hint — backpressure the client can see, instead of
//! latency it can only suffer.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tomo_obs::LazyGauge;

static QUEUE_DEPTH: LazyGauge = LazyGauge::new("serve.queue.depth");

/// The error returned when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Suggested client backoff before retrying, in milliseconds.
    pub retry_after_ms: u32,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue (mutex + condvar; the
/// workspace is `forbid(unsafe_code)` throughout, so no lock-free ring).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    retry_after_ms: u32,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items whose rejections
    /// hint `retry_after_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, retry_after_ms: u32) -> Arc<Self> {
        assert!(capacity > 0, "queue capacity must be positive");
        Arc::new(BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
            retry_after_ms,
        })
    }

    /// Enqueues `item`, or fails immediately when at capacity (the
    /// caller surfaces this as backpressure) or after close.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when at capacity or closed; the item comes
    /// back in neither case — closed queues drop, which only happens
    /// during shutdown when the client will see the connection end.
    pub fn try_push(&self, item: T) -> Result<(), QueueFull> {
        let mut inner = lock(&self.inner);
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(QueueFull {
                retry_after_ms: self.retry_after_ms,
            });
        }
        inner.items.push_back(item);
        QUEUE_DEPTH.set(inner.items.len() as f64);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, waiting up to `timeout`.
    ///
    /// Returns `None` on timeout, or when the queue is closed *and*
    /// drained — the consumer's signal to exit.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                QUEUE_DEPTH.set(inner.items.len() as f64);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let (guard, result) = self
                .not_empty
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if result.timed_out() {
                return inner.items.pop_front().inspect(|_| {
                    QUEUE_DEPTH.set(inner.items.len() as f64);
                });
            }
        }
    }

    /// Current number of queued items.
    #[must_use]
    pub fn depth(&self) -> usize {
        lock(&self.inner).items.len()
    }

    /// Closes the queue: pushes start failing, and the consumer drains
    /// what remains before `pop_timeout` returns `None`.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.not_empty.notify_all();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_in_order() {
        let q = BoundedQueue::new(4, 10);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn capacity_rejects_with_retry_hint() {
        let q = BoundedQueue::new(2, 25);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(QueueFull { retry_after_ms: 25 }));
        // Draining one slot readmits.
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4, 10);
        q.try_push(1).unwrap();
        q.close();
        assert!(q.try_push(2).is_err(), "closed queue refuses pushes");
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = BoundedQueue::new(8, 10);
        let producer = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                while producer.try_push(i).is_err() {
                    std::thread::yield_now();
                }
            }
            producer.close();
        });
        let mut got = Vec::new();
        while let Some(v) = q.pop_timeout(Duration::from_secs(5)) {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
