//! Bounded MPSC hand-offs between connection handlers and the apply
//! worker.
//!
//! The daemon never buffers without bound: when a queue is at capacity,
//! `try_push` fails *immediately* and the connection handler turns that
//! into an explicit `Reject(QueueFull)` with a retry hint —
//! backpressure the client can see, instead of latency it can only
//! suffer. The hint is **adaptive**: it scales with current occupancy,
//! so a briefly-full queue tells clients to come back soon while a
//! saturated one spreads them out.
//!
//! Two shapes live here. [`BoundedQueue`] is the original single-lane
//! ring. [`ShardedQueue`] partitions capacity into per-path-group
//! shards — producers hash their path group to a shard and only contend
//! with producers on the same shard — drained by the single apply
//! worker in **deterministic round-robin** order so the applied-batch
//! sequence (and hence the journal and every artifact) does not depend
//! on which producer thread won a lock race.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tomo_obs::LazyGauge;

static QUEUE_DEPTH: LazyGauge = LazyGauge::new("serve.queue.depth");

/// The error returned when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Suggested client backoff before retrying, in milliseconds.
    /// Derived from occupancy at reject time, not a fixed constant.
    pub retry_after_ms: u32,
}

/// Scales the base retry hint by occupancy: a queue rejecting while the
/// system as a whole is near-empty (one hot shard) hints a quick retry;
/// a saturated system hints the full base backoff. Always at least 1 ms
/// so clients never spin.
fn adaptive_retry_ms(base: u32, depth: usize, capacity: usize) -> u32 {
    let occupancy = if capacity == 0 {
        1.0
    } else {
        (depth as f64 / capacity as f64).clamp(0.0, 1.0)
    };
    let scaled = (f64::from(base) * (0.25 + 0.75 * occupancy)).ceil();
    (scaled as u32).max(1)
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue (mutex + condvar; the
/// workspace is `forbid(unsafe_code)` throughout, so no lock-free ring).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    retry_after_ms: u32,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items whose rejections
    /// hint `retry_after_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, retry_after_ms: u32) -> Arc<Self> {
        assert!(capacity > 0, "queue capacity must be positive");
        Arc::new(BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
            retry_after_ms,
        })
    }

    /// Enqueues `item`, or fails immediately when at capacity (the
    /// caller surfaces this as backpressure) or after close.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when at capacity or closed; the item comes
    /// back in neither case — closed queues drop, which only happens
    /// during shutdown when the client will see the connection end.
    pub fn try_push(&self, item: T) -> Result<(), QueueFull> {
        let mut inner = lock(&self.inner);
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(QueueFull {
                retry_after_ms: adaptive_retry_ms(
                    self.retry_after_ms,
                    inner.items.len(),
                    self.capacity,
                ),
            });
        }
        inner.items.push_back(item);
        QUEUE_DEPTH.set(inner.items.len() as f64);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, waiting up to `timeout`.
    ///
    /// Returns `None` on timeout, or when the queue is closed *and*
    /// drained — the consumer's signal to exit.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                QUEUE_DEPTH.set(inner.items.len() as f64);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let (guard, result) = self
                .not_empty
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if result.timed_out() {
                return inner.items.pop_front().inspect(|_| {
                    QUEUE_DEPTH.set(inner.items.len() as f64);
                });
            }
        }
    }

    /// Current number of queued items.
    #[must_use]
    pub fn depth(&self) -> usize {
        lock(&self.inner).items.len()
    }

    /// Closes the queue: pushes start failing, and the consumer drains
    /// what remains before `pop_timeout` returns `None`.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.not_empty.notify_all();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A point-in-time view of one shard, for `/stats` and the load sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Items currently queued in this shard.
    pub depth: usize,
    /// Items ever admitted to this shard.
    pub pushed: u64,
    /// Pushes refused at capacity.
    pub rejects: u64,
}

struct Shard<T> {
    items: Mutex<VecDeque<T>>,
    pushed: AtomicU64,
    rejects: AtomicU64,
    depth_gauge: &'static tomo_obs::Gauge,
    reject_counter: &'static tomo_obs::Counter,
}

struct Doorbell {
    /// Items queued across all shards and not yet popped.
    pending: u64,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue partitioned into
/// per-path-group shards.
///
/// Producers hash their batch's path group to a shard
/// ([`ShardedQueue::shard_for`]) and push under that shard's mutex
/// only, so clients covering different path groups never contend. A
/// shared *doorbell* (count + condvar) wakes the single consumer, which
/// drains shards in round-robin order starting from a cursor — a
/// deterministic merge, so which shard a batch landed in never changes
/// the applied sequence's dependence on batch *content* (and the engine
/// is order-independent anyway; see `engine.rs`).
///
/// Capacity is split evenly: each shard holds at most
/// `ceil(total / shards)` items, and rejects carry an adaptive retry
/// hint scaled by **total** occupancy — one hot shard in an otherwise
/// idle daemon hints a fast retry.
pub struct ShardedQueue<T> {
    shards: Vec<Shard<T>>,
    doorbell: Mutex<Doorbell>,
    bell: Condvar,
    per_shard_capacity: usize,
    base_retry_ms: u32,
    /// Round-robin scan start; owned by the single consumer.
    cursor: AtomicUsize,
}

impl<T> ShardedQueue<T> {
    /// Creates a queue with `shards` shards sharing `total_capacity`
    /// items (split as `ceil(total/shards)` each) whose rejects hint an
    /// occupancy-scaled fraction of `base_retry_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `total_capacity` or `shards` is zero.
    #[must_use]
    pub fn new(total_capacity: usize, shards: usize, base_retry_ms: u32) -> Arc<Self> {
        assert!(total_capacity > 0, "queue capacity must be positive");
        assert!(shards > 0, "shard count must be positive");
        let per_shard_capacity = total_capacity.div_ceil(shards);
        let shards = (0..shards)
            .map(|i| Shard {
                items: Mutex::new(VecDeque::with_capacity(per_shard_capacity)),
                pushed: AtomicU64::new(0),
                rejects: AtomicU64::new(0),
                depth_gauge: tomo_obs::indexed_gauge("serve.queue.shard_depth", i),
                reject_counter: tomo_obs::indexed_counter("serve.queue.shard_rejects", i),
            })
            .collect();
        Arc::new(ShardedQueue {
            shards,
            doorbell: Mutex::new(Doorbell {
                pending: 0,
                closed: false,
            }),
            bell: Condvar::new(),
            per_shard_capacity,
            base_retry_ms,
            cursor: AtomicUsize::new(0),
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Maps a path-group key (e.g. a batch's smallest path id) to its
    /// shard, via FNV-1a so adjacent groups spread across shards.
    #[must_use]
    pub fn shard_for(&self, key: u64) -> usize {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in key.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Enqueues `item` on `shard`, or fails immediately when that shard
    /// is at capacity or the queue is closed.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] with an adaptive retry hint (scaled by
    /// total occupancy at reject time). The item is dropped in the
    /// closed case, which only happens during shutdown.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn try_push(&self, shard: usize, item: T) -> Result<(), QueueFull> {
        let s = &self.shards[shard];
        {
            // The closed check, the push, and the pending increment are
            // one atomic step under shard-then-doorbell nesting (the
            // consumer never holds the doorbell while taking a shard
            // lock, so this order cannot deadlock). Checking `closed`
            // before taking the shard lock would leave a window where
            // close() lands in between and the consumer exits after
            // draining pending to zero — the item would be enqueued and
            // acknowledged by Ok(()) but never consumed, stranding the
            // client until its ack timeout.
            let mut items = lock(&s.items);
            let mut bell = lock(&self.doorbell);
            if bell.closed || items.len() >= self.per_shard_capacity {
                drop(bell);
                drop(items);
                s.rejects.fetch_add(1, Ordering::Relaxed);
                s.reject_counter.inc();
                return Err(QueueFull {
                    retry_after_ms: adaptive_retry_ms(
                        self.base_retry_ms,
                        self.depth(),
                        self.per_shard_capacity * self.shards.len(),
                    ),
                });
            }
            items.push_back(item);
            s.pushed.fetch_add(1, Ordering::Relaxed);
            s.depth_gauge.set(items.len() as f64);
            bell.pending += 1;
        }
        self.bell.notify_one();
        Ok(())
    }

    /// Dequeues the next item in round-robin shard order, waiting up to
    /// `timeout`. Returns the shard it came from alongside the item.
    ///
    /// Returns `None` on timeout, or when the queue is closed *and*
    /// drained — the consumer's signal to exit. Single-consumer only:
    /// the round-robin cursor is not synchronized between consumers.
    pub fn pop_next(&self, timeout: Duration) -> Option<(usize, T)> {
        let mut bell = lock(&self.doorbell);
        loop {
            if bell.pending > 0 {
                bell.pending -= 1;
                drop(bell);
                return Some(self.take_round_robin());
            }
            if bell.closed {
                return None;
            }
            let (guard, result) = self
                .bell
                .wait_timeout(bell, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            bell = guard;
            if result.timed_out() {
                if bell.pending > 0 {
                    bell.pending -= 1;
                    drop(bell);
                    return Some(self.take_round_robin());
                }
                return None;
            }
        }
    }

    /// Pops from the first non-empty shard at/after the cursor. Only
    /// called when the doorbell guaranteed at least one queued item,
    /// and only items the single consumer hasn't taken yet — so a full
    /// scan always finds one.
    fn take_round_robin(&self) -> (usize, T) {
        let n = self.shards.len();
        let start = self.cursor.load(Ordering::Relaxed);
        for offset in 0..n {
            let idx = (start + offset) % n;
            let mut items = lock(&self.shards[idx].items);
            if let Some(item) = items.pop_front() {
                self.shards[idx].depth_gauge.set(items.len() as f64);
                drop(items);
                self.cursor.store((idx + 1) % n, Ordering::Relaxed);
                return (idx, item);
            }
        }
        unreachable!("doorbell said an item was pending but every shard was empty");
    }

    /// Total queued items across all shards.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.items).len()).sum()
    }

    /// Per-shard depth / pushed / reject counts.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                depth: lock(&s.items).len(),
                pushed: s.pushed.load(Ordering::Relaxed),
                rejects: s.rejects.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Closes the queue: pushes start failing, and the consumer drains
    /// what remains before `pop_next` returns `None`.
    pub fn close(&self) {
        lock(&self.doorbell).closed = true;
        self.bell.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_in_order() {
        let q = BoundedQueue::new(4, 10);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn capacity_rejects_with_retry_hint() {
        let q = BoundedQueue::new(2, 25);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(QueueFull { retry_after_ms: 25 }));
        // Draining one slot readmits.
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4, 10);
        q.try_push(1).unwrap();
        q.close();
        assert!(q.try_push(2).is_err(), "closed queue refuses pushes");
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn adaptive_hint_scales_with_occupancy() {
        // Full queue hints the whole base; a near-empty system hints a
        // quarter of it (floor 1 ms).
        assert_eq!(adaptive_retry_ms(100, 100, 100), 100);
        assert_eq!(adaptive_retry_ms(100, 0, 100), 25);
        assert_eq!(adaptive_retry_ms(100, 50, 100), 63);
        assert_eq!(adaptive_retry_ms(1, 0, 100), 1);
    }

    #[test]
    fn sharded_round_robin_merge_is_deterministic() {
        let q = ShardedQueue::new(12, 3, 10);
        // Interleave pushes across shards in a scrambled order.
        for (shard, v) in [(2, 20), (0, 1), (0, 2), (1, 10), (2, 21), (1, 11)] {
            q.try_push(shard, v).unwrap();
        }
        let mut order = Vec::new();
        while let Some((shard, v)) = q.pop_next(Duration::from_millis(1)) {
            order.push((shard, v));
        }
        // Cursor starts at 0: scan finds 0,1,2,0,1,2 — FIFO per shard.
        assert_eq!(
            order,
            vec![(0, 1), (1, 10), (2, 20), (0, 2), (1, 11), (2, 21)]
        );
    }

    #[test]
    fn sharded_rejects_only_the_full_shard() {
        let q = ShardedQueue::new(4, 2, 40); // 2 per shard
        q.try_push(0, 1).unwrap();
        q.try_push(0, 2).unwrap();
        let err = q.try_push(0, 3).unwrap_err();
        // Half the total capacity is occupied: hint is scaled down.
        assert_eq!(err.retry_after_ms, adaptive_retry_ms(40, 2, 4));
        assert!(err.retry_after_ms < 40);
        // The other shard still admits.
        q.try_push(1, 9).unwrap();
        let stats = q.shard_stats();
        assert_eq!(stats[0].rejects, 1);
        assert_eq!(stats[0].pushed, 2);
        assert_eq!(stats[1].rejects, 0);
        assert_eq!(stats[1].depth, 1);
    }

    #[test]
    fn sharded_close_drains_then_ends() {
        let q = ShardedQueue::new(8, 2, 10);
        q.try_push(0, 1).unwrap();
        q.try_push(1, 2).unwrap();
        q.close();
        assert!(q.try_push(0, 3).is_err(), "closed queue refuses pushes");
        assert_eq!(q.pop_next(Duration::from_millis(10)), Some((0, 1)));
        assert_eq!(q.pop_next(Duration::from_millis(10)), Some((1, 2)));
        assert_eq!(q.pop_next(Duration::from_millis(10)), None);
    }

    #[test]
    fn shard_for_is_stable_and_in_range() {
        let q: Arc<ShardedQueue<u32>> = ShardedQueue::new(8, 4, 10);
        for key in 0..64u64 {
            let s = q.shard_for(key);
            assert!(s < 4);
            assert_eq!(s, q.shard_for(key), "same key, same shard");
        }
        // FNV spreads consecutive keys over more than one shard.
        let distinct: std::collections::BTreeSet<usize> =
            (0..64u64).map(|k| q.shard_for(k)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn sharded_cross_thread_handoff_delivers_everything() {
        let q = ShardedQueue::new(16, 4, 10);
        let mut producers = Vec::new();
        for p in 0..4u32 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let v = p * 1000 + i;
                    let shard = q.shard_for(u64::from(p));
                    while q.try_push(shard, v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some((_, v)) = q.pop_next(Duration::from_secs(5)) {
                    got.push(v);
                    if got.len() == 200 {
                        break;
                    }
                }
                got
            })
        };
        for t in producers {
            t.join().unwrap();
        }
        let mut got = consumer.join().unwrap();
        q.close();
        got.sort_unstable();
        let want: Vec<u32> = (0..4u32)
            .flat_map(|p| (0..50u32).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(got, want);
        // Per-producer FIFO within a shard is preserved by VecDeque;
        // totals line up with what producers pushed.
        let stats = q.shard_stats();
        assert_eq!(stats.iter().map(|s| s.pushed).sum::<u64>(), 200);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = BoundedQueue::new(8, 10);
        let producer = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                while producer.try_push(i).is_err() {
                    std::thread::yield_now();
                }
            }
            producer.close();
        });
        let mut got = Vec::new();
        while let Some(v) = q.pop_timeout(Duration::from_secs(5)) {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
