//! The length-prefixed binary wire protocol shared by the ingest
//! socket, the `tomo-probe` client, and the on-disk journal.
//!
//! One frame on the wire is
//!
//! ```text
//! len: u32 BE | type: u8 | body (len − 1 bytes)
//! ```
//!
//! with every multi-byte integer big-endian. `len` counts the type byte
//! plus the body, so the smallest legal frame (`len = 1`) is five bytes
//! total. Frames larger than [`MAX_FRAME_LEN`] are rejected before any
//! allocation — a hostile length prefix cannot make the daemon reserve
//! gigabytes.
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`WireError`], and the connection handler's recovery policy (drop the
//! connection, quarantine the frame) keys off that type.

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version spoken by this build (in `Hello`).
pub const WIRE_VERSION: u32 = 1;

/// Hard ceiling on `len` (type byte + body). A fig1-scale batch is a few
/// hundred bytes; 1 MiB leaves three orders of magnitude of headroom
/// while bounding what a hostile length prefix can make us allocate.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Upper bound on rows in one batch, implied by [`MAX_FRAME_LEN`].
pub const MAX_BATCH_ROWS: usize = (MAX_FRAME_LEN - 21) / 12;

/// One measurement row: a path index and the observed value's raw bits.
///
/// Values travel as `f64::to_bits` so a round-trip through the wire (or
/// the journal) is exact for every value including negative zero; NaN
/// payloads survive too, and the *engine* — not the codec — is where
/// non-finite readings get quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeRow {
    /// Row index into the routing matrix (a path).
    pub path: u32,
    /// `f64::to_bits` of the measured value.
    pub value_bits: u64,
}

impl ProbeRow {
    /// Builds a row from a float value.
    #[must_use]
    pub fn new(path: u32, value: f64) -> Self {
        ProbeRow {
            path,
            value_bits: value.to_bits(),
        }
    }

    /// The measured value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.value_bits)
    }
}

/// One batch of probe measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeBatch {
    /// Globally unique, monotonically assigned by the sender. The engine
    /// deduplicates and orders by this id (last-writer-wins).
    pub batch_id: u64,
    /// The session epoch the sender believes is current; stale epochs
    /// are rejected so a pre-restart sender cannot silently interleave.
    pub epoch: u64,
    /// The measurement rows. Never empty on the wire ([`WireError::EmptyBatch`]).
    pub rows: Vec<ProbeRow>,
}

/// Why a batch was refused (the `code` of a [`Frame::Reject`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The ingest queue is full — retry after the hinted delay.
    QueueFull,
    /// The batch's epoch predates the current session — re-handshake.
    StaleEpoch,
    /// The batch is unusable (non-finite value, path out of range) and
    /// was quarantined — do not retry it.
    BadBatch,
}

impl RejectCode {
    /// Wire encoding of the code.
    #[must_use]
    pub fn to_u8(self) -> u8 {
        match self {
            RejectCode::QueueFull => 1,
            RejectCode::StaleEpoch => 2,
            RejectCode::BadBatch => 3,
        }
    }

    /// Decodes a wire code.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RejectCode::QueueFull),
            2 => Some(RejectCode::StaleEpoch),
            3 => Some(RejectCode::BadBatch),
            _ => None,
        }
    }
}

/// Every frame the protocol (and the journal) can carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server greeting.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u32,
    },
    /// Server → client handshake answer.
    HelloAck {
        /// Current session epoch.
        epoch: u64,
        /// Number of paths in the routing matrix (row-index bound).
        num_paths: u32,
    },
    /// A batch of measurements (client → server, and journaled).
    Batch(ProbeBatch),
    /// The batch was applied (or deduplicated) — durable.
    Ack {
        /// Acknowledged batch.
        batch_id: u64,
        /// Epoch it was applied under.
        epoch: u64,
    },
    /// The batch was refused; see [`RejectCode`].
    Reject {
        /// Refused batch.
        batch_id: u64,
        /// Why.
        code: RejectCode,
        /// Backoff hint for retryable codes (milliseconds).
        retry_after_ms: u32,
    },
    /// Journal-only: a new session epoch began here.
    EpochMark {
        /// The epoch that starts at this point of the journal.
        epoch: u64,
    },
    /// Journal-only: a full engine-state checkpoint; replay restarts
    /// from the last one instead of the beginning of time.
    Snapshot(SnapshotState),
}

/// The engine state captured in a journal [`Frame::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotState {
    /// Epoch at snapshot time.
    pub epoch: u64,
    /// Every batch id below this is applied.
    pub watermark: u64,
    /// Applied batch ids at or above the watermark (reorder holes).
    pub applied_above: Vec<u64>,
    /// Per-path slots: `(path, value_bits, writer_batch_id)`.
    pub slots: Vec<(u32, u64, u64)>,
}

const TYPE_HELLO: u8 = 1;
const TYPE_HELLO_ACK: u8 = 2;
const TYPE_BATCH: u8 = 3;
const TYPE_ACK: u8 = 4;
const TYPE_REJECT: u8 = 5;
const TYPE_EPOCH_MARK: u8 = 6;
const TYPE_SNAPSHOT: u8 = 7;

impl Frame {
    /// Encodes the frame as length-prefixed wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let ty = match self {
            Frame::Hello { version } => {
                body.extend_from_slice(&version.to_be_bytes());
                TYPE_HELLO
            }
            Frame::HelloAck { epoch, num_paths } => {
                body.extend_from_slice(&epoch.to_be_bytes());
                body.extend_from_slice(&num_paths.to_be_bytes());
                TYPE_HELLO_ACK
            }
            Frame::Batch(batch) => {
                body.extend_from_slice(&batch.batch_id.to_be_bytes());
                body.extend_from_slice(&batch.epoch.to_be_bytes());
                let count = u32::try_from(batch.rows.len()).expect("row count fits u32");
                body.extend_from_slice(&count.to_be_bytes());
                for row in &batch.rows {
                    body.extend_from_slice(&row.path.to_be_bytes());
                    body.extend_from_slice(&row.value_bits.to_be_bytes());
                }
                TYPE_BATCH
            }
            Frame::Ack { batch_id, epoch } => {
                body.extend_from_slice(&batch_id.to_be_bytes());
                body.extend_from_slice(&epoch.to_be_bytes());
                TYPE_ACK
            }
            Frame::Reject {
                batch_id,
                code,
                retry_after_ms,
            } => {
                body.extend_from_slice(&batch_id.to_be_bytes());
                body.push(code.to_u8());
                body.extend_from_slice(&retry_after_ms.to_be_bytes());
                TYPE_REJECT
            }
            Frame::EpochMark { epoch } => {
                body.extend_from_slice(&epoch.to_be_bytes());
                TYPE_EPOCH_MARK
            }
            Frame::Snapshot(s) => {
                body.extend_from_slice(&s.epoch.to_be_bytes());
                body.extend_from_slice(&s.watermark.to_be_bytes());
                let above = u32::try_from(s.applied_above.len()).expect("count fits u32");
                body.extend_from_slice(&above.to_be_bytes());
                for id in &s.applied_above {
                    body.extend_from_slice(&id.to_be_bytes());
                }
                let slots = u32::try_from(s.slots.len()).expect("count fits u32");
                body.extend_from_slice(&slots.to_be_bytes());
                for (path, bits, writer) in &s.slots {
                    body.extend_from_slice(&path.to_be_bytes());
                    body.extend_from_slice(&bits.to_be_bytes());
                    body.extend_from_slice(&writer.to_be_bytes());
                }
                TYPE_SNAPSHOT
            }
        };
        let len = u32::try_from(1 + body.len()).expect("frame fits u32");
        let mut out = Vec::with_capacity(4 + 1 + body.len());
        out.extend_from_slice(&len.to_be_bytes());
        out.push(ty);
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame's payload (type byte + body, the `len` bytes
    /// after the length prefix).
    ///
    /// # Errors
    ///
    /// Returns a typed [`WireError`] for every malformed input; never
    /// panics.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        let (&ty, body) = payload.split_first().ok_or(WireError::TruncatedFrame {
            expected: 1,
            got: 0,
        })?;
        let mut cur = Cursor { body, pos: 0 };
        let frame = match ty {
            TYPE_HELLO => Frame::Hello {
                version: cur.u32()?,
            },
            TYPE_HELLO_ACK => Frame::HelloAck {
                epoch: cur.u64()?,
                num_paths: cur.u32()?,
            },
            TYPE_BATCH => {
                let batch_id = cur.u64()?;
                let epoch = cur.u64()?;
                let count = cur.u32()? as usize;
                if count == 0 {
                    return Err(WireError::EmptyBatch { batch_id });
                }
                if count > MAX_BATCH_ROWS {
                    return Err(WireError::OversizedFrame {
                        len: count * 12,
                        max: MAX_FRAME_LEN,
                    });
                }
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    rows.push(ProbeRow {
                        path: cur.u32()?,
                        value_bits: cur.u64()?,
                    });
                }
                Frame::Batch(ProbeBatch {
                    batch_id,
                    epoch,
                    rows,
                })
            }
            TYPE_ACK => Frame::Ack {
                batch_id: cur.u64()?,
                epoch: cur.u64()?,
            },
            TYPE_REJECT => {
                let batch_id = cur.u64()?;
                let raw = cur.u8()?;
                let code =
                    RejectCode::from_u8(raw).ok_or(WireError::BadRejectCode { code: raw })?;
                Frame::Reject {
                    batch_id,
                    code,
                    retry_after_ms: cur.u32()?,
                }
            }
            TYPE_EPOCH_MARK => Frame::EpochMark { epoch: cur.u64()? },
            TYPE_SNAPSHOT => {
                let epoch = cur.u64()?;
                let watermark = cur.u64()?;
                let above = cur.u32()? as usize;
                if above > MAX_FRAME_LEN / 8 {
                    return Err(WireError::OversizedFrame {
                        len: above * 8,
                        max: MAX_FRAME_LEN,
                    });
                }
                let mut applied_above = Vec::with_capacity(above);
                for _ in 0..above {
                    applied_above.push(cur.u64()?);
                }
                let slots = cur.u32()? as usize;
                if slots > MAX_FRAME_LEN / 20 {
                    return Err(WireError::OversizedFrame {
                        len: slots * 20,
                        max: MAX_FRAME_LEN,
                    });
                }
                let mut out = Vec::with_capacity(slots);
                for _ in 0..slots {
                    out.push((cur.u32()?, cur.u64()?, cur.u64()?));
                }
                Frame::Snapshot(SnapshotState {
                    epoch,
                    watermark,
                    applied_above,
                    slots: out,
                })
            }
            other => return Err(WireError::UnknownFrameType { ty: other }),
        };
        if cur.pos != cur.body.len() {
            return Err(WireError::TrailingBytes {
                extra: cur.body.len() - cur.pos,
            });
        }
        Ok(frame)
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.pos + n > self.body.len() {
            return Err(WireError::TruncatedFrame {
                expected: self.pos + n,
                got: self.body.len(),
            });
        }
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Reads one frame from `r` (blocking until the length prefix arrives).
///
/// Returns `Ok(None)` on clean EOF *between* frames — the peer closed
/// after a complete frame, which is how connections normally end.
///
/// # Errors
///
/// * [`WireError::UnexpectedEof`] on EOF *inside* a frame (a truncated
///   write on the peer's side),
/// * [`WireError::OversizedFrame`] if the length prefix exceeds
///   [`MAX_FRAME_LEN`] (checked before allocating),
/// * any decode error of [`Frame::decode`],
/// * [`WireError::Io`] for transport errors (including read timeouts).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf) {
        Ok(true) => {}
        Ok(false) => return Ok(None),
        Err(FillError::Eof) => return Err(WireError::UnexpectedEof),
        Err(FillError::Io(e)) => return Err(WireError::Io(e.kind())),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return Err(WireError::TruncatedFrame {
            expected: 1,
            got: 0,
        });
    }
    if len > MAX_FRAME_LEN {
        return Err(WireError::OversizedFrame {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len];
    match read_full(r, &mut payload) {
        Ok(true) => {}
        Ok(false) | Err(FillError::Eof) => return Err(WireError::UnexpectedEof),
        Err(FillError::Io(e)) => return Err(WireError::Io(e.kind())),
    }
    Frame::decode(&payload).map(Some)
}

enum FillError {
    Eof,
    Io(io::Error),
}

/// Fills `buf`; `Ok(false)` means clean EOF before the first byte,
/// `Err(Eof)` means EOF after a partial fill.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, FillError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(FillError::Eof),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FillError::Io(e)),
        }
    }
    Ok(true)
}

/// Writes one frame to `w` and flushes.
///
/// # Errors
///
/// Returns [`WireError::Io`] on transport errors (including write
/// timeouts).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    let bytes = frame.encode();
    w.write_all(&bytes).map_err(|e| WireError::Io(e.kind()))?;
    w.flush().map_err(|e| WireError::Io(e.kind()))
}

/// Everything that can go wrong on the wire. Decoding is total: every
/// malformed input maps here, never to a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The length prefix exceeded [`MAX_FRAME_LEN`] (or an embedded
    /// count implied an impossible payload).
    OversizedFrame {
        /// Claimed length.
        len: usize,
        /// The ceiling it violated.
        max: usize,
    },
    /// A frame body ended before its fields did.
    TruncatedFrame {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes it had.
        got: usize,
    },
    /// Bytes remained after the last field of a frame.
    TrailingBytes {
        /// How many.
        extra: usize,
    },
    /// The stream ended inside a frame (truncated write on the peer).
    UnexpectedEof,
    /// An unrecognized frame type byte.
    UnknownFrameType {
        /// The byte.
        ty: u8,
    },
    /// A batch frame with zero rows.
    EmptyBatch {
        /// The offending batch.
        batch_id: u64,
    },
    /// An unrecognized reject code.
    BadRejectCode {
        /// The byte.
        code: u8,
    },
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// Theirs.
        got: u32,
        /// Ours.
        expected: u32,
    },
    /// A transport-level I/O failure (kind only, so the error stays
    /// `Clone + PartialEq` for tests and ledgers).
    Io(io::ErrorKind),
}

impl WireError {
    /// `true` for errors that mean the peer's *stream* is corrupt and
    /// the connection must be dropped (vs. transient I/O).
    #[must_use]
    pub fn is_protocol_violation(&self) -> bool {
        !matches!(self, WireError::Io(_))
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::OversizedFrame { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            WireError::TruncatedFrame { expected, got } => {
                write!(
                    f,
                    "frame body truncated: needed {expected} bytes, had {got}"
                )
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last frame field")
            }
            WireError::UnexpectedEof => write!(f, "stream ended inside a frame"),
            WireError::UnknownFrameType { ty } => write!(f, "unknown frame type {ty:#04x}"),
            WireError::EmptyBatch { batch_id } => {
                write!(f, "batch {batch_id} carries zero rows")
            }
            WireError::BadRejectCode { code } => write!(f, "unknown reject code {code}"),
            WireError::UnsupportedVersion { got, expected } => {
                write!(f, "peer speaks wire version {got}, expected {expected}")
            }
            WireError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: WIRE_VERSION,
            },
            Frame::HelloAck {
                epoch: 3,
                num_paths: 23,
            },
            Frame::Batch(ProbeBatch {
                batch_id: 42,
                epoch: 3,
                rows: vec![ProbeRow::new(0, 12.5), ProbeRow::new(7, -0.0)],
            }),
            Frame::Ack {
                batch_id: 42,
                epoch: 3,
            },
            Frame::Reject {
                batch_id: 43,
                code: RejectCode::QueueFull,
                retry_after_ms: 25,
            },
            Frame::EpochMark { epoch: 4 },
            Frame::Snapshot(SnapshotState {
                epoch: 4,
                watermark: 10,
                applied_above: vec![11, 13],
                slots: vec![(0, 12.5f64.to_bits(), 9), (5, (-1.0f64).to_bits(), 10)],
            }),
        ]
    }

    #[test]
    fn every_frame_round_trips_through_a_stream() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at the end");
    }

    #[test]
    fn negative_zero_and_nan_bits_survive() {
        let rows = vec![
            ProbeRow::new(1, -0.0),
            ProbeRow::new(2, f64::NAN),
            ProbeRow::new(3, f64::INFINITY),
        ];
        let f = Frame::Batch(ProbeBatch {
            batch_id: 1,
            epoch: 0,
            rows: rows.clone(),
        });
        let bytes = f.encode();
        match Frame::decode(&bytes[4..]).unwrap() {
            Frame::Batch(b) => {
                for (a, b) in rows.iter().zip(b.rows.iter()) {
                    assert_eq!(a.value_bits, b.value_bits);
                }
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.push(TYPE_BATCH);
        let mut r = &bytes[..];
        assert_eq!(
            read_frame(&mut r),
            Err(WireError::OversizedFrame {
                len: u32::MAX as usize,
                max: MAX_FRAME_LEN,
            })
        );
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let bytes = 0u32.to_be_bytes();
        let mut r = &bytes[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn mid_frame_eof_is_a_typed_error() {
        let full = Frame::Ack {
            batch_id: 9,
            epoch: 1,
        }
        .encode();
        // Cut inside the length prefix, right after it, and mid-body.
        for cut in [2, 4, full.len() - 1] {
            let mut r = &full[..cut];
            assert_eq!(
                read_frame(&mut r),
                Err(WireError::UnexpectedEof),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn zero_row_batch_is_rejected() {
        let f = Frame::Batch(ProbeBatch {
            batch_id: 7,
            epoch: 0,
            rows: vec![ProbeRow::new(0, 1.0)],
        });
        let mut bytes = f.encode();
        // Patch the row count to zero and drop the row bytes.
        let count_at = 4 + 1 + 8 + 8;
        bytes[count_at..count_at + 4].copy_from_slice(&0u32.to_be_bytes());
        bytes.truncate(count_at + 4);
        let new_len = u32::try_from(bytes.len() - 4).unwrap();
        bytes[0..4].copy_from_slice(&new_len.to_be_bytes());
        let mut r = &bytes[..];
        assert_eq!(
            read_frame(&mut r),
            Err(WireError::EmptyBatch { batch_id: 7 })
        );
    }

    #[test]
    fn unknown_frame_type_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.push(0xEE);
        let mut r = &bytes[..];
        assert_eq!(
            read_frame(&mut r),
            Err(WireError::UnknownFrameType { ty: 0xEE })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Frame::EpochMark { epoch: 1 }.encode();
        bytes.push(0x00);
        let new_len = u32::try_from(bytes.len() - 4).unwrap();
        bytes[0..4].copy_from_slice(&new_len.to_be_bytes());
        let mut r = &bytes[..];
        assert_eq!(
            read_frame(&mut r),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn protocol_violation_classification() {
        assert!(WireError::UnknownFrameType { ty: 0 }.is_protocol_violation());
        assert!(WireError::UnexpectedEof.is_protocol_violation());
        assert!(!WireError::Io(io::ErrorKind::TimedOut).is_protocol_violation());
    }
}
