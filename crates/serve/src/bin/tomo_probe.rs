//! The `tomo-probe` client binary.
//!
//! ```text
//! tomo-probe --addr HOST:PORT [--batches N] [--seed N] [--faults SPEC]
//!            [--topology FILE.cch] [--extra-paths N] [--paths-seed N]
//! ```
//!
//! Streams full-coverage measurement batches to a running `tomo-serve`
//! — for the fig. 1 system by default, or for the same topology the
//! daemon was started with when `--topology`/`--extra-paths`/
//! `--paths-seed` match its flags — optionally injecting wire faults
//! drawn from `--faults` (e.g. `frame=0.2`), and prints the delivery
//! ledger as one JSON object on stdout.

use std::net::SocketAddr;
use std::process::ExitCode;

use tomo_core::fig1::fig1_system;
use tomo_fault::{FaultPlan, FaultSpec};
use tomo_linalg::Vector;
use tomo_serve::{topology, ProbeClient, ProbeRow};

struct Options {
    addr: SocketAddr,
    batches: usize,
    seed: u64,
    faults: Option<FaultSpec>,
    topology: Option<std::path::PathBuf>,
    extra_paths: usize,
    paths_seed: u64,
}

fn parse_options(argv: &[String]) -> Result<Options, String> {
    let mut addr = None;
    let mut batches = 32usize;
    let mut seed = 0u64;
    let mut faults = None;
    let mut topology = None;
    let mut extra_paths = 0usize;
    let mut paths_seed = 42u64;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--addr" => {
                let v = value(arg)?;
                addr = Some(
                    v.parse()
                        .map_err(|_| format!("--addr: bad address {v:?}"))?,
                );
            }
            "--batches" => {
                let v = value(arg)?;
                batches = v.parse().map_err(|_| format!("--batches: {v:?}"))?;
            }
            "--seed" => {
                let v = value(arg)?;
                seed = v.parse().map_err(|_| format!("--seed: {v:?}"))?;
            }
            "--faults" => {
                let v = value(arg)?;
                faults = Some(FaultSpec::parse(&v).map_err(|e| format!("--faults: {e}"))?);
            }
            "--topology" => {
                let v = value(arg)?;
                topology = Some(std::path::PathBuf::from(v));
            }
            "--extra-paths" => {
                let v = value(arg)?;
                extra_paths = v.parse().map_err(|_| format!("--extra-paths: {v:?}"))?;
            }
            "--paths-seed" => {
                let v = value(arg)?;
                paths_seed = v.parse().map_err(|_| format!("--paths-seed: {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Options {
        addr: addr.ok_or("--addr is required")?,
        batches,
        seed,
        faults,
        topology,
        extra_paths,
        paths_seed,
    })
}

fn run(options: &Options) -> Result<(), String> {
    let system = match &options.topology {
        Some(path) => topology::load_system(path, options.extra_paths, options.paths_seed)
            .map_err(|e| format!("--topology: {e}"))?,
        None => fig1_system().map_err(|e| format!("fig1 system: {e}"))?,
    };
    let num_paths = system.num_paths();
    let x = Vector::filled(system.num_links(), 10.0);
    let y = system.measure(&x).map_err(|e| format!("measure: {e}"))?;

    let batches: Vec<Vec<ProbeRow>> = (0..options.batches)
        .map(|b| {
            (0..num_paths)
                .map(|i| {
                    ProbeRow::new(
                        u32::try_from(i).expect("path fits u32"),
                        y[i] + b as f64 * 1e-9,
                    )
                })
                .collect()
        })
        .collect();

    let mut client = ProbeClient::new(options.addr, options.seed);
    let mut trial = options
        .faults
        .as_ref()
        .map(|spec| FaultPlan::new(*spec, options.seed).trial(0));
    let outcome = client
        .stream(batches, trial.as_mut())
        .map_err(|e| format!("stream failed: {e}"))?;

    let injected = outcome.injected.frame_total();
    println!(
        "{{\"acked\": {}, \"reconnects\": {}, \"queue_full_rejects\": {}, \
         \"stale_epoch_rejects\": {}, \"server_quarantined\": {}, \
         \"injected\": {{\"truncate\": {}, \"garble\": {}, \"duplicate\": {}, \
         \"reorder\": {}, \"total\": {}}}, \"handled\": {}, \"quarantined\": {}, \
         \"balanced\": {}}}",
        outcome.acked,
        outcome.reconnects,
        outcome.queue_full_rejects,
        outcome.stale_epoch_rejects,
        outcome.server_quarantined,
        outcome.injected.frame_truncate,
        outcome.injected.frame_garble,
        outcome.injected.frame_duplicate,
        outcome.injected.frame_reorder,
        injected,
        outcome.handled,
        outcome.quarantined,
        injected == outcome.handled + outcome.quarantined,
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_options(&argv).and_then(|o| run(&o)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tomo-probe: {msg}");
            ExitCode::FAILURE
        }
    }
}
