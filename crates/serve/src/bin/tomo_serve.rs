//! The `tomo-serve` daemon binary.
//!
//! ```text
//! tomo-serve [--ingest-port N] [--http-port N] [--journal PATH]
//!            [--journal-sync] [--queue-capacity N] [--shards N]
//!            [--snapshot-every N] [--slo-ms F] [--max-secs F]
//!            [--topology FILE.cch] [--extra-paths N] [--paths-seed N]
//! tomo-serve bench [--batches N] [--slo-ms F]
//! ```
//!
//! The daemon prints its bound addresses (`ingest_addr=` / `http_addr=`)
//! on stdout so scripts using ephemeral ports can find it, then blocks
//! until `POST /shutdown` (or `--max-secs` elapses). Without
//! `--topology` it serves the fig. 1 toy system; with it, any
//! Rocketfuel `.cch` / edge-list topology (one one-hop path per link
//! plus `--extra-paths` seeded multi-hop paths). The `bench` subcommand
//! runs the ingest/query workload in-process and prints the
//! `BENCH_serve.json` payload on stdout.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use tomo_core::fig1::fig1_system;
use tomo_detect::ConsistencyDetector;
use tomo_serve::bench::{self, BenchConfig};
use tomo_serve::{topology, ServeConfig, Server};

struct Options {
    config: ServeConfig,
    max_secs: Option<f64>,
    topology: Option<std::path::PathBuf>,
    extra_paths: usize,
    paths_seed: u64,
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> Result<T, String> {
    let value = args
        .next()
        .ok_or_else(|| format!("{flag} requires a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn parse_options(argv: &[String]) -> Result<Options, String> {
    let mut options = Options {
        config: ServeConfig::default(),
        max_secs: None,
        topology: None,
        extra_paths: 0,
        paths_seed: 42,
    };
    let mut args = argv.iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ingest-port" => options.config.ingest_port = parse_flag(&mut args, arg)?,
            "--http-port" => options.config.http_port = parse_flag(&mut args, arg)?,
            "--journal" => {
                let path: String = parse_flag(&mut args, arg)?;
                options.config.journal_path = Some(path.into());
            }
            "--journal-sync" => options.config.journal_sync = true,
            "--queue-capacity" => options.config.queue_capacity = parse_flag(&mut args, arg)?,
            "--shards" => options.config.ingest_shards = parse_flag(&mut args, arg)?,
            "--snapshot-every" => options.config.snapshot_every = parse_flag(&mut args, arg)?,
            "--topology" => {
                let path: String = parse_flag(&mut args, arg)?;
                options.topology = Some(path.into());
            }
            "--extra-paths" => options.extra_paths = parse_flag(&mut args, arg)?,
            "--paths-seed" => options.paths_seed = parse_flag(&mut args, arg)?,
            "--slo-ms" => options.config.slo_ms = parse_flag(&mut args, arg)?,
            "--max-secs" => options.max_secs = Some(parse_flag(&mut args, arg)?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

fn run_bench(argv: &[String]) -> Result<(), String> {
    let mut config = BenchConfig::default();
    let mut args = argv.iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batches" => config.batches = parse_flag(&mut args, arg)?,
            "--slo-ms" => config.slo_ms = parse_flag(&mut args, arg)?,
            other => return Err(format!("unknown bench flag {other:?}")),
        }
    }
    let report = bench::run(&config);
    println!("{}", report.to_json());
    Ok(())
}

fn run_daemon(options: Options) -> Result<(), String> {
    let system = match &options.topology {
        Some(path) => Arc::new(
            topology::load_system(path, options.extra_paths, options.paths_seed)
                .map_err(|e| format!("--topology: {e}"))?,
        ),
        None => Arc::new(fig1_system().map_err(|e| format!("fig1 system: {e}"))?),
    };
    println!(
        "system links={} paths={}",
        system.num_links(),
        system.num_paths()
    );
    let mut server = Server::start(system, ConsistencyDetector::recommended(), options.config)
        .map_err(|e| format!("daemon start failed: {e}"))?;
    println!("ingest_addr={}", server.ingest_addr());
    println!("http_addr={}", server.http_addr());
    println!("epoch={}", server.epoch());
    let _ = std::io::stdout().flush();
    let timeout = options
        .max_secs
        .map_or(Duration::from_secs(u64::MAX / 4), Duration::from_secs_f64);
    let requested = server.wait_for_shutdown_request(timeout);
    server.shutdown();
    let stats = server.engine_stats();
    println!(
        "shutdown reason={} applied={} deduped={} reordered={} quarantined={}",
        if requested { "requested" } else { "max-secs" },
        stats.applied,
        stats.deduped,
        stats.reordered,
        stats.quarantined,
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = if argv.first().map(String::as_str) == Some("bench") {
        run_bench(&argv[1..])
    } else {
        parse_options(&argv).and_then(run_daemon)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tomo-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
