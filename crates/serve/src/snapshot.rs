//! The lock-free query path: immutable engine snapshots behind a
//! double-buffered publish cell.
//!
//! The daemon used to answer `/state`, `/verdict`, `/stats`, and
//! in-process queries by locking the same mutex the apply worker mutates
//! the engine under — every query contended with ingest. This module
//! replaces that lock with an **epoch-versioned snapshot**: after a
//! drain burst the apply worker freezes the engine's observable state
//! into an immutable [`EngineSnapshot`] and publishes it through a
//! [`SnapshotStore`]; readers clone an `Arc` and never touch the engine
//! again.
//!
//! **Why not `AtomicPtr`/arc-swap?** The workspace is
//! `forbid(unsafe_code)` throughout and `std` has no safe atomic
//! `Arc` swap, so the store approximates one with two slots and an
//! atomic index: the publisher only ever writes the *inactive* slot and
//! then flips the index with `Release` ordering; readers `Acquire`-load
//! the index and briefly lock that slot to clone the `Arc` out. The
//! publisher and the readers therefore never contend on the same mutex
//! (the publisher holds only the slot readers are *not* directed at),
//! and a torn read is impossible by construction — the `Arc` swaps
//! whole, so every field a reader sees (estimate, verdict, stats,
//! watermark) comes from the same publish.
//!
//! **Monotonic versions.** Each slot's stored version only increases,
//! and a reader reaches a slot at or after the index flip that exposed
//! it. One race needs explicit handling: a reader that loads the index
//! and is then preempted long enough for the publisher to flip *and*
//! start writing the next version into the reader's (now inactive)
//! slot would clone a not-yet-published snapshot — and its next load,
//! following the flipped index, would observe an older version.
//! [`SnapshotStore::load`] therefore re-reads the index after cloning
//! and retries if it changed; the slot mutex it just released gives the
//! re-read a happens-before edge to the flip, so a stale clone is
//! always detected. With that retry, the versions any single reader
//! observes never go backwards — the property the snapshot proptest
//! hammers.
//!
//! **Lazy solves.** The snapshot carries the covered slot values, not a
//! precomputed estimate: the first reader that asks for
//! [`EngineSnapshot::answer`] runs the solve once into a [`OnceLock`]
//! and every later reader shares it. Ingest therefore never pays for a
//! solve, and a query burst between publishes costs one solve total —
//! the same amortization the engine's internal cache gave the locked
//! path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use tomo_core::TomographySystem;
use tomo_detect::ConsistencyDetector;

use crate::engine::{solve_answer, EngineStats, QueryAnswer, QueryError};

/// An immutable, internally consistent view of the engine, frozen by
/// the apply worker at publish time.
pub struct EngineSnapshot {
    /// Publish counter: strictly increasing across publishes.
    version: u64,
    /// Session epoch at publish time.
    epoch: u64,
    /// Every batch id below this had been applied.
    watermark: u64,
    /// Total paths in the routing matrix.
    num_paths: usize,
    /// Paths holding a measurement, ascending.
    covered: Vec<usize>,
    /// `f64::to_bits` slot values, parallel to `covered`.
    values_bits: Vec<u64>,
    /// Engine counters at publish time.
    stats: EngineStats,
    /// FNV-1a over `(epoch, watermark, covered, values_bits, stats)`,
    /// written at publish time so readers can verify the fields they
    /// see came from one publish (the consistency proptest's oracle).
    digest: u64,
    system: Arc<TomographySystem>,
    detector: ConsistencyDetector,
    /// The solve, run at most once per snapshot by the first reader
    /// that asks.
    answer: OnceLock<Result<QueryAnswer, QueryError>>,
}

impl EngineSnapshot {
    /// Freezes one published view. Called by the apply worker (and the
    /// engine's `published_view`); readers only consume.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // freezes every published engine field at once
    pub fn new(
        version: u64,
        epoch: u64,
        watermark: u64,
        num_paths: usize,
        covered: Vec<usize>,
        values_bits: Vec<u64>,
        stats: EngineStats,
        system: Arc<TomographySystem>,
        detector: ConsistencyDetector,
    ) -> Self {
        let digest = digest_fields(epoch, watermark, &covered, &values_bits, &stats);
        EngineSnapshot {
            version,
            epoch,
            watermark,
            num_paths,
            covered,
            values_bits,
            stats,
            digest,
            system,
            detector,
            answer: OnceLock::new(),
        }
    }

    /// Publish counter (strictly increasing across publishes).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Session epoch at publish time.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applied-batch watermark at publish time.
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Paths holding a measurement at publish time.
    #[must_use]
    pub fn coverage(&self) -> usize {
        self.covered.len()
    }

    /// Total paths in the routing matrix.
    #[must_use]
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// Engine counters at publish time.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The system this snapshot estimates.
    #[must_use]
    pub fn system(&self) -> &TomographySystem {
        &self.system
    }

    /// The estimate/verdict answer for this snapshot's slot state,
    /// solved at most once (the first caller pays, everyone shares).
    ///
    /// # Errors
    ///
    /// [`QueryError::NoCoverage`] before the first measurement;
    /// [`QueryError::Core`] if the solve fails.
    pub fn answer(&self) -> Result<QueryAnswer, QueryError> {
        if self.covered.is_empty() {
            return Err(QueryError::NoCoverage);
        }
        self.answer
            .get_or_init(|| {
                let values: Vec<f64> = self
                    .values_bits
                    .iter()
                    .map(|&b| f64::from_bits(b))
                    .collect();
                solve_answer(
                    &self.system,
                    self.detector,
                    &self.covered,
                    &values,
                    self.epoch,
                    self.num_paths,
                )
            })
            .clone()
    }

    /// Verifies the snapshot's fields still hash to the digest written
    /// at publish time, and that a solved answer (if any) agrees with
    /// them. A torn read — fields mixed across two publishes — would
    /// fail this check; the consistency proptest asserts it never does.
    #[must_use]
    pub fn self_check(&self) -> bool {
        let fields_ok = digest_fields(
            self.epoch,
            self.watermark,
            &self.covered,
            &self.values_bits,
            &self.stats,
        ) == self.digest;
        let answer_ok = match self.answer.get() {
            Some(Ok(a)) => a.epoch == self.epoch && a.coverage == self.covered.len(),
            Some(Err(_)) | None => true,
        };
        fields_ok && answer_ok
    }
}

impl std::fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("version", &self.version)
            .field("epoch", &self.epoch)
            .field("watermark", &self.watermark)
            .field("coverage", &self.covered.len())
            .field("num_paths", &self.num_paths)
            .finish_non_exhaustive()
    }
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn digest_fields(
    epoch: u64,
    watermark: u64,
    covered: &[usize],
    values_bits: &[u64],
    stats: &EngineStats,
) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    fnv1a(&mut h, &epoch.to_le_bytes());
    fnv1a(&mut h, &watermark.to_le_bytes());
    for &c in covered {
        fnv1a(&mut h, &(c as u64).to_le_bytes());
    }
    for &v in values_bits {
        fnv1a(&mut h, &v.to_le_bytes());
    }
    for s in [
        stats.applied,
        stats.deduped,
        stats.reordered,
        stats.quarantined,
        stats.stale_epoch,
    ] {
        fnv1a(&mut h, &s.to_le_bytes());
    }
    h
}

/// The double-buffered publish cell: single publisher (the apply
/// worker), any number of readers, no shared mutex between them.
pub struct SnapshotStore {
    slots: [Mutex<Arc<EngineSnapshot>>; 2],
    /// Index of the slot readers should load (0 or 1).
    active: AtomicUsize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SnapshotStore {
    /// Creates a store whose readers see `initial` until the first
    /// publish.
    #[must_use]
    pub fn new(initial: EngineSnapshot) -> Self {
        let initial = Arc::new(initial);
        SnapshotStore {
            slots: [Mutex::new(Arc::clone(&initial)), Mutex::new(initial)],
            active: AtomicUsize::new(0),
        }
    }

    /// Publishes `snapshot`: writes the inactive slot, then flips the
    /// index with `Release` so readers that `Acquire` the new index see
    /// the fully written slot. Single-publisher only (the apply worker);
    /// two concurrent publishers could write the same slot.
    pub fn publish(&self, snapshot: EngineSnapshot) {
        let next = 1 - self.active.load(Ordering::Relaxed);
        *lock(&self.slots[next]) = Arc::new(snapshot);
        self.active.store(next, Ordering::Release);
    }

    /// The latest published snapshot. Lock-free with respect to the
    /// publisher: the brief slot lock is only ever contended by other
    /// readers cloning the same `Arc`, never by ingest.
    ///
    /// The index is re-read after the clone and the load retried if it
    /// changed: a reader preempted between its index load and the slot
    /// lock can otherwise clone a snapshot the publisher has written
    /// into the (now inactive) slot but not yet flipped to — returning
    /// it would run ahead of the publish, and the reader's *next* load,
    /// following the flip, would see versions go backwards. The slot
    /// unlock the publisher did before our lock orders its prior flip
    /// before the re-read, so the stale case is always caught; a clean
    /// pass with an unchanged index means the clone was published.
    #[must_use]
    pub fn load(&self) -> Arc<EngineSnapshot> {
        loop {
            let idx = self.active.load(Ordering::Acquire);
            let snapshot = Arc::clone(&lock(&self.slots[idx]));
            if self.active.load(Ordering::Acquire) == idx {
                return snapshot;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::fig1::fig1_system;

    fn snap(version: u64, epoch: u64) -> EngineSnapshot {
        let system = Arc::new(fig1_system().expect("fig1 builds"));
        let n = system.num_paths();
        EngineSnapshot::new(
            version,
            epoch,
            0,
            n,
            Vec::new(),
            Vec::new(),
            EngineStats::default(),
            system,
            ConsistencyDetector::recommended(),
        )
    }

    #[test]
    fn load_returns_latest_publish() {
        let store = SnapshotStore::new(snap(0, 1));
        assert_eq!(store.load().version(), 0);
        store.publish(snap(1, 1));
        assert_eq!(store.load().version(), 1);
        store.publish(snap(2, 1));
        store.publish(snap(3, 1));
        assert_eq!(store.load().version(), 3);
    }

    #[test]
    fn old_handles_stay_valid_after_publishes() {
        let store = SnapshotStore::new(snap(0, 1));
        let old = store.load();
        for v in 1..10 {
            store.publish(snap(v, 1));
        }
        // The reader's Arc pins the old snapshot; it is unchanged.
        assert_eq!(old.version(), 0);
        assert!(old.self_check());
        assert_eq!(store.load().version(), 9);
    }

    #[test]
    fn empty_snapshot_answers_no_coverage() {
        let s = snap(0, 1);
        assert!(matches!(s.answer(), Err(QueryError::NoCoverage)));
        assert!(s.self_check());
    }

    #[test]
    fn full_coverage_snapshot_solves_once_and_checks() {
        let system = Arc::new(fig1_system().expect("fig1 builds"));
        let n = system.num_paths();
        let x = tomo_linalg::Vector::filled(system.num_links(), 10.0);
        let y = system.measure(&x).expect("measure");
        let covered: Vec<usize> = (0..n).collect();
        let bits: Vec<u64> = (0..n).map(|i| y[i].to_bits()).collect();
        let s = EngineSnapshot::new(
            5,
            2,
            1,
            n,
            covered,
            bits,
            EngineStats {
                applied: 1,
                ..EngineStats::default()
            },
            system,
            ConsistencyDetector::recommended(),
        );
        let a1 = s.answer().expect("solves");
        let a2 = s.answer().expect("cached");
        assert_eq!(a1, a2);
        assert_eq!(a1.epoch, 2);
        assert_eq!(a1.coverage, n);
        assert!(!a1.verdict.detected);
        assert!(s.self_check());
    }

    #[test]
    fn readers_see_monotonic_versions_under_publish_churn() {
        let store = Arc::new(SnapshotStore::new(snap(0, 1)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let s = store.load();
                        assert!(s.version() >= last, "version went backwards");
                        assert!(s.self_check());
                        last = s.version();
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        for v in 1..=500 {
            store.publish(snap(v, 1));
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            assert!(r.join().expect("reader joins") > 0);
        }
        assert_eq!(store.load().version(), 500);
    }
}
