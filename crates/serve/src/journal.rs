//! The crash-safe session journal.
//!
//! An append-only file of ordinary wire frames ([`crate::wire::Frame`]):
//! an `EpochMark` at every daemon start, each applied `Batch` in apply
//! order, and a full-state `Snapshot` every `snapshot_every` batches.
//! Nothing is ever rewritten in place, so a crash at any byte leaves a
//! valid prefix — replay simply stops at the first torn frame.
//!
//! **Determinism argument.** The engine's slot table is a pure function
//! of the applied-batch *set* (last-writer-wins by batch id, see
//! [`crate::engine`]). The journal records exactly that set (plus a
//! snapshot prefix-sum), so `replay(journal)` reconstructs the table
//! bit-for-bit: restart-and-replay, then re-ingest whatever the client
//! resends, lands on the same slots — and therefore the same estimate
//! bits — as a run that was never interrupted.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use tomo_obs::LazyCounter;

use crate::wire::{read_frame, write_frame, Frame, WireError};

static APPENDS: LazyCounter = LazyCounter::new("serve.journal.appends");
static SNAPSHOTS: LazyCounter = LazyCounter::new("serve.journal.snapshots");
static REPLAYED: LazyCounter = LazyCounter::new("serve.journal.replayed_frames");
static TORN: LazyCounter = LazyCounter::new("serve.journal.torn_tail");

/// What a journal replay recovered.
#[derive(Debug, Default)]
pub struct Replay {
    /// The last epoch marked in the journal (0 if none).
    pub last_epoch: u64,
    /// The latest snapshot, if any, and the batches applied after it, in
    /// apply order. With no snapshot, `batches` is the whole history.
    pub snapshot: Option<crate::wire::SnapshotState>,
    /// Batches to re-apply on top of `snapshot` (or from scratch).
    pub batches: Vec<crate::wire::ProbeBatch>,
    /// Frames recovered before the tail was torn (diagnostics).
    pub frames_read: u64,
    /// `true` when the file ended inside a frame — the torn tail of a
    /// crash mid-append. The valid prefix is still used.
    pub torn_tail: bool,
}

/// An open, append-mode journal.
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
    appended_since_snapshot: u64,
    snapshot_every: u64,
    sync_data: bool,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    /// A snapshot frame is written every `snapshot_every` batch appends
    /// (0 disables snapshots).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn open(path: &Path, snapshot_every: u64) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            appended_since_snapshot: 0,
            snapshot_every,
            sync_data: false,
        })
    }

    /// Enables `sync_data` after every append, extending durability from
    /// process crashes to OS crashes and power loss, at the cost of one
    /// fsync per acked batch.
    #[must_use]
    pub fn with_sync(mut self, sync_data: bool) -> Journal {
        self.sync_data = sync_data;
        self
    }

    /// The journal's location.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one frame and flushes it to the OS page cache — a batch
    /// is only acked after its journal append returned, so an acked
    /// batch survives a *process* crash. Surviving an OS crash or power
    /// loss additionally requires [`Journal::with_sync`], which fsyncs
    /// every append.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the daemon treats a journal
    /// write failure as fatal for the batch (the client retries).
    pub fn append(&mut self, frame: &Frame) -> std::io::Result<()> {
        write_frame(&mut self.writer, frame).map_err(wire_to_io)?;
        self.writer.flush()?;
        if self.sync_data {
            self.writer.get_ref().sync_data()?;
        }
        APPENDS.inc();
        if matches!(frame, Frame::Batch(_)) {
            self.appended_since_snapshot += 1;
        }
        Ok(())
    }

    /// `true` when the snapshot cadence says it is time to checkpoint.
    #[must_use]
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0 && self.appended_since_snapshot >= self.snapshot_every
    }

    /// Appends a snapshot frame and resets the cadence counter.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append_snapshot(&mut self, snap: crate::wire::SnapshotState) -> std::io::Result<()> {
        self.append(&Frame::Snapshot(snap))?;
        SNAPSHOTS.inc();
        self.appended_since_snapshot = 0;
        Ok(())
    }

    /// Reads the journal at `path` back into a [`Replay`]. A missing
    /// file is an empty history, and a torn tail (crash mid-append) is
    /// truncated at the last whole frame, not an error.
    ///
    /// # Errors
    ///
    /// Returns I/O errors other than "not found".
    pub fn replay(path: &Path) -> std::io::Result<Replay> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(e),
        };
        let mut reader = BufReader::new(file);
        let mut replay = Replay::default();
        loop {
            match read_frame(&mut reader) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    replay.frames_read += 1;
                    REPLAYED.inc();
                    match frame {
                        Frame::EpochMark { epoch } => replay.last_epoch = epoch,
                        Frame::Snapshot(snap) => {
                            replay.last_epoch = replay.last_epoch.max(snap.epoch);
                            replay.snapshot = Some(snap);
                            replay.batches.clear();
                        }
                        Frame::Batch(batch) => replay.batches.push(batch),
                        // Other frame kinds never reach the journal;
                        // tolerate them for forward compatibility.
                        _ => {}
                    }
                }
                Err(WireError::UnexpectedEof) => {
                    // Torn tail from a crash mid-append: keep the prefix.
                    replay.torn_tail = true;
                    TORN.inc();
                    break;
                }
                Err(e) => return Err(wire_to_io(e)),
            }
        }
        Ok(replay)
    }
}

fn wire_to_io(e: WireError) -> std::io::Error {
    match e {
        WireError::Io(kind) => std::io::Error::new(kind, "journal transport error"),
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{ProbeBatch, ProbeRow, SnapshotState};

    fn batch(id: u64) -> ProbeBatch {
        ProbeBatch {
            batch_id: id,
            epoch: 1,
            rows: vec![ProbeRow::new(0, id as f64)],
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "tomo-serve-journal-{}-{name}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let r = Journal::replay(Path::new("/nonexistent/journal.bin")).unwrap();
        assert_eq!(r.frames_read, 0);
        assert!(r.snapshot.is_none() && r.batches.is_empty());
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("roundtrip");
        {
            let mut j = Journal::open(&path, 0).unwrap();
            j.append(&Frame::EpochMark { epoch: 1 }).unwrap();
            j.append(&Frame::Batch(batch(0))).unwrap();
            j.append(&Frame::Batch(batch(1))).unwrap();
        }
        let r = Journal::replay(&path).unwrap();
        assert_eq!(r.last_epoch, 1);
        assert_eq!(r.batches.len(), 2);
        assert!(!r.torn_tail);
        // Re-open appends, never truncates.
        {
            let mut j = Journal::open(&path, 0).unwrap();
            j.append(&Frame::EpochMark { epoch: 2 }).unwrap();
            j.append(&Frame::Batch(batch(2))).unwrap();
        }
        let r = Journal::replay(&path).unwrap();
        assert_eq!(r.last_epoch, 2);
        assert_eq!(r.batches.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn synced_appends_round_trip() {
        let path = temp_path("synced");
        {
            let mut j = Journal::open(&path, 0).unwrap().with_sync(true);
            j.append(&Frame::EpochMark { epoch: 1 }).unwrap();
            j.append(&Frame::Batch(batch(0))).unwrap();
        }
        let r = Journal::replay(&path).unwrap();
        assert_eq!(r.last_epoch, 1);
        assert_eq!(r.batches.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_resets_the_batch_suffix() {
        let path = temp_path("snapshot");
        {
            let mut j = Journal::open(&path, 2).unwrap();
            j.append(&Frame::EpochMark { epoch: 1 }).unwrap();
            j.append(&Frame::Batch(batch(0))).unwrap();
            assert!(!j.snapshot_due());
            j.append(&Frame::Batch(batch(1))).unwrap();
            assert!(j.snapshot_due());
            j.append_snapshot(SnapshotState {
                epoch: 1,
                watermark: 2,
                applied_above: vec![],
                slots: vec![(0, 1.0f64.to_bits(), 1)],
            })
            .unwrap();
            assert!(!j.snapshot_due());
            j.append(&Frame::Batch(batch(2))).unwrap();
        }
        let r = Journal::replay(&path).unwrap();
        let snap = r.snapshot.expect("snapshot recovered");
        assert_eq!(snap.watermark, 2);
        assert_eq!(r.batches.len(), 1, "only the post-snapshot batch");
        assert_eq!(r.batches[0].batch_id, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let path = temp_path("torn");
        {
            let mut j = Journal::open(&path, 0).unwrap();
            j.append(&Frame::EpochMark { epoch: 1 }).unwrap();
            j.append(&Frame::Batch(batch(0))).unwrap();
            j.append(&Frame::Batch(batch(1))).unwrap();
        }
        // Tear the last frame mid-way, as a crash mid-append would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let r = Journal::replay(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.batches.len(), 1, "torn batch dropped, prefix kept");
        assert_eq!(r.batches[0].batch_id, 0);
        let _ = std::fs::remove_file(&path);
    }
}
