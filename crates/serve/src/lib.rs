//! `tomo-serve`: a fault-tolerant streaming tomography daemon.
//!
//! The offline pipeline (`tomo-sim`) answers "what would the detector
//! say about this trial"; this crate answers it *continuously*, for a
//! stream of probe measurements arriving over the network, with bounded
//! query latency and crash-safe state:
//!
//! * [`wire`] — the zero-dependency length-prefixed TCP protocol
//!   (`len:u32 | type:u8 | body`), with typed errors for every
//!   malformed-input shape an adversarial peer can produce.
//! * [`queue`] — the bounded ingest queue; at capacity the daemon says
//!   `Reject(QueueFull)` with a retry hint instead of buffering
//!   without bound.
//! * [`engine`] — the online estimator state: last-writer-wins slot
//!   table over PR 7's incremental solver, dedup watermark, quarantine
//!   of non-finite or out-of-range rows.
//! * [`journal`] — append-only crash-safe log of applied batches with
//!   periodic snapshots; journal-before-ack makes acked data durable.
//! * [`server`] — the daemon proper: ingest acceptor with per-frame
//!   deadlines, single apply worker, HTTP/1.1 query front
//!   (`/state`, `/verdict`, `/stats`, `/healthz`, `/readyz`).
//! * [`client`] — the `tomo-probe` side: lockstep delivery with
//!   jittered exponential backoff and deliberate wire-fault injection
//!   for chaos runs.
//! * [`bench`] — the ingest-throughput / query-latency workload behind
//!   `BENCH_serve.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod engine;
pub mod journal;
pub mod queue;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, ProbeClient, StreamOutcome};
pub use engine::{ApplyOutcome, BatchFault, Engine, EngineStats, QueryAnswer, QueryError};
pub use journal::{Journal, Replay};
pub use queue::{BoundedQueue, QueueFull};
pub use server::{IngestCounters, ServeConfig, Server};
pub use wire::{
    read_frame, write_frame, Frame, ProbeBatch, ProbeRow, RejectCode, SnapshotState, WireError,
    MAX_FRAME_LEN, WIRE_VERSION,
};
