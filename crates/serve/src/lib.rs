//! `tomo-serve`: a fault-tolerant streaming tomography daemon.
//!
//! The offline pipeline (`tomo-sim`) answers "what would the detector
//! say about this trial"; this crate answers it *continuously*, for a
//! stream of probe measurements arriving over the network, with bounded
//! query latency and crash-safe state:
//!
//! * [`wire`] — the zero-dependency length-prefixed TCP protocol
//!   (`len:u32 | type:u8 | body`), with typed errors for every
//!   malformed-input shape an adversarial peer can produce.
//! * [`queue`] — the bounded ingest queues: the single-lane
//!   [`queue::BoundedQueue`] and the per-path-group
//!   [`queue::ShardedQueue`] drained in deterministic round-robin; at
//!   capacity the daemon says `Reject(QueueFull)` with an adaptive
//!   retry hint instead of buffering without bound.
//! * [`engine`] — the online estimator state: last-writer-wins slot
//!   table over PR 7's incremental solver, dedup watermark, quarantine
//!   of non-finite or out-of-range rows.
//! * [`snapshot`] — the lock-free query path: immutable
//!   [`snapshot::EngineSnapshot`]s published through a double-buffered
//!   [`snapshot::SnapshotStore`], so queries never contend with ingest.
//! * [`topology`] — builds the daemon's tomography system from a
//!   Rocketfuel `.cch` / edge-list file (`tomo-serve --topology`).
//! * [`journal`] — append-only crash-safe log of applied batches with
//!   periodic snapshots; journal-before-ack makes acked data durable.
//! * [`server`] — the daemon proper: ingest acceptor with per-frame
//!   deadlines, single apply worker, HTTP/1.1 query front
//!   (`/state`, `/verdict`, `/stats`, `/healthz`, `/readyz`).
//! * [`client`] — the `tomo-probe` side: lockstep delivery with
//!   jittered exponential backoff and deliberate wire-fault injection
//!   for chaos runs.
//! * [`bench`] — the ingest-throughput / query-latency workload behind
//!   `BENCH_serve.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod engine;
pub mod journal;
pub mod queue;
pub mod server;
pub mod snapshot;
pub mod topology;
pub mod wire;

pub use client::{ClientConfig, ClientError, ProbeClient, StreamOutcome};
pub use engine::{ApplyOutcome, BatchFault, Engine, EngineStats, QueryAnswer, QueryError};
pub use journal::{Journal, Replay};
pub use queue::{BoundedQueue, QueueFull, ShardStats, ShardedQueue};
pub use server::{IngestCounters, ServeConfig, Server};
pub use snapshot::{EngineSnapshot, SnapshotStore};
pub use topology::{load_system, TopologyError};
pub use wire::{
    read_frame, write_frame, Frame, ProbeBatch, ProbeRow, RejectCode, SnapshotState, WireError,
    MAX_FRAME_LEN, WIRE_VERSION,
};
