//! Builds the daemon's tomography system from a topology file.
//!
//! `tomo-serve --topology <file>` serves a Rocketfuel ISP map (or any
//! edge list) instead of the fig. 1 toy system: the file is parsed with
//! the PR 6 Rocketfuel parsers, every node becomes a monitor, every
//! link gets a one-hop measurement path (which guarantees the routing
//! matrix has full column rank, i.e. the system is identifiable), and
//! `--extra-paths` adds seeded multi-hop shortest paths between random
//! node pairs so the daemon also exercises the overlapping-path solve
//! the `run scale` sweep measures.
//!
//! File format is chosen by extension: `.cch` parses as Rocketfuel CCH,
//! anything else as a plain `a b` edge list.

use std::path::Path as FsPath;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tomo_core::{CoreError, TomographySystem};
use tomo_graph::rocketfuel::{from_cch_file, from_edge_list_file};
use tomo_graph::shortest::shortest_path;
use tomo_graph::{Graph, GraphError, NodeId, Path};

/// Why a topology file could not be turned into a servable system.
#[derive(Debug)]
pub enum TopologyError {
    /// The file failed to parse as a graph.
    Graph(GraphError),
    /// The parsed graph does not form a valid measurement system.
    Core(CoreError),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Graph(e) => write!(f, "topology parse failed: {e}"),
            TopologyError::Core(e) => write!(f, "topology is not servable: {e}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<GraphError> for TopologyError {
    fn from(e: GraphError) -> Self {
        TopologyError::Graph(e)
    }
}

impl From<CoreError> for TopologyError {
    fn from(e: CoreError) -> Self {
        TopologyError::Core(e)
    }
}

/// Loads `path` and builds the system the daemon will serve: all nodes
/// monitored, one one-hop path per link, plus up to `extra_paths`
/// multi-hop shortest paths sampled with `paths_seed` (deterministic —
/// the probe side builds the identical system from the same flags).
///
/// # Errors
///
/// [`TopologyError::Graph`] when the file doesn't parse,
/// [`TopologyError::Core`] when the resulting system is rejected (e.g.
/// a graph with fewer than two nodes).
pub fn load_system(
    path: &FsPath,
    extra_paths: usize,
    paths_seed: u64,
) -> Result<TomographySystem, TopologyError> {
    let graph = if path.extension().is_some_and(|e| e == "cch") {
        from_cch_file(path)?
    } else {
        from_edge_list_file(path)?
    };
    let monitors: Vec<NodeId> = graph.nodes().collect();
    let mut paths = one_hop_paths(&graph)?;
    paths.extend(sample_extra_paths(
        &graph,
        extra_paths,
        &mut ChaCha8Rng::seed_from_u64(paths_seed),
    )?);
    Ok(TomographySystem::new(graph, monitors, paths)?)
}

/// One measurement path per link — the identity rows that make any
/// topology identifiable.
fn one_hop_paths(graph: &Graph) -> Result<Vec<Path>, GraphError> {
    graph
        .links()
        .map(|l| {
            let (a, b) = graph.endpoints(l)?;
            Path::from_nodes(graph, &[a, b])
        })
        .collect()
}

/// Up to `extra` multi-hop shortest paths between seeded random node
/// pairs (a bounded number of attempts, so the count can fall short on
/// tiny graphs).
fn sample_extra_paths(
    graph: &Graph,
    extra: usize,
    rng: &mut ChaCha8Rng,
) -> Result<Vec<Path>, GraphError> {
    let n = graph.num_nodes();
    if extra == 0 || n < 2 {
        // No pair to sample. A parsed-but-degenerate graph (zero or one
        // node) falls through to `TomographySystem::new`, which rejects
        // it with a typed `TopologyError::Core` — sampling here would
        // panic on an empty `gen_range`.
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(extra);
    let mut guard = 0;
    while out.len() < extra && guard < extra * 20 {
        guard += 1;
        let u = NodeId(rng.gen_range(0..n));
        let v = NodeId(rng.gen_range(0..n));
        if u == v {
            continue;
        }
        if let Some(p) = shortest_path(graph, u, v)? {
            if p.num_links() > 1 {
                out.push(p);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/as65530.cch")
    }

    #[test]
    fn loads_the_rocketfuel_fixture_with_one_hop_paths() {
        let system = load_system(&fixture(), 0, 42).expect("fixture loads");
        assert!(system.num_links() > 0);
        assert_eq!(
            system.num_paths(),
            system.num_links(),
            "one path per link with no extras"
        );
    }

    #[test]
    fn extra_paths_are_deterministic_per_seed() {
        let a = load_system(&fixture(), 8, 42).expect("loads");
        let b = load_system(&fixture(), 8, 42).expect("loads");
        assert_eq!(a.num_paths(), b.num_paths());
        assert!(a.num_paths() > a.num_links(), "extras were added");
        // The sampled paths cover the same rows: identical measurements
        // of the same ground truth agree bit-for-bit.
        let x = tomo_linalg::Vector::filled(a.num_links(), 3.0);
        let ya = a.measure(&x).expect("measure");
        let yb = b.measure(&x).expect("measure");
        for i in 0..a.num_paths() {
            assert_eq!(ya[i].to_bits(), yb[i].to_bits());
        }
    }

    #[test]
    fn empty_topology_with_extra_paths_is_a_typed_core_error() {
        // A parseable-but-empty edge list must not panic in extra-path
        // sampling (gen_range over 0 nodes); it reaches the system
        // builder and comes back as a typed error.
        let mut p = std::env::temp_dir();
        p.push(format!("tomo-serve-topo-empty-{}.txt", std::process::id()));
        std::fs::write(&p, "# no edges\n").expect("write fixture");
        let err = load_system(&p, 8, 42).unwrap_err();
        let _ = std::fs::remove_file(&p);
        assert!(matches!(err, TopologyError::Core(_)), "got {err}");
    }

    #[test]
    fn missing_file_is_a_typed_graph_error() {
        let err = load_system(std::path::Path::new("/nonexistent/x.cch"), 0, 0).unwrap_err();
        assert!(matches!(err, TopologyError::Graph(_)));
        assert!(!err.to_string().is_empty());
    }
}
