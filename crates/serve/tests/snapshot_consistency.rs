//! Concurrency tests for the lock-free query path and the sharded
//! ingest queue: every snapshot a reader observes must be internally
//! consistent (all fields from the same publish) and monotonically
//! versioned, and the shard merge must be deterministic — the same
//! batch set, in any arrival order, through any shard count, lands the
//! engine in bit-identical state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use tomo_core::fig1::fig1_system;
use tomo_core::TomographySystem;
use tomo_detect::ConsistencyDetector;
use tomo_linalg::Vector;
use tomo_serve::{
    Engine, ProbeBatch, ProbeClient, ProbeRow, ServeConfig, Server, ShardedQueue, SnapshotStore,
};

fn system() -> Arc<TomographySystem> {
    Arc::new(fig1_system().expect("fig1 builds"))
}

/// A full-coverage batch whose values depend only on its id.
fn batch(sys: &TomographySystem, id: u64) -> ProbeBatch {
    let x = Vector::filled(sys.num_links(), 10.0);
    let y = sys.measure(&x).expect("measure");
    ProbeBatch {
        batch_id: id,
        epoch: 1,
        rows: (0..sys.num_paths())
            .map(|i| ProbeRow::new(u32::try_from(i).expect("fits"), y[i] + id as f64 * 1e-9))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// The apply worker churns batches and publishes after every one
    /// while reader threads hammer the store: every observed snapshot
    /// self-checks (digest over estimate inputs, watermark, and stats
    /// from the same publish) and versions never go backwards.
    #[test]
    fn hammered_snapshots_stay_consistent_and_monotonic(nbatches in 20usize..60) {
        let sys = system();
        let mut engine = Engine::new(Arc::clone(&sys), ConsistencyDetector::recommended());
        engine.bump_epoch(1);
        let store = Arc::new(SnapshotStore::new(engine.published_view(0)));
        let stop = Arc::new(AtomicBool::new(false));
        let total_reads = Arc::new(AtomicU64::new(0));

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let total_reads = Arc::clone(&total_reads);
                std::thread::spawn(move || {
                    let mut last_version = 0u64;
                    let mut last_watermark = 0u64;
                    let mut last_applied = 0u64;
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let snap = store.load();
                        assert!(snap.self_check(), "torn snapshot observed");
                        assert!(snap.version() >= last_version, "version went backwards");
                        assert!(snap.watermark() >= last_watermark, "watermark regressed");
                        assert!(snap.stats().applied >= last_applied, "stats regressed");
                        if snap.coverage() > 0 {
                            let answer = snap.answer().expect("covered snapshot answers");
                            assert_eq!(answer.epoch, snap.epoch());
                            assert_eq!(answer.coverage, snap.coverage());
                            assert!(snap.self_check(), "solving broke the snapshot");
                        }
                        last_version = snap.version();
                        last_watermark = snap.watermark();
                        last_applied = snap.stats().applied;
                        reads += 1;
                        total_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    reads
                })
            })
            .collect();

        let mut version = 1u64;
        for id in 0..nbatches as u64 {
            engine.apply(&batch(&sys, id));
            store.publish(engine.published_view(version));
            version += 1;
        }
        // Keep publishing (same state, advancing versions) until the
        // readers demonstrably overlapped with the churn — on one core
        // the batch loop alone can finish before they are scheduled.
        let mut spins = 0u64;
        while total_reads.load(Ordering::Relaxed) < 20 && spins < 100_000 {
            store.publish(engine.published_view(version));
            version += 1;
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().expect("reader panicked — invariant violated");
        }
        prop_assert!(total_reads.load(Ordering::Relaxed) > 0, "readers never ran");
        let last = store.load();
        prop_assert_eq!(last.stats().applied, nbatches as u64);
    }

    /// The same batch set, pushed in any arrival order and drained
    /// through any shard count, applies to bit-identical engine state.
    #[test]
    fn shard_merge_is_deterministic_over_arrival_order(
        shuffle_seed in 0u64..u64::MAX,
        shards in 1usize..5,
    ) {
        // Fisher-Yates over the batch ids, driven by a splitmix64
        // stream so each case sees a different arrival order.
        let mut order: Vec<u64> = (0..24).collect();
        let mut state = shuffle_seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let sys = system();
        // Reference: apply in id order, no queue.
        let mut reference = Engine::new(Arc::clone(&sys), ConsistencyDetector::recommended());
        reference.bump_epoch(1);
        for id in 0..24 {
            reference.apply(&batch(&sys, id));
        }

        // Full-coverage batches share a path group (min path 0), so
        // they all land on one shard: size that shard to hold them all.
        let queue = ShardedQueue::new(24 * shards, shards, 10);
        for &id in &order {
            let b = batch(&sys, id);
            let group = b.rows.iter().map(|r| u64::from(r.path)).min().unwrap_or(0);
            queue.try_push(queue.shard_for(group), b).expect("fits");
        }
        let mut engine = Engine::new(Arc::clone(&sys), ConsistencyDetector::recommended());
        engine.bump_epoch(1);
        while let Some((_, b)) = queue.pop_next(Duration::from_millis(1)) {
            engine.apply(&b);
        }

        prop_assert_eq!(engine.snapshot(), reference.snapshot());
        let got = engine.published_view(1).answer().expect("answers");
        let want = reference.published_view(1).answer().expect("answers");
        prop_assert_eq!(got.estimate_bits, want.estimate_bits);
    }
}

/// Whole-daemon determinism across shard counts: the same batches
/// through 1-shard and 4-shard servers, delivered by different client
/// splits, produce byte-identical answers and replay state.
#[test]
fn server_state_is_byte_identical_across_shard_and_client_counts() {
    let sys = system();
    let total = 32u64;

    let answers: Vec<Vec<u64>> = [(1usize, 1usize), (4, 2), (4, 4)]
        .iter()
        .map(|&(shards, nclients)| {
            let server = Server::start(
                system(),
                ConsistencyDetector::recommended(),
                ServeConfig {
                    ingest_shards: shards,
                    ..ServeConfig::default()
                },
            )
            .expect("daemon starts");
            let addr = server.ingest_addr();
            let handles: Vec<_> = (0..nclients)
                .map(|c| {
                    let sys = Arc::clone(&sys);
                    std::thread::spawn(move || {
                        // Client c sends batch ids {b : b % nclients == c}
                        // via start id + stride, so the union across
                        // clients is exactly 0..total with each id
                        // carrying the same rows a single client would
                        // have sent.
                        let mut client = ProbeClient::new(addr, 7 + c as u64)
                            .with_start_batch_id(c as u64)
                            .with_batch_id_stride(nclients as u64);
                        let my_batches: Vec<Vec<ProbeRow>> = (0..total)
                            .filter(|b| b % nclients as u64 == c as u64)
                            .map(|b| batch(&sys, b).rows)
                            .collect();
                        client.stream(my_batches, None).expect("stream delivers");
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
            server.query().expect("answers").estimate_bits
        })
        .collect();

    assert_eq!(
        answers[0], answers[1],
        "1 shard/1 client == 4 shards/2 clients"
    );
    assert_eq!(
        answers[0], answers[2],
        "1 shard/1 client == 4 shards/4 clients"
    );
}
