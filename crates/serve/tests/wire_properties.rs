//! Property tests for the wire protocol.
//!
//! Two invariants: (1) every well-formed frame survives an
//! encode → stream → decode round trip bit-exactly; (2) *no* byte
//! sequence — random garbage, truncations, corrupted valid frames —
//! makes the decoder panic or allocate past the frame ceiling; it
//! always answers a typed [`WireError`].

use proptest::prelude::*;
use rand::Rng as _;
use rand::RngCore as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tomo_serve::{read_frame, write_frame, Frame, ProbeBatch, ProbeRow, RejectCode, SnapshotState};

/// A deterministic arbitrary frame for `seed` (the shimmed proptest has
/// no derive-style `Arbitrary`, so frames are built from a seeded RNG).
fn arbitrary_frame(seed: u64) -> Frame {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match rng.gen_range(0u32..7) {
        0 => Frame::Hello {
            version: rng.gen_range(0..=u16::MAX as u32),
        },
        1 => Frame::HelloAck {
            epoch: rng.next_u64(),
            num_paths: rng.gen_range(0..10_000),
        },
        2 => {
            let rows = (0..rng.gen_range(1usize..=32))
                .map(|_| ProbeRow {
                    path: rng.gen_range(0..1024),
                    value_bits: rng.next_u64(),
                })
                .collect();
            Frame::Batch(ProbeBatch {
                batch_id: rng.next_u64(),
                epoch: rng.next_u64(),
                rows,
            })
        }
        3 => Frame::Ack {
            batch_id: rng.next_u64(),
            epoch: rng.next_u64(),
        },
        4 => Frame::Reject {
            batch_id: rng.next_u64(),
            code: match rng.gen_range(0u32..3) {
                0 => RejectCode::QueueFull,
                1 => RejectCode::StaleEpoch,
                _ => RejectCode::BadBatch,
            },
            retry_after_ms: rng.next_u32(),
        },
        5 => Frame::EpochMark {
            epoch: rng.next_u64(),
        },
        _ => {
            let slots = (0..rng.gen_range(0usize..16))
                .map(|_| (rng.gen_range(0..1024u32), rng.next_u64(), rng.next_u64()))
                .collect();
            let applied_above = (0..rng.gen_range(0usize..8))
                .map(|_| rng.next_u64())
                .collect();
            Frame::Snapshot(SnapshotState {
                epoch: rng.next_u64(),
                watermark: rng.next_u64(),
                applied_above,
                slots,
            })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn every_frame_round_trips(seed in 0u64..100_000) {
        let frame = arbitrary_frame(seed);
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).expect("encode to a Vec");
        let mut cursor = &stream[..];
        let back = read_frame(&mut cursor).expect("decode").expect("one frame");
        prop_assert_eq!(&back, &frame, "round trip diverged on seed {}", seed);
        // The stream must be fully consumed: no gap, no overlap.
        prop_assert!(cursor.is_empty(), "decoder left {} bytes", cursor.len());
    }

    #[test]
    fn random_bytes_never_panic(seed in 0u64..100_000, len in 0usize..256) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        let mut cursor = &bytes[..];
        // Any outcome is fine except a panic; errors must be typed.
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    }

    #[test]
    fn truncations_of_valid_frames_are_typed_errors(seed in 0u64..50_000) {
        let frame = arbitrary_frame(seed);
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).expect("encode");
        // Every strict prefix must be UnexpectedEof (mid-frame) or a
        // clean end-of-stream (nothing read yet).
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5_A5A5);
        let cut = rng.gen_range(0..stream.len());
        let mut cursor = &stream[..cut];
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean close only before byte 0"),
            Err(e) => prop_assert!(
                e.is_protocol_violation() || matches!(e, tomo_serve::WireError::Io(_)),
                "untyped error {e:?}"
            ),
            Ok(Some(f)) => prop_assert!(false, "decoded {f:?} from a truncation"),
        }
    }

    #[test]
    fn corrupted_valid_frames_never_panic(seed in 0u64..50_000) {
        let frame = arbitrary_frame(seed);
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).expect("encode");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5A5A_5A5A);
        // Flip a random byte (possibly in the length prefix).
        let idx = rng.gen_range(0..stream.len());
        stream[idx] ^= 1 << rng.gen_range(0..8u32);
        let mut cursor = &stream[..];
        // A corrupted frame can still decode; drain until error or end.
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    }
}
