//! End-to-end daemon tests: a live `tomo-serve` under wire faults,
//! adversarial bytes, backpressure, restart-and-reconverge, and the
//! HTTP query front.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use tomo_core::fig1::fig1_system;
use tomo_core::TomographySystem;
use tomo_detect::ConsistencyDetector;
use tomo_fault::{FaultPlan, FaultSpec};
use tomo_linalg::Vector;
use tomo_serve::{
    read_frame, write_frame, ClientConfig, ClientError, Frame, ProbeBatch, ProbeClient, ProbeRow,
    RejectCode, ServeConfig, Server, WIRE_VERSION,
};

fn system() -> Arc<TomographySystem> {
    Arc::new(fig1_system().expect("fig1 builds"))
}

fn start(config: ServeConfig) -> Server {
    Server::start(system(), ConsistencyDetector::recommended(), config).expect("daemon starts")
}

/// Full-coverage batches with per-batch-distinct values, so the final
/// slot table depends on which batch id won each slot.
fn make_batches(sys: &TomographySystem, count: usize, base_offset: usize) -> Vec<Vec<ProbeRow>> {
    let x = Vector::filled(sys.num_links(), 10.0);
    let y = sys.measure(&x).expect("measure");
    (0..count)
        .map(|b| {
            (0..sys.num_paths())
                .map(|i| {
                    ProbeRow::new(
                        u32::try_from(i).expect("path fits"),
                        y[i] + (base_offset + b) as f64 * 1e-9,
                    )
                })
                .collect()
        })
        .collect()
}

fn temp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "tomo-serve-e2e-{}-{name}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn live_faults_keep_the_ledger_balanced_and_the_answer_exact() {
    let server = start(ServeConfig::default());
    let sys = system();
    let batches = make_batches(&sys, 40, 0);

    // Reference: the same batches against a fault-free daemon.
    let reference = start(ServeConfig::default());
    let mut ref_client = ProbeClient::new(reference.ingest_addr(), 7);
    ref_client
        .stream(batches.clone(), None)
        .expect("clean stream");
    let want = reference.query().expect("reference answer");

    // Faulted: nearly half the frames are damaged on the wire.
    let spec = FaultSpec::parse("frame=0.4").expect("spec parses");
    let mut trial = FaultPlan::new(spec, 0xC0FFEE).trial(0);
    let mut client = ProbeClient::new(server.ingest_addr(), 7);
    let outcome = client
        .stream(batches, Some(&mut trial))
        .expect("faulted stream still delivers");

    assert_eq!(outcome.acked, 40, "every batch eventually acked");
    let injected = outcome.injected.frame_total();
    assert!(injected > 0, "rate 0.4 over 40 draws injected something");
    assert_eq!(
        injected,
        outcome.handled + outcome.quarantined,
        "ledger balances: {outcome:?}"
    );

    // Server-side cross-check: counters match the client's attribution.
    let stats = server.engine_stats();
    assert_eq!(stats.applied, 40);
    assert_eq!(stats.deduped, outcome.injected.frame_duplicate);
    assert_eq!(stats.reordered, outcome.injected.frame_reorder);
    assert_eq!(stats.quarantined, 0, "wire faults never corrupt a batch");
    let counters = server.counters();
    assert_eq!(
        counters
            .truncated_frames
            .load(std::sync::atomic::Ordering::Relaxed),
        outcome.injected.frame_truncate
    );
    assert_eq!(
        counters
            .garbled_frames
            .load(std::sync::atomic::Ordering::Relaxed),
        outcome.injected.frame_garble
    );

    // The answer is bit-identical to the fault-free run.
    let got = server.query().expect("faulted answer");
    assert_eq!(got.estimate_bits, want.estimate_bits, "byte-identical");
    assert!(!got.verdict.detected);
}

#[test]
fn kill_and_restart_reconverges_byte_identically() {
    let journal = temp_journal("restart");
    let sys = system();
    let first = make_batches(&sys, 12, 0);
    let second = make_batches(&sys, 12, 12);

    // Uninterrupted reference run.
    let reference = start(ServeConfig::default());
    let mut ref_client = ProbeClient::new(reference.ingest_addr(), 3);
    ref_client
        .stream(first.clone(), None)
        .expect("ref 1st half");
    ref_client
        .stream(second.clone(), None)
        .expect("ref 2nd half");
    let want = reference.query().expect("reference answer");

    // Interrupted run: first half, kill, restart on the same journal.
    let config = ServeConfig {
        journal_path: Some(journal.clone()),
        snapshot_every: 5, // force a snapshot + batch suffix in replay
        ..ServeConfig::default()
    };
    let server_a = start(config.clone());
    assert_eq!(server_a.epoch(), 1);
    let mut client = ProbeClient::new(server_a.ingest_addr(), 3);
    client.stream(first, None).expect("1st half");
    drop(server_a); // kill mid-sweep

    let server_b = start(config);
    assert_eq!(server_b.epoch(), 2, "restart bumps the epoch");
    // A client resending an already-acked batch (as it would after a
    // crash swallowed the ack) must get a dedup re-ack, proving the
    // replayed engine remembers the applied-batch set.
    {
        let mut s = TcpStream::connect(server_b.ingest_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        write_frame(
            &mut s,
            &Frame::Hello {
                version: WIRE_VERSION,
            },
        )
        .expect("hello");
        assert!(matches!(
            read_frame(&mut s),
            Ok(Some(Frame::HelloAck { epoch: 2, .. }))
        ));
        let resend = Frame::Batch(ProbeBatch {
            batch_id: 5,
            epoch: 2,
            rows: vec![ProbeRow::new(0, 0.0)],
        });
        write_frame(&mut s, &resend).expect("resend");
        match read_frame(&mut s) {
            Ok(Some(Frame::Ack { batch_id: 5, .. })) => {}
            other => panic!("expected dedup re-ack, got {other:?}"),
        }
        assert_eq!(server_b.engine_stats().deduped, 1);
    }
    let mut client_b =
        ProbeClient::new(server_b.ingest_addr(), 3).with_start_batch_id(client.next_batch_id());
    client_b.stream(second, None).expect("2nd half");

    let got = server_b.query().expect("restarted answer");
    assert_eq!(
        got.estimate_bits, want.estimate_bits,
        "restart + replay reconverges byte-identically"
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn double_restart_replays_batches_from_every_epoch() {
    let journal = temp_journal("double-restart");
    let sys = system();
    let first = make_batches(&sys, 6, 0);
    let second = make_batches(&sys, 6, 6);
    let third = make_batches(&sys, 6, 12);

    // Uninterrupted reference run.
    let reference = start(ServeConfig::default());
    let mut ref_client = ProbeClient::new(reference.ingest_addr(), 3);
    for part in [first.clone(), second.clone(), third.clone()] {
        ref_client.stream(part, None).expect("ref stream");
    }
    let want = reference.query().expect("reference answer");

    // No snapshots: the third boot must replay the epoch-1 batches that
    // sit *before* the epoch-2 mark in the journal — the regression was
    // bumping the engine to the last recorded epoch before re-applying,
    // which dropped them all as stale.
    let config = ServeConfig {
        journal_path: Some(journal.clone()),
        snapshot_every: 0,
        ..ServeConfig::default()
    };
    let server_a = start(config.clone());
    assert_eq!(server_a.epoch(), 1);
    let mut client = ProbeClient::new(server_a.ingest_addr(), 3);
    client.stream(first, None).expect("epoch-1 batches");
    drop(server_a);

    let server_b = start(config.clone());
    assert_eq!(server_b.epoch(), 2);
    assert_eq!(server_b.engine_stats().applied, 6, "epoch-1 replayed");
    let mut client_b =
        ProbeClient::new(server_b.ingest_addr(), 3).with_start_batch_id(client.next_batch_id());
    client_b.stream(second, None).expect("epoch-2 batches");
    drop(server_b);

    let server_c = start(config);
    assert_eq!(server_c.epoch(), 3);
    assert_eq!(
        server_c.engine_stats().applied,
        12,
        "batches from both earlier epochs replayed, none dropped as stale"
    );
    let mut client_c =
        ProbeClient::new(server_c.ingest_addr(), 3).with_start_batch_id(client_b.next_batch_id());
    client_c.stream(third, None).expect("epoch-3 batches");
    let got = server_c.query().expect("answer after two restarts");
    assert_eq!(
        got.estimate_bits, want.estimate_bits,
        "double restart reconverges byte-identically"
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn connection_churn_does_not_accumulate_thread_handles() {
    let server = start(ServeConfig::default());
    let addr = server.ingest_addr();
    for _ in 0..20 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        write_frame(
            &mut s,
            &Frame::Hello {
                version: WIRE_VERSION,
            },
        )
        .expect("hello");
        assert!(matches!(
            read_frame(&mut s),
            Ok(Some(Frame::HelloAck { .. }))
        ));
        // Dropping the stream closes it; the handler exits promptly.
    }
    // Let the handlers observe the closes, then accept once more to
    // trigger the opportunistic reap.
    std::thread::sleep(Duration::from_millis(300));
    let _last = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));
    let live = server.conn_thread_count();
    assert!(live <= 2, "finished handlers reaped, {live} still held");
}

#[test]
fn adversarial_bytes_quarantine_without_killing_the_daemon() {
    let server = start(ServeConfig::default());
    let addr = server.ingest_addr();

    let handshake = |addr: SocketAddr| -> TcpStream {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        write_frame(
            &mut s,
            &Frame::Hello {
                version: WIRE_VERSION,
            },
        )
        .expect("hello");
        match read_frame(&mut s) {
            Ok(Some(Frame::HelloAck { .. })) => s,
            other => panic!("handshake failed: {other:?}"),
        }
    };

    // 1. Oversized length prefix: rejected before allocation.
    {
        let mut s = handshake(addr);
        s.write_all(&(u32::MAX).to_be_bytes()).unwrap();
        s.write_all(&[3u8; 16]).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "server dropped us");
    }
    // 2. Garbage after a valid handshake.
    {
        let mut s = handshake(addr);
        s.write_all(&[0, 0, 0, 5, 0xEE, 1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "server dropped us");
    }
    // 3. A batch with a stale epoch: typed Reject, connection survives.
    {
        let mut s = handshake(addr);
        let stale = Frame::Batch(ProbeBatch {
            batch_id: 99,
            epoch: 0, // server is at epoch 1
            rows: vec![ProbeRow::new(0, 1.0)],
        });
        write_frame(&mut s, &stale).expect("send stale");
        match read_frame(&mut s) {
            Ok(Some(Frame::Reject { code, .. })) => assert_eq!(code, RejectCode::StaleEpoch),
            other => panic!("expected stale reject, got {other:?}"),
        }
    }
    // 4. A wrong-version handshake is refused.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        write_frame(&mut s, &Frame::Hello { version: 9999 }).expect("bad hello");
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "server dropped us");
    }

    let counters = server.counters();
    assert!(counters.quarantined_frames() >= 2, "damage was counted");
    assert_eq!(
        counters
            .handshake_rejects
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    // The daemon still serves a clean client perfectly afterwards.
    let sys = system();
    let mut client = ProbeClient::new(addr, 1);
    let outcome = client
        .stream(make_batches(&sys, 4, 0), None)
        .expect("daemon survived the abuse");
    assert_eq!(outcome.acked, 4);
    assert!(server.query().is_ok());
}

#[test]
fn nan_batches_are_rejected_and_reported() {
    let server = start(ServeConfig::default());
    let mut client = ProbeClient::new(server.ingest_addr(), 5);
    // First a clean batch so the daemon has *some* state.
    let sys = system();
    client
        .stream(make_batches(&sys, 1, 0), None)
        .expect("clean batch");
    // Then a poisoned one.
    let poisoned = vec![ProbeRow::new(0, f64::NAN), ProbeRow::new(1, 2.0)];
    client.send_batch(poisoned).expect("send resolves");
    assert_eq!(client.outcome().server_quarantined, 1);
    let stats = server.engine_stats();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.applied, 1, "the clean batch alone was applied");
    // The poisoned batch left no trace on the answer.
    let a = server.query().expect("answer");
    assert_eq!(a.coverage, sys.num_paths());
}

/// A scripted fake server: handshakes, then answers each incoming batch
/// with a canned reply sequence — deterministic backpressure and
/// stale-epoch behavior without timing games.
fn fake_server(replies: Vec<Frame>) -> (SocketAddr, std::thread::JoinHandle<u64>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        let mut replies = replies.into_iter();
        let mut batches_seen = 0u64;
        'accept: loop {
            let Ok((mut s, _)) = listener.accept() else {
                break;
            };
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            match read_frame(&mut s) {
                Ok(Some(Frame::Hello { .. })) => {}
                _ => continue,
            }
            write_frame(
                &mut s,
                &Frame::HelloAck {
                    epoch: 1,
                    num_paths: 4,
                },
            )
            .expect("hello ack");
            loop {
                match read_frame(&mut s) {
                    Ok(Some(Frame::Batch(_))) => {
                        batches_seen += 1;
                        match replies.next() {
                            Some(reply) => {
                                if write_frame(&mut s, &reply).is_err() {
                                    continue 'accept;
                                }
                                if matches!(reply, Frame::Ack { .. }) {
                                    return batches_seen;
                                }
                            }
                            None => return batches_seen,
                        }
                    }
                    _ => continue 'accept,
                }
            }
        }
        batches_seen
    });
    (addr, handle)
}

#[test]
fn client_honors_queue_full_backpressure_then_delivers() {
    // Two QueueFull rejections, then an Ack: the client must retry
    // after the hint, not give up, not duplicate-count the ack.
    let reject = |id| Frame::Reject {
        batch_id: id,
        code: RejectCode::QueueFull,
        retry_after_ms: 5,
    };
    let (addr, handle) = fake_server(vec![
        reject(0),
        reject(0),
        Frame::Ack {
            batch_id: 0,
            epoch: 1,
        },
    ]);
    let mut client = ProbeClient::new(addr, 11);
    let id = client
        .send_batch(vec![ProbeRow::new(0, 1.0)])
        .expect("delivered after backpressure");
    assert_eq!(id, 0);
    let outcome = client.outcome();
    assert_eq!(outcome.queue_full_rejects, 2);
    assert_eq!(outcome.acked, 1);
    let seen = handle.join().expect("fake server");
    assert_eq!(seen, 3, "client sent exactly one retry per rejection");
}

#[test]
fn client_rehandshakes_on_stale_epoch() {
    let (addr, handle) = fake_server(vec![
        Frame::Reject {
            batch_id: 0,
            code: RejectCode::StaleEpoch,
            retry_after_ms: 0,
        },
        Frame::Ack {
            batch_id: 0,
            epoch: 1,
        },
    ]);
    let mut client = ProbeClient::new(addr, 13);
    client
        .send_batch(vec![ProbeRow::new(0, 1.0)])
        .expect("delivered after re-handshake");
    let outcome = client.outcome();
    assert_eq!(outcome.stale_epoch_rejects, 1);
    assert!(outcome.reconnects >= 2, "stale epoch forced a re-handshake");
    handle.join().expect("fake server");
}

fn http_get(addr: SocketAddr, target: &str) -> (String, String) {
    http_request(addr, "GET", target)
}

fn http_request(addr: SocketAddr, method: &str, target: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect http");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "{method} {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header split");
    let status = head.lines().next().expect("status line").to_string();
    (status, body.to_string())
}

#[test]
fn http_front_serves_health_state_verdict_stats_and_shutdown() {
    let server = start(ServeConfig::default());
    let addr = server.http_addr();

    let (status, body) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    // Not ready before full coverage.
    let (status, _) = http_get(addr, "/readyz");
    assert!(status.contains("503"), "{status}");
    let (status, _) = http_get(addr, "/state");
    assert!(status.contains("503"), "no measurements yet: {status}");

    // Ingest full coverage, then everything turns 200.
    let sys = system();
    let mut client = ProbeClient::new(server.ingest_addr(), 2);
    client
        .stream(make_batches(&sys, 2, 0), None)
        .expect("ingest");
    let (status, _) = http_get(addr, "/readyz");
    assert!(status.contains("200"), "{status}");

    let (status, body) = http_get(addr, "/state");
    assert!(status.contains("200"), "{status}");
    let state = serde_json::parse_value(&body).expect("state is JSON");
    assert_eq!(
        state.get("coverage").and_then(serde::Value::as_u64),
        Some(sys.num_paths() as u64)
    );
    assert!(matches!(
        state.get("degraded"),
        Some(serde::Value::Bool(false))
    ));
    let (bits, floats) = match (state.get("estimate_bits"), state.get("estimate")) {
        (Some(serde::Value::Array(b)), Some(serde::Value::Array(f))) => (b, f),
        other => panic!("estimate arrays missing: {other:?}"),
    };
    assert_eq!(bits.len(), sys.num_links());
    // Hex bits must agree with the float rendering.
    let first_bits =
        u64::from_str_radix(bits[0].as_str().expect("hex string"), 16).expect("parses");
    let first_float = floats[0].as_f64().expect("float");
    assert!((f64::from_bits(first_bits) - first_float).abs() < 1e-9);

    let (status, body) = http_get(addr, "/verdict");
    assert!(status.contains("200"), "{status}");
    let verdict = serde_json::parse_value(&body).expect("verdict is JSON");
    assert!(matches!(
        verdict.get("detected"),
        Some(serde::Value::Bool(false))
    ));

    let (status, body) = http_get(addr, "/stats");
    assert!(status.contains("200"), "{status}");
    let stats = serde_json::parse_value(&body).expect("stats is JSON");
    assert_eq!(stats.get("applied").and_then(serde::Value::as_u64), Some(2));
    assert!(
        stats
            .get("slo_ms")
            .and_then(serde::Value::as_f64)
            .expect("slo")
            > 0.0
    );

    let (status, _) = http_get(addr, "/nope");
    assert!(status.contains("404"), "{status}");

    // POST /shutdown unblocks the waiter.
    let waiter = std::thread::spawn({
        let server = Arc::new(server);
        let server2 = Arc::clone(&server);
        move || {
            let requested = server2.wait_for_shutdown_request(Duration::from_secs(10));
            (server2, requested)
        }
    });
    std::thread::sleep(Duration::from_millis(50));
    let (status, _) = http_request(addr, "POST", "/shutdown");
    assert!(status.contains("200"), "{status}");
    let (_server, requested) = waiter.join().expect("waiter joins");
    assert!(requested, "shutdown request observed");
}

/// Queries read a published snapshot, never the engine: a client
/// hammering the apply worker with hundreds of batches must not push
/// the typical in-process query above a millisecond (debug build,
/// single core — a mutex-contended query path fails this by orders of
/// magnitude).
#[test]
fn queries_stay_fast_while_ingest_is_saturated() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let server = Arc::new(start(ServeConfig {
        queue_capacity: 512,
        ..ServeConfig::default()
    }));
    let addr = server.ingest_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let ingest = std::thread::spawn({
        let stop = Arc::clone(&stop);
        move || {
            let sys = system();
            let mut client = ProbeClient::new(addr, 9);
            let mut delivered = 0usize;
            while !stop.load(Ordering::Acquire) {
                client
                    .stream(make_batches(&sys, 50, delivered), None)
                    .expect("saturating stream delivers");
                delivered += 50;
            }
            delivered
        }
    });

    // Give the hammering a head start, then sample query latencies.
    std::thread::sleep(Duration::from_millis(100));
    let mut latencies: Vec<Duration> = (0..300)
        .map(|_| {
            let t = std::time::Instant::now();
            let _ = server.query();
            t.elapsed()
        })
        .collect();
    stop.store(true, Ordering::Release);
    let delivered = ingest.join().expect("ingest thread");
    assert!(delivered >= 50, "apply path was actually busy");

    latencies.sort();
    let p50 = latencies[latencies.len() / 2];
    assert!(
        p50 < Duration::from_millis(1),
        "lock-free query p50 {p50:?} under saturated ingest"
    );
    // And the answers were real, not errors-returned-quickly.
    let answer = server.query().expect("covered answer");
    assert_eq!(answer.coverage, system().num_paths());
}

/// Read-your-writes under coalesced publishing: the moment an ack is
/// readable on the wire, the published snapshot already covers that
/// batch — even when the queue never drains mid-window and
/// `publish_coalesce` is too large to force intermediate publishes.
#[test]
fn acks_imply_snapshot_visibility_under_coalesced_load() {
    let server = start(ServeConfig {
        publish_coalesce: 1_000_000,
        queue_capacity: 256,
        ..ServeConfig::default()
    });
    let sys = system();
    let batches = make_batches(&sys, 48, 0);

    let mut stream = TcpStream::connect(server.ingest_addr()).expect("connect");
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: WIRE_VERSION,
        },
    )
    .expect("hello");
    let hello_ack = read_frame(&mut stream).expect("read").expect("frame");
    assert!(matches!(hello_ack, Frame::HelloAck { .. }));

    // Pipeline the whole window before reading a single reply, so the
    // apply worker sees a deep queue and would coalesce acks ahead of
    // any publish if it could.
    for (i, rows) in batches.iter().enumerate() {
        let frame = Frame::Batch(ProbeBatch {
            batch_id: i as u64 + 1,
            epoch: 1,
            rows: rows.clone(),
        });
        write_frame(&mut stream, &frame).expect("send batch");
    }

    // Batches flow through one connection and one shard, so acks come
    // back in apply order: on reading the k-th ack, the published
    // snapshot must already show at least k applied batches.
    let mut acked = 0u64;
    while acked < 48 {
        match read_frame(&mut stream).expect("read").expect("reply") {
            Frame::Ack { .. } => {
                acked += 1;
                let snap = server.snapshot();
                assert!(
                    snap.stats().applied >= acked,
                    "ack {acked} outran the published snapshot (applied {})",
                    snap.stats().applied
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert_eq!(server.engine_stats().applied, 48);
}

/// `Server::start` with a Rocketfuel-parsed system: the daemon answers
/// queries over the real topology, not just the fig. 1 toy.
#[test]
fn topology_daemon_serves_a_rocketfuel_system() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/as65530.cch");
    let system = Arc::new(tomo_serve::load_system(&path, 4, 42).expect("topology loads"));
    let server = Server::start(
        Arc::clone(&system),
        ConsistencyDetector::recommended(),
        ServeConfig::default(),
    )
    .expect("daemon starts");

    let x = Vector::filled(system.num_links(), 2.0);
    let y = system.measure(&x).expect("measure");
    let rows: Vec<ProbeRow> = (0..system.num_paths())
        .map(|i| ProbeRow::new(u32::try_from(i).expect("fits"), y[i]))
        .collect();
    let mut client = ProbeClient::new(server.ingest_addr(), 3);
    client.send_batch(rows).expect("delivers");

    let answer = server.query().expect("answers");
    assert_eq!(answer.num_paths, system.num_paths());
    assert_eq!(answer.coverage, system.num_paths());
    assert!(!answer.degraded, "full coverage solves exactly");
    assert_eq!(answer.estimate_bits.len(), system.num_links());
    for &bits in &answer.estimate_bits {
        assert!(
            (f64::from_bits(bits) - 2.0).abs() < 1e-6,
            "uniform link state recovered"
        );
    }
    assert!(!answer.verdict.detected);
}

/// `/stats` exposes the per-shard queue gauges and the snapshot
/// version, and the in-process accessor agrees with the HTTP view.
#[test]
fn stats_reports_shards_and_snapshot_version() {
    let server = start(ServeConfig {
        ingest_shards: 3,
        ..ServeConfig::default()
    });
    let sys = system();
    let mut client = ProbeClient::new(server.ingest_addr(), 2);
    client
        .stream(make_batches(&sys, 3, 0), None)
        .expect("ingest");

    let (status, body) = http_get(server.http_addr(), "/stats");
    assert!(status.contains("200"), "{status}");
    let stats = serde_json::parse_value(&body).expect("stats is JSON");
    let shards = match stats.get("shards") {
        Some(serde::Value::Array(a)) => a,
        other => panic!("shards array missing: {other:?}"),
    };
    assert_eq!(shards.len(), 3, "one entry per ingest shard");
    let pushed: u64 = shards
        .iter()
        .map(|s| {
            s.get("pushed")
                .and_then(serde::Value::as_u64)
                .expect("pushed")
        })
        .sum();
    assert_eq!(pushed, 3, "every batch traversed exactly one shard");
    let version = stats
        .get("snapshot_version")
        .and_then(serde::Value::as_u64)
        .expect("snapshot_version");
    assert!(version >= 1, "ingest published at least one snapshot");

    let in_process: u64 = server.shard_stats().iter().map(|s| s.pushed).sum();
    assert_eq!(in_process, pushed);
}

/// An injected reorder widens the resend window to two unacked batches;
/// with `max_unacked: 1` that is a typed overflow error *before* any
/// wire activity, and the default cap delivers the same stream fine.
#[test]
fn resend_overflow_is_a_typed_error() {
    let spec = FaultSpec::parse("frame=1.0").expect("spec parses");
    let seed = (0..10_000u64)
        .find(|&s| {
            matches!(
                FaultPlan::new(spec, s).trial(0).frame_fault(true),
                Some(tomo_fault::FrameFaultKind::Reorder)
            )
        })
        .expect("some seed draws Reorder first");
    let server = start(ServeConfig::default());
    let sys = system();

    let mut client = ProbeClient::new(server.ingest_addr(), 1).with_config(ClientConfig {
        max_unacked: 1,
        ..ClientConfig::default()
    });
    let mut trial = FaultPlan::new(spec, seed).trial(0);
    let err = client
        .stream(make_batches(&sys, 2, 0), Some(&mut trial))
        .expect_err("two unacked batches exceed a cap of one");
    assert_eq!(
        err,
        ClientError::ResendOverflow {
            unacked: 2,
            capacity: 1
        }
    );

    // The default cap absorbs the same reorder without complaint.
    let mut client = ProbeClient::new(server.ingest_addr(), 1);
    let mut trial = FaultPlan::new(spec, seed).trial(0);
    let outcome = client
        .stream(make_batches(&sys, 2, 0), Some(&mut trial))
        .expect("default cap delivers");
    assert_eq!(outcome.acked, 2);
    assert_eq!(outcome.injected.frame_reorder, 1);
}

#[test]
fn windowed_stream_matches_lockstep_and_respects_the_resend_cap() {
    let sys = system();
    let batches = make_batches(&sys, 20, 0);

    let lockstep_server = start(ServeConfig::default());
    let mut lockstep = ProbeClient::new(lockstep_server.ingest_addr(), 7);
    lockstep
        .stream(batches.clone(), None)
        .expect("lockstep stream");
    let lockstep_bits = lockstep_server.query().expect("query").estimate_bits;

    // Pipelined windows (including a ragged final window) deliver the
    // same batch set and therefore the same final state, bit for bit.
    let windowed_server = start(ServeConfig::default());
    let mut windowed = ProbeClient::new(windowed_server.ingest_addr(), 7);
    let outcome = windowed
        .stream_windowed(batches.clone(), 8)
        .expect("windowed stream");
    assert_eq!(outcome.acked, 20);
    assert_eq!(
        windowed_server.query().expect("query").estimate_bits,
        lockstep_bits
    );

    // A window wider than the resend buffer is refused before any wire
    // traffic, as a typed overflow.
    let mut capped = ProbeClient::new(windowed_server.ingest_addr(), 7).with_config(ClientConfig {
        max_unacked: 4,
        ..ClientConfig::default()
    });
    match capped.stream_windowed(batches, 8) {
        Err(ClientError::ResendOverflow { unacked, capacity }) => {
            assert_eq!(unacked, 8);
            assert_eq!(capacity, 4);
        }
        other => panic!("expected ResendOverflow, got {other:?}"),
    }
}
