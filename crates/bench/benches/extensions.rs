//! Benches for the beyond-paper extensions: attacker localization, the
//! stealth-tax ablation, and the Section VI defense comparison.
//!
//! Each prints its result once (so `cargo bench` doubles as the report
//! generator), then times a reduced configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tomo_attack::attacker::AttackerSet;
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_bench::BENCH_SEED;
use tomo_core::params;
use tomo_detect::localize::localize;
use tomo_par::Executor;
use tomo_sim::topologies::{build_system, NetworkKind};
use tomo_sim::{ablation, defense};

fn bench_stealth_tax(c: &mut Criterion) {
    let result = ablation::run_stealth_tax(BENCH_SEED, 8).expect("ablation runs");
    println!("\n{}", ablation::render_stealth_tax(&result));

    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("stealth_tax_3_samples", |b| {
        b.iter(|| ablation::run_stealth_tax(black_box(BENCH_SEED), 3).expect("runs"));
    });
    group.finish();
}

fn bench_defense(c: &mut Criterion) {
    let exec = Executor::from_env();
    let result = defense::run_defense(BENCH_SEED, 20, 6, &exec).expect("defense runs");
    println!("\n{}", defense::render_defense(&result));

    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("defense_4_trials", |b| {
        b.iter(|| defense::run_defense(black_box(BENCH_SEED), 4, 3, &exec).expect("runs"));
    });
    group.finish();
}

fn bench_localization(c: &mut Criterion) {
    // Build one attacked instance, then time the localization sweep.
    let system = build_system(NetworkKind::Wireline, BENCH_SEED).expect("system");
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);
    let mut nodes: Vec<_> = system.graph().nodes().collect();
    nodes.sort_by_key(|&n| system.paths_through_nodes(&[n]).len());
    let y_attacked = nodes
        .iter()
        .find_map(|&n| {
            let attackers = AttackerSet::new(&system, vec![n]).ok()?;
            let s =
                strategy::max_damage(&system, &attackers, &AttackScenario::paper_defaults(), &x)
                    .ok()?
                    .into_success()?;
            Some(&system.measure(&x).ok()? + &s.manipulation)
        })
        .expect("some node can attack");

    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("localize_full_sweep", |b| {
        b.iter(|| localize(black_box(&system), black_box(&y_attacked)).expect("runs"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stealth_tax,
    bench_defense,
    bench_localization
);
criterion_main!(benches);
