//! Fig. 2 — strategy portraits (illustrative figure).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tomo_bench::BENCH_SEED;
use tomo_sim::fig2;

fn bench_fig2(c: &mut Criterion) {
    let result = fig2::run(BENCH_SEED).expect("fig2 runs");
    println!("\n{}", fig2::render(&result));

    c.bench_function("fig2_portraits", |b| {
        b.iter(|| fig2::run(black_box(BENCH_SEED)).expect("fig2 runs"));
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
