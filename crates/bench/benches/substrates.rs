//! Performance benches for the substrates: dense linear algebra, the
//! simplex solver, topology generation, path machinery, and the
//! end-to-end attack LP.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tomo_attack::attacker::AttackerSet;
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_core::fig1;
use tomo_core::placement::{random_placement, PlacementConfig};
use tomo_graph::{isp, rgg, shortest};
use tomo_linalg::lstsq::NormalEquationsSolver;
use tomo_linalg::{Matrix, Vector};
use tomo_lp::{LpProblem, Objective, Relation};

fn random_routing_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    loop {
        let m = Matrix::from_fn(rows, cols, |_, _| if rng.gen_bool(0.3) { 1.0 } else { 0.0 });
        if tomo_linalg::rank::rank(&m) == cols {
            return m;
        }
    }
}

fn bench_linalg(c: &mut Criterion) {
    let r = random_routing_matrix(180, 120, 7);
    let y: Vector = (0..180).map(|i| (i as f64).sin() * 20.0 + 25.0).collect();

    c.bench_function("linalg/lstsq_qr_180x120", |b| {
        b.iter(|| tomo_linalg::lstsq::solve(black_box(&r), black_box(&y)).unwrap());
    });
    c.bench_function("linalg/normal_equations_factor_180x120", |b| {
        b.iter(|| NormalEquationsSolver::new(black_box(r.clone())).unwrap());
    });
    let solver = NormalEquationsSolver::new(r.clone()).unwrap();
    c.bench_function("linalg/normal_equations_solve_180x120", |b| {
        b.iter(|| solver.solve(black_box(&y)).unwrap());
    });
    c.bench_function("linalg/pivoted_qr_rank_180x120", |b| {
        b.iter(|| tomo_linalg::rank::rank(black_box(&r)));
    });
}

fn bench_lp(c: &mut Criterion) {
    // A representative attack-shaped LP: 60 capped variables, 40
    // dense-ish inequality constraints.
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let build = |rng: &mut ChaCha8Rng| {
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars: Vec<_> = (0..60)
            .map(|i| lp.add_variable(format!("m{i}"), 0.0, Some(2000.0)).unwrap())
            .collect();
        for &v in &vars {
            lp.set_objective_coefficient(v, 1.0);
        }
        for _ in 0..40 {
            let mut terms = Vec::new();
            for &v in &vars {
                if rng.gen_bool(0.4) {
                    terms.push((v, rng.gen_range(-0.5..1.0)));
                }
            }
            let rel = if rng.gen_bool(0.5) {
                Relation::Le
            } else {
                Relation::Ge
            };
            lp.add_constraint(&terms, rel, rng.gen_range(-200.0..800.0))
                .unwrap();
        }
        lp
    };
    let instance = build(&mut rng);
    c.bench_function("lp/simplex_60v_40c", |b| {
        b.iter(|| black_box(&instance).solve().unwrap());
    });
}

fn bench_graph(c: &mut Criterion) {
    c.bench_function("graph/isp_generate_100", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            isp::generate(&isp::IspConfig::default(), &mut rng).unwrap()
        });
    });
    c.bench_function("graph/rgg_generate_100", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            rgg::RggConfig::default().generate(&mut rng).unwrap()
        });
    });
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = isp::generate(&isp::IspConfig::default(), &mut rng).unwrap();
    let a = tomo_graph::NodeId(0);
    let z = tomo_graph::NodeId(g.num_nodes() - 1);
    c.bench_function("graph/yen_8_shortest", |b| {
        b.iter(|| shortest::yen_k_shortest(black_box(&g), a, z, 8).unwrap());
    });
}

fn bench_placement_and_attack(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let g = isp::generate(&isp::IspConfig::default(), &mut rng).unwrap();
    c.bench_function("core/monitor_placement_isp100", |b| {
        b.iter(|| {
            let mut r = ChaCha8Rng::seed_from_u64(4);
            random_placement(black_box(&g), &PlacementConfig::default(), &mut r).unwrap()
        });
    });

    let system = fig1::fig1_system().unwrap();
    let topo = fig1::fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
    let scenario = AttackScenario::paper_defaults();
    let x = Vector::filled(10, 10.0);
    c.bench_function("attack/chosen_victim_fig1", |b| {
        b.iter(|| {
            strategy::chosen_victim(
                black_box(&system),
                &attackers,
                &scenario,
                &x,
                &[topo.paper_link(10)],
            )
            .unwrap()
        });
    });
    c.bench_function("attack/max_damage_fig1", |b| {
        b.iter(|| strategy::max_damage(black_box(&system), &attackers, &scenario, &x).unwrap());
    });
}

criterion_group!(
    benches,
    bench_linalg,
    bench_lp,
    bench_graph,
    bench_placement_and_attack
);
criterion_main!(benches);
