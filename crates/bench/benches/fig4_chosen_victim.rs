//! Fig. 4 — chosen-victim scapegoating on the Fig. 1 network.
//!
//! Prints the regenerated figure once, then times one full experiment
//! (tomography setup + LP attack + estimation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tomo_bench::BENCH_SEED;
use tomo_sim::fig4;

fn bench_fig4(c: &mut Criterion) {
    let result = fig4::run(BENCH_SEED).expect("fig4 runs");
    println!("\n{}", fig4::render(&result));

    c.bench_function("fig4_chosen_victim", |b| {
        b.iter(|| fig4::run(black_box(BENCH_SEED)).expect("fig4 runs"));
    });
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
