//! Ablation: random vs security-aware monitor placement (the paper's
//! Section VI proposal).
//!
//! Prints the exposure comparison (worst single-node presence ratio on
//! measurement paths — the quantity Theorem 2 ties to attack success),
//! then times both placement algorithms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tomo_core::placement::{
    max_internal_presence_ratio, random_placement, security_aware_placement, PlacementConfig,
};
use tomo_graph::isp;

fn bench_placement_ablation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1221);
    let g = isp::generate(&isp::IspConfig::default(), &mut rng).unwrap();
    let cfg = PlacementConfig::default();

    // Print the ablation table once.
    println!("\nSection VI ablation — worst internal presence ratio (lower = safer):");
    let mut random_sum = 0.0;
    let mut secure_sum = 0.0;
    const RUNS: usize = 5;
    for s in 0..RUNS as u64 {
        let mut r1 = ChaCha8Rng::seed_from_u64(100 + s);
        let rand_sys = random_placement(&g, &cfg, &mut r1).unwrap();
        let mut r2 = ChaCha8Rng::seed_from_u64(100 + s);
        let secure_sys = security_aware_placement(&g, &cfg, 6, &mut r2).unwrap();
        let (a, b) = (
            max_internal_presence_ratio(&rand_sys),
            max_internal_presence_ratio(&secure_sys),
        );
        random_sum += a;
        secure_sum += b;
        println!(
            "  seed {:>3}: random {:>5.1}%  security-aware {:>5.1}%",
            100 + s,
            a * 100.0,
            b * 100.0
        );
    }
    println!(
        "  mean:     random {:>5.1}%  security-aware {:>5.1}%",
        random_sum / RUNS as f64 * 100.0,
        secure_sum / RUNS as f64 * 100.0
    );

    let mut group = c.benchmark_group("placement_ablation");
    group.sample_size(10);
    group.bench_function("random_placement", |b| {
        b.iter(|| {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            random_placement(black_box(&g), &cfg, &mut r).unwrap()
        });
    });
    group.bench_function("security_aware_placement_6_trials", |b| {
        b.iter(|| {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            security_aware_placement(black_box(&g), &cfg, 6, &mut r).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_placement_ablation);
criterion_main!(benches);
