//! Dense vs CSR sparse kernels on the paper's experiment topologies.
//!
//! Measures the three products the tomography stack actually runs per
//! trial — `R x` (measurement), `Rᵀ y` (adjoint / consistency check),
//! and the Gram matrix `RᵀR` (estimator cache) — on both substrates, so
//! the speedup claimed in DESIGN.md §5d is regenerable. Routing
//! matrices are 0/1 with a handful of nonzeros per row, so the CSR side
//! should win by roughly the density factor reported in
//! `linalg.sparse.density`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tomo_core::TomographySystem;
use tomo_graph::isp;
use tomo_linalg::Vector;
use tomo_sim::topologies::{build_system, NetworkKind};

/// The largest ISP-like instance the generator produces comfortably:
/// roughly twice the default AS1221-like scale.
fn large_isp_system(seed: u64) -> TomographySystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let config = isp::IspConfig {
        backbone_nodes: 18,
        backbone_chords: 12,
        access_nodes: 140,
        multihoming_prob: 0.4,
    };
    let graph = isp::generate(&config, &mut rng).unwrap();
    tomo_core::placement::random_placement(
        &graph,
        &tomo_core::placement::PlacementConfig::default(),
        &mut rng,
    )
    .unwrap()
}

fn bench_system(c: &mut Criterion, label: &str, system: &TomographySystem) {
    let dense = system.routing_matrix();
    let csr = system.routing_csr();
    let (rows, cols) = (dense.rows(), dense.cols());

    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    let x = Vector::from(
        (0..cols)
            .map(|_| rng.gen_range(0.0..50.0))
            .collect::<Vec<_>>(),
    );
    let y = Vector::from(
        (0..rows)
            .map(|_| rng.gen_range(0.0..500.0))
            .collect::<Vec<_>>(),
    );

    let name = format!("sparse_kernels/{label}_{rows}x{cols}");
    let mut g = c.benchmark_group(&name);
    g.bench_function("mul_vec_dense", |b| {
        b.iter(|| dense.mul_vec(black_box(&x)).unwrap());
    });
    g.bench_function("mul_vec_csr", |b| {
        b.iter(|| csr.mul_vec(black_box(&x)).unwrap());
    });
    g.bench_function("mul_transpose_vec_dense", |b| {
        b.iter(|| dense.mul_transpose_vec(black_box(&y)).unwrap());
    });
    g.bench_function("mul_transpose_vec_csr", |b| {
        b.iter(|| csr.mul_transpose_vec(black_box(&y)).unwrap());
    });
    g.bench_function("gram_dense", |b| {
        b.iter(|| black_box(dense).gram());
    });
    g.bench_function("gram_csr", |b| {
        b.iter(|| black_box(csr).gram());
    });
    g.finish();
}

fn bench_sparse_kernels(c: &mut Criterion) {
    // The two fig. 7 families, exactly as the experiment builds them.
    let wireline = build_system(NetworkKind::Wireline, 42).unwrap();
    bench_system(c, "fig7_wireline", &wireline);
    let wireless = build_system(NetworkKind::Wireless, 42).unwrap();
    bench_system(c, "fig7_wireless", &wireless);
    // And the largest ISP instance, where sparsity pays the most.
    let large = large_isp_system(42);
    bench_system(c, "isp_large", &large);
}

criterion_group!(benches, bench_sparse_kernels);
criterion_main!(benches);
