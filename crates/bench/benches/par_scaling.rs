//! Thread-scaling of the parallel Monte-Carlo engine on a fixed Fig. 7
//! configuration.
//!
//! Sweeps worker counts {1, 2, max} over the same seeded workload and
//! prints a trials/sec line per count, so `cargo bench` doubles as the
//! speedup report backing `scripts/bench_trajectory.sh`.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tomo_bench::BENCH_SEED;
use tomo_par::Executor;
use tomo_sim::fig7::{self, Fig7Config};

fn scaling_config() -> Fig7Config {
    Fig7Config {
        num_systems: 1,
        trials_per_system: 40,
        max_attackers: 3,
        bins: 10,
    }
}

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1];
    if max >= 2 {
        counts.push(2);
    }
    if max > 2 {
        counts.push(max);
    }
    counts
}

fn bench_par_scaling(c: &mut Criterion) {
    let config = scaling_config();

    // One-shot trials/sec report per worker count (both topology families
    // run, so the workload is 2 × trials_per_system LP-backed trials).
    let trials = 2 * config.trials_per_system;
    for &threads in &thread_counts() {
        let exec = Executor::new(threads);
        let start = Instant::now();
        fig7::run(BENCH_SEED, &config, &exec).expect("fig7 runs");
        let secs = start.elapsed().as_secs_f64();
        println!(
            "par_scaling: {threads} thread(s): {trials} trials in {secs:.3} s \
             ({:.1} trials/sec)",
            trials as f64 / secs
        );
    }

    let mut group = c.benchmark_group("par_scaling");
    group.sample_size(10);
    for threads in thread_counts() {
        let exec = Executor::new(threads);
        group.bench_function(&format!("fig7_quick_{threads}_threads"), |b| {
            b.iter(|| fig7::run(black_box(BENCH_SEED), &config, &exec).expect("fig7 runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par_scaling);
criterion_main!(benches);
