//! Fig. 8 — single-attacker max-damage and obfuscation success
//! probabilities.
//!
//! Prints the full-size table once; the timed loop uses a reduced
//! configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tomo_bench::BENCH_SEED;
use tomo_par::Executor;
use tomo_sim::fig8::{self, Fig8Config};

fn bench_fig8(c: &mut Criterion) {
    let exec = Executor::from_env();
    let result = fig8::run(BENCH_SEED, &Fig8Config::default(), &exec).expect("fig8 runs");
    println!("\n{}", fig8::render(&result));

    let quick = Fig8Config {
        num_systems: 1,
        trials_per_system: 4,
        ..Fig8Config::default()
    };
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("fig8_single_attacker_quick", |b| {
        b.iter(|| fig8::run(black_box(BENCH_SEED), &quick, &exec).expect("fig8 runs"));
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
