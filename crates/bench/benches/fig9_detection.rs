//! Fig. 9 — detection ratios per strategy and cut type.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tomo_bench::BENCH_SEED;
use tomo_par::Executor;
use tomo_sim::fig9::{self, Fig9Config};

fn bench_fig9(c: &mut Criterion) {
    let exec = Executor::from_env();
    let result = fig9::run(BENCH_SEED, &Fig9Config::default(), &exec).expect("fig9 runs");
    println!("\n{}", fig9::render(&result));

    let quick = Fig9Config {
        trials: 5,
        ..Fig9Config::default()
    };
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("fig9_detection_quick", |b| {
        b.iter(|| fig9::run(black_box(BENCH_SEED), &quick, &exec).expect("fig9 runs"));
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
