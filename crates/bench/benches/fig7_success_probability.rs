//! Fig. 7 — chosen-victim success probability vs attack presence ratio.
//!
//! Prints the full-size curve once; the timed loop uses a reduced
//! configuration (one topology instance, fewer trials) so Criterion can
//! iterate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tomo_bench::BENCH_SEED;
use tomo_par::Executor;
use tomo_sim::fig7::{self, Fig7Config};

fn bench_fig7(c: &mut Criterion) {
    let exec = Executor::from_env();
    let result = fig7::run(BENCH_SEED, &Fig7Config::default(), &exec).expect("fig7 runs");
    println!("\n{}", fig7::render(&result));

    let quick = Fig7Config {
        num_systems: 1,
        trials_per_system: 20,
        max_attackers: 3,
        bins: 10,
    };
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("fig7_success_probability_quick", |b| {
        b.iter(|| fig7::run(black_box(BENCH_SEED), &quick, &exec).expect("fig7 runs"));
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
