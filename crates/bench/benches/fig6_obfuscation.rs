//! Fig. 6 — obfuscation on the Fig. 1 network.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tomo_bench::BENCH_SEED;
use tomo_sim::fig6;

fn bench_fig6(c: &mut Criterion) {
    let result = fig6::run(BENCH_SEED).expect("fig6 runs");
    println!("\n{}", fig6::render(&result));

    c.bench_function("fig6_obfuscation", |b| {
        b.iter(|| fig6::run(black_box(BENCH_SEED)).expect("fig6 runs"));
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
