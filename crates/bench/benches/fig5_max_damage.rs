//! Fig. 5 — maximum-damage scapegoating on the Fig. 1 network.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tomo_bench::BENCH_SEED;
use tomo_sim::fig5;

fn bench_fig5(c: &mut Criterion) {
    let result = fig5::run(BENCH_SEED).expect("fig5 runs");
    println!("\n{}", fig5::render(&result));

    c.bench_function("fig5_max_damage", |b| {
        b.iter(|| fig5::run(black_box(BENCH_SEED)).expect("fig5 runs"));
    });
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
