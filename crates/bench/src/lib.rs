//! Criterion benchmarks regenerating every evaluation figure of the
//! paper, plus performance benches for the substrates.
//!
//! Each `fig*` bench first prints the regenerated figure (tables/series
//! matching the paper's reported shapes) and then times the experiment,
//! so `cargo bench` doubles as the reproduction runner. Quick
//! configurations are used inside the timed loops; run the `tomo-sim`
//! binary for full-size experiments.
//!
//! | Bench target | Paper figure |
//! |--------------|--------------|
//! | `fig4_chosen_victim` | Fig. 4 |
//! | `fig5_max_damage` | Fig. 5 |
//! | `fig6_obfuscation` | Fig. 6 |
//! | `fig7_success_probability` | Fig. 7 |
//! | `fig8_single_attacker` | Fig. 8 |
//! | `fig9_detection` | Fig. 9 |
//! | `substrates` | — (linalg / LP / graph / placement perf) |
//! | `placement_ablation` | — (Section VI security-aware placement) |

/// A seed shared by all benches so printed figures match EXPERIMENTS.md.
pub const BENCH_SEED: u64 = 42;
