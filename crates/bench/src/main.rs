//! `tomo-bench` — performance-regression gate over the committed
//! `BENCH_*.json` baselines.
//!
//! ```text
//! tomo-bench regression [--dir DIR] [--threshold FRAC] [--runs N]
//! ```
//!
//! Loads `BENCH_montecarlo.json` from `DIR` (default: the current
//! directory), re-runs each recorded workload point in-process, and
//! fails when throughput regresses by more than `FRAC` (default 0.15)
//! against the committed `trials_per_sec`. When `BENCH_scale.json` is
//! also present, its smallest sweep point (the sparse Gram + system
//! build + revised-simplex pipeline at ~1k links) is re-run the same
//! way and gated on combined sparse-path seconds. When
//! `BENCH_serve.json` is present, the `tomo-serve` ingest/query
//! workload is re-run and its p99 query latency gated against both the
//! committed SLO and the committed tail (with absolute slack, since µs
//! tails jitter more than throughput). When `BENCH_serve_load.json` is
//! present, the multi-client serve-load sweep is re-run and gated on
//! aggregate throughput (>15% regression fails) and on the p99 staying
//! under the SLO at every client count. Points recorded on more cores
//! than this machine has are skipped rather than failed, and
//! `TOMO_BENCH_SKIP=1` bypasses the whole gate — both escape hatches
//! keep the check honest on smaller CI runners.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use tomo_par::Executor;
use tomo_sim::{fig7, scale};

/// Workload identity: must match `scripts/bench_trajectory.sh`.
const BASELINE_FILE: &str = "BENCH_montecarlo.json";
const SCALE_FILE: &str = "BENCH_scale.json";
const SERVE_FILE: &str = "BENCH_serve.json";
const SERVE_LOAD_FILE: &str = "BENCH_serve_load.json";
/// Absolute slack added to the serve p99 ceiling: sub-millisecond tails
/// jitter by tens of µs run to run, which a pure fraction would flag.
const SERVE_P99_SLACK_US: f64 = 250.0;
const BASELINE_SEED: u64 = 42;
const DEFAULT_THRESHOLD: f64 = 0.15;
const DEFAULT_RUNS: usize = 3;

struct Options {
    dir: PathBuf,
    threshold: f64,
    runs: usize,
}

fn usage() -> String {
    "usage:\n  tomo-bench regression [--dir DIR] [--threshold FRAC] [--runs N]\n\n\
     Re-runs the committed BENCH_montecarlo.json workload points (and, when\n\
     present, BENCH_scale.json's smallest sweep point) and fails on >FRAC\n\
     (default 0.15) regression. Points needing more cores than available\n\
     are skipped; TOMO_BENCH_SKIP=1 skips the gate."
        .to_string()
}

fn parse_options(argv: &[String]) -> Result<Options, String> {
    if argv.first().map(String::as_str) != Some("regression") {
        return Err(usage());
    }
    let mut opts = Options {
        dir: PathBuf::from("."),
        threshold: DEFAULT_THRESHOLD,
        runs: DEFAULT_RUNS,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--dir" => {
                let v = argv.get(i + 1).ok_or("--dir needs a value")?;
                opts.dir = PathBuf::from(v);
                i += 2;
            }
            "--threshold" => {
                let v = argv.get(i + 1).ok_or("--threshold needs a value")?;
                let frac: f64 = v.parse().map_err(|_| format!("bad threshold {v:?}"))?;
                if !(0.0..1.0).contains(&frac) {
                    return Err("--threshold must be in [0, 1)".to_string());
                }
                opts.threshold = frac;
                i += 2;
            }
            "--runs" => {
                let v = argv.get(i + 1).ok_or("--runs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad run count {v:?}"))?;
                if n == 0 {
                    return Err("--runs must be at least 1".to_string());
                }
                opts.runs = n;
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

/// One recorded throughput point from the baseline file.
#[derive(Debug)]
struct BaselinePoint {
    threads: usize,
    trials_per_sec: f64,
    /// Cores present when the point was recorded (per-point override,
    /// falling back to the file-level `cores` field).
    cores: Option<u64>,
}

#[derive(Debug)]
struct Baseline {
    trials: u64,
    cores: Option<u64>,
    points: Vec<BaselinePoint>,
}

fn load_baseline(path: &Path) -> Result<Baseline, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let root = serde_json::parse_value(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let field_f64 = |v: &serde_json::Value, key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("{}: missing numeric {key:?}", path.display()))
    };
    let trials = field_f64(&root, "trials")? as u64;
    let cores = root.get("cores").and_then(serde_json::Value::as_f64);
    let points = root
        .get("points")
        .and_then(|p| match p {
            serde_json::Value::Array(items) => Some(items.as_slice()),
            _ => None,
        })
        .ok_or_else(|| format!("{}: missing \"points\" array", path.display()))?
        .iter()
        .map(|p| {
            Ok(BaselinePoint {
                threads: field_f64(p, "threads")? as usize,
                trials_per_sec: field_f64(p, "trials_per_sec")?,
                cores: p
                    .get("cores")
                    .and_then(serde_json::Value::as_f64)
                    .map(|c| c as u64),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    if points.is_empty() {
        return Err(format!("{}: no points to check", path.display()));
    }
    Ok(Baseline {
        trials,
        cores: cores.map(|c| c as u64),
        points,
    })
}

/// The `tomo-sim run fig7 --quick` workload the baseline records,
/// re-run in-process: same seed, same config, chosen thread count.
fn run_workload(threads: usize, runs: usize) -> Result<(f64, u64), String> {
    let config = fig7::Fig7Config {
        num_systems: 1,
        trials_per_system: 40,
        ..fig7::Fig7Config::default()
    };
    let exec = Executor::new(threads);
    let mut best = f64::INFINITY;
    let mut trials = 0u64;
    for _ in 0..runs {
        let start = Instant::now();
        let result = fig7::run(BASELINE_SEED, &config, &exec).map_err(|e| format!("fig7: {e}"))?;
        let secs = start.elapsed().as_secs_f64();
        trials = (result.wireline.trials + result.wireless.trials) as u64;
        best = best.min(secs);
    }
    Ok((best, trials))
}

/// The smallest committed scale-sweep point, reduced to what the gate
/// re-measures: identity (links/paths, for drift detection), the
/// recorded sparse-path seconds, and the cores it was recorded on.
#[derive(Debug)]
struct ScaleBaseline {
    links: u64,
    paths: u64,
    sparse_seconds: f64,
    cores: Option<u64>,
}

fn load_scale_baseline(path: &Path) -> Result<ScaleBaseline, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let root = serde_json::parse_value(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let first = root
        .get("points")
        .and_then(|p| match p {
            serde_json::Value::Array(items) => items.first(),
            _ => None,
        })
        .ok_or_else(|| format!("{}: missing non-empty \"points\" array", path.display()))?;
    let field = |key: &str| -> Result<f64, String> {
        first
            .get(key)
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("{}: point missing numeric {key:?}", path.display()))
    };
    Ok(ScaleBaseline {
        links: field("links")? as u64,
        paths: field("paths")? as u64,
        sparse_seconds: field("sparse_seconds")?,
        cores: first
            .get("cores")
            .and_then(serde_json::Value::as_f64)
            .map(|c| c as u64)
            .or_else(|| {
                root.get("cores")
                    .and_then(serde_json::Value::as_f64)
                    .map(|c| c as u64)
            }),
    })
}

/// Re-runs the baseline's smallest sweep point: the full default-config
/// workload at the 1000-link target (same derived seed as a full sweep,
/// dense baselines off — the gate times only the sparse path it checks).
fn run_scale_workload(runs: usize) -> Result<(f64, u64, u64), String> {
    // Default sweep with the cap lowered, NOT `sweep: vec![1_000]`: the
    // nested-prefix sweep derives its topology stream from the largest
    // *configured* target, so only this shape reproduces the committed
    // baseline's first point byte-for-byte.
    let gate_config = scale::ScaleConfig {
        max_links: 1_000,
        dense_baseline_max_links: 0,
        ..scale::ScaleConfig::default()
    };
    let mut best = f64::INFINITY;
    let mut identity = (0u64, 0u64);
    for _ in 0..runs {
        let result = scale::run(BASELINE_SEED, &gate_config).map_err(|e| format!("scale: {e}"))?;
        let p = &result.points[0];
        identity = (p.links as u64, p.paths as u64);
        let secs =
            p.gram_sparse_seconds + p.lp_revised_seconds + p.system_build_seconds.unwrap_or(0.0);
        best = best.min(secs);
    }
    Ok((best, identity.0, identity.1))
}

fn scale_gate(opts: &Options, available: usize) -> Result<bool, String> {
    let path = opts.dir.join(SCALE_FILE);
    if !path.exists() {
        println!("  {SCALE_FILE}: SKIP (not present)");
        return Ok(false);
    }
    let baseline = load_scale_baseline(&path)?;
    if let Some(cores) = baseline.cores {
        if cores > available as u64 {
            println!("  scale: SKIP (baseline recorded on {cores} cores, have {available})");
            return Ok(false);
        }
    }
    let (secs, links, paths) = run_scale_workload(opts.runs)?;
    if links != baseline.links || paths != baseline.paths {
        return Err(format!(
            "workload drift: baseline point has {}/{} links/paths, re-run produced {links}/{paths} — \
             regenerate {SCALE_FILE} with scripts/bench_trajectory.sh",
            baseline.links, baseline.paths
        ));
    }
    // Mirror the throughput gate: fail when the sparse path got slower
    // by more than the threshold fraction.
    let ceiling = baseline.sparse_seconds / (1.0 - opts.threshold);
    let verdict = if secs > ceiling { "FAIL" } else { "ok" };
    println!(
        "  scale {links} links: {secs:.3}s sparse path vs baseline {:.3}s (ceiling {ceiling:.3}s) — {verdict}",
        baseline.sparse_seconds
    );
    Ok(secs > ceiling)
}

/// Cold-vs-warm simplex wall time on the smallest scale point's budget
/// LP (`lp.simplex.warm` instrumentation path). Warm starts are a cache:
/// they must never make the stream *slower*. The gate re-solves the same
/// LP with a populated [`tomo_lp::WarmStart`] and fails only when the
/// warm solve costs more than 1.5x the cold one — a regression in basis
/// crash/reuse, not ordinary jitter.
fn warm_gate(opts: &Options) -> Result<bool, String> {
    if !tomo_lp::warm_enabled() {
        println!("  lp warm: SKIP (TOMO_LP_WARM disabled)");
        return Ok(false);
    }
    let lp = scale::budget_lp_workload(BASELINE_SEED, 1_000, 200)
        .map_err(|e| format!("warm gate: {e}"))?;
    let mut cold_best = f64::INFINITY;
    let mut cold_objective = 0.0;
    for _ in 0..opts.runs {
        let start = Instant::now();
        let solution = lp.solve().map_err(|e| format!("warm gate (cold): {e}"))?;
        cold_best = cold_best.min(start.elapsed().as_secs_f64());
        if !solution.is_optimal() {
            return Err(format!(
                "warm gate: cold budget LP unexpectedly {:?}",
                solution.status()
            ));
        }
        cold_objective = solution.objective_value();
    }
    let warm = tomo_lp::WarmStart::new();
    // First warm solve populates the basis cache; time the reuse path.
    lp.solve_warm(&warm)
        .map_err(|e| format!("warm gate (seed): {e}"))?;
    let mut warm_best = f64::INFINITY;
    for _ in 0..opts.runs {
        let start = Instant::now();
        let solution = lp
            .solve_warm(&warm)
            .map_err(|e| format!("warm gate (warm): {e}"))?;
        warm_best = warm_best.min(start.elapsed().as_secs_f64());
        let tol = 1e-6 * (1.0 + cold_objective.abs());
        if !solution.is_optimal() || (solution.objective_value() - cold_objective).abs() > tol {
            return Err(format!(
                "warm gate: warm solve diverged (status {:?}, objective {} vs cold {})",
                solution.status(),
                solution.objective_value(),
                cold_objective
            ));
        }
    }
    let ceiling = cold_best * 1.5;
    let verdict = if warm_best > ceiling { "FAIL" } else { "ok" };
    println!(
        "  lp warm: {warm_best:.3}s warm vs {cold_best:.3}s cold (ceiling {ceiling:.3}s) — {verdict}"
    );
    Ok(warm_best > ceiling)
}

/// The committed `tomo-serve` workload identity and gated tail.
#[derive(Debug)]
struct ServeBaseline {
    batches: u64,
    rows_per_batch: u64,
    query_p99_us: f64,
    slo_ms: f64,
    cores: Option<u64>,
}

fn load_serve_baseline(path: &Path) -> Result<ServeBaseline, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let root = serde_json::parse_value(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let field = |key: &str| -> Result<f64, String> {
        root.get(key)
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("{}: missing numeric {key:?}", path.display()))
    };
    Ok(ServeBaseline {
        batches: field("batches")? as u64,
        rows_per_batch: field("rows_per_batch")? as u64,
        query_p99_us: field("query_p99_us")?,
        slo_ms: field("slo_ms")?,
        cores: root
            .get("cores")
            .and_then(serde_json::Value::as_f64)
            .map(|c| c as u64),
    })
}

/// Re-runs the daemon ingest + concurrent-query workload; keeps the
/// best (lowest) p99 across runs, the same best-of-N discipline as the
/// throughput gates.
fn run_serve_workload(baseline: &ServeBaseline, runs: usize) -> (f64, u64) {
    let config = tomo_serve::bench::BenchConfig {
        batches: baseline.batches as usize,
        slo_ms: baseline.slo_ms,
    };
    let mut best_p99 = f64::INFINITY;
    let mut rows_per_batch = 0u64;
    for _ in 0..runs {
        let report = tomo_serve::bench::run(&config);
        rows_per_batch = report.rows_per_batch as u64;
        best_p99 = best_p99.min(report.query_p99_us);
    }
    (best_p99, rows_per_batch)
}

/// Gates the serve workload's p99 query latency: fail when the tail
/// blows the committed SLO outright, or regresses past the committed
/// baseline by more than the threshold fraction plus absolute slack.
fn serve_gate(opts: &Options, available: usize) -> Result<bool, String> {
    let path = opts.dir.join(SERVE_FILE);
    if !path.exists() {
        println!("  {SERVE_FILE}: SKIP (not present)");
        return Ok(false);
    }
    let baseline = load_serve_baseline(&path)?;
    if let Some(cores) = baseline.cores {
        if cores > available as u64 {
            println!("  serve: SKIP (baseline recorded on {cores} cores, have {available})");
            return Ok(false);
        }
    }
    let (p99, rows_per_batch) = run_serve_workload(&baseline, opts.runs);
    if rows_per_batch != baseline.rows_per_batch {
        return Err(format!(
            "workload drift: baseline has {} rows/batch, re-run produced {rows_per_batch} — \
             regenerate {SERVE_FILE} with scripts/bench_trajectory.sh",
            baseline.rows_per_batch
        ));
    }
    let slo_us = baseline.slo_ms * 1000.0;
    let ceiling = (baseline.query_p99_us / (1.0 - opts.threshold))
        .max(baseline.query_p99_us + SERVE_P99_SLACK_US);
    let failed = p99 >= slo_us || p99 > ceiling;
    let verdict = if failed { "FAIL" } else { "ok" };
    println!(
        "  serve p99: {p99:.1}µs vs baseline {:.1}µs (ceiling {ceiling:.1}µs, SLO {slo_us:.0}µs) — {verdict}",
        baseline.query_p99_us
    );
    Ok(failed)
}

/// One committed serve-load sweep point: the identity and the two
/// numbers the gate re-measures.
#[derive(Debug)]
struct ServeLoadPointBaseline {
    clients: u64,
    batches_per_sec: f64,
    query_p99_us: f64,
}

/// The committed multi-client serve-load workload.
#[derive(Debug)]
struct ServeLoadBaseline {
    batches_total: u64,
    groups: u64,
    shards: u64,
    slo_ms: f64,
    cores: Option<u64>,
    points: Vec<ServeLoadPointBaseline>,
}

fn load_serve_load_baseline(path: &Path) -> Result<ServeLoadBaseline, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let root = serde_json::parse_value(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let config = root
        .get("config")
        .ok_or_else(|| format!("{}: missing \"config\" object", path.display()))?;
    let field = |v: &serde_json::Value, key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("{}: missing numeric {key:?}", path.display()))
    };
    let points = root
        .get("points")
        .and_then(|p| match p {
            serde_json::Value::Array(items) => Some(items.as_slice()),
            _ => None,
        })
        .ok_or_else(|| format!("{}: missing \"points\" array", path.display()))?
        .iter()
        .map(|p| {
            Ok(ServeLoadPointBaseline {
                clients: field(p, "clients")? as u64,
                batches_per_sec: field(p, "batches_per_sec")?,
                query_p99_us: field(p, "query_p99_us")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    if points.is_empty() {
        return Err(format!("{}: no points to check", path.display()));
    }
    Ok(ServeLoadBaseline {
        batches_total: field(config, "batches_total")? as u64,
        groups: field(config, "groups")? as u64,
        shards: field(config, "shards")? as u64,
        slo_ms: field(config, "slo_ms")?,
        cores: root
            .get("cores")
            .and_then(serde_json::Value::as_f64)
            .map(|c| c as u64),
        points,
    })
}

/// Gates the multi-client serve-load sweep: re-runs the committed
/// workload (same client counts, batches, groups, shards), keeps the
/// best throughput and tail per point across runs, and fails on a
/// past-threshold throughput regression or a p99 at (or past) the SLO at
/// any client count. The sweep's correctness invariants (bit-identical
/// state, snapshot self-checks) are enforced by the run itself — any
/// violation surfaces as an error here, not a silent pass.
fn serve_load_gate(opts: &Options, available: usize) -> Result<bool, String> {
    let path = opts.dir.join(SERVE_LOAD_FILE);
    if !path.exists() {
        println!("  {SERVE_LOAD_FILE}: SKIP (not present)");
        return Ok(false);
    }
    let baseline = load_serve_load_baseline(&path)?;
    if let Some(cores) = baseline.cores {
        if cores > available as u64 {
            println!("  serve-load: SKIP (baseline recorded on {cores} cores, have {available})");
            return Ok(false);
        }
    }
    let config = tomo_sim::serve_load::ServeLoadConfig {
        client_counts: baseline.points.iter().map(|p| p.clients as usize).collect(),
        batches_total: baseline.batches_total as usize,
        groups: baseline.groups as usize,
        shards: baseline.shards as usize,
        slo_ms: baseline.slo_ms,
    };
    let mut best_tput = vec![0.0f64; baseline.points.len()];
    let mut best_p99 = vec![f64::INFINITY; baseline.points.len()];
    for _ in 0..opts.runs {
        let result =
            tomo_sim::serve_load::run(BASELINE_SEED, &config).map_err(|e| e.to_string())?;
        for (i, p) in result.points.iter().enumerate() {
            if p.clients as u64 != baseline.points[i].clients {
                return Err(format!(
                    "workload drift: baseline point {i} has {} clients, re-run produced {} — \
                     regenerate {SERVE_LOAD_FILE} with scripts/bench_trajectory.sh",
                    baseline.points[i].clients, p.clients
                ));
            }
            best_tput[i] = best_tput[i].max(p.batches_per_sec);
            best_p99[i] = best_p99[i].min(p.query_p99_us);
        }
    }
    let slo_us = baseline.slo_ms * 1000.0;
    let mut failed = false;
    for (i, b) in baseline.points.iter().enumerate() {
        let floor = b.batches_per_sec * (1.0 - opts.threshold);
        let point_failed = best_tput[i] < floor || best_p99[i] >= slo_us;
        let verdict = if point_failed { "FAIL" } else { "ok" };
        println!(
            "  serve-load {} clients: {:.0} batches/s vs baseline {:.0} (floor {:.0}), \
             p99 {:.1}µs vs baseline {:.1}µs (SLO {slo_us:.0}µs) — {verdict}",
            b.clients, best_tput[i], b.batches_per_sec, floor, best_p99[i], b.query_p99_us
        );
        if point_failed {
            failed = true;
        }
    }
    Ok(failed)
}

fn regression_gate(opts: &Options) -> Result<bool, String> {
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let baseline = load_baseline(&opts.dir.join(BASELINE_FILE))?;
    if let Some(cores) = baseline.cores {
        println!("baseline recorded on {cores} core(s); this machine has {available}");
    }
    let mut failed = false;
    for point in &baseline.points {
        let recorded_cores = point.cores.or(baseline.cores);
        if point.threads > available {
            println!(
                "  threads={}: SKIP (needs {} cores, have {available})",
                point.threads, point.threads
            );
            continue;
        }
        if let Some(cores) = recorded_cores {
            if point.threads as u64 > cores {
                // An oversubscribed baseline point measures scheduler
                // contention, not throughput; never gate on it.
                println!(
                    "  threads={}: SKIP (baseline oversubscribed: {} > {cores} cores)",
                    point.threads, point.threads
                );
                continue;
            }
        }
        let (secs, trials) = run_workload(point.threads, opts.runs)?;
        if trials != baseline.trials {
            return Err(format!(
                "workload drift: baseline ran {} trials, re-run produced {trials} — \
                 regenerate {BASELINE_FILE} with scripts/bench_trajectory.sh",
                baseline.trials
            ));
        }
        let current = trials as f64 / secs;
        let floor = point.trials_per_sec * (1.0 - opts.threshold);
        let verdict = if current < floor { "FAIL" } else { "ok" };
        println!(
            "  threads={}: {:.1} trials/s vs baseline {:.1} (floor {:.1}) — {verdict}",
            point.threads, current, point.trials_per_sec, floor
        );
        if current < floor {
            failed = true;
        }
    }
    if scale_gate(opts, available)? {
        failed = true;
    }
    if serve_gate(opts, available)? {
        failed = true;
    }
    if serve_load_gate(opts, available)? {
        failed = true;
    }
    if warm_gate(opts)? {
        failed = true;
    }
    Ok(failed)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&argv) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if std::env::var("TOMO_BENCH_SKIP").as_deref() == Ok("1") {
        println!("tomo-bench regression: skipped (TOMO_BENCH_SKIP=1)");
        return ExitCode::SUCCESS;
    }
    match regression_gate(&opts) {
        Ok(false) => {
            println!("tomo-bench regression: ok");
            ExitCode::SUCCESS
        }
        Ok(true) => {
            eprintln!(
                "tomo-bench regression: throughput regressed more than {:.0}% — \
                 investigate, or regenerate baselines with scripts/bench_trajectory.sh",
                opts.threshold * 100.0
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("tomo-bench regression: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn requires_the_regression_subcommand() {
        assert!(parse_options(&argv(&[])).is_err());
        assert!(parse_options(&argv(&["bench"])).is_err());
        assert!(parse_options(&argv(&["regression"])).is_ok());
    }

    #[test]
    fn flags_are_validated() {
        let o = parse_options(&argv(&[
            "regression",
            "--dir",
            "baselines",
            "--threshold",
            "0.2",
            "--runs",
            "1",
        ]))
        .unwrap();
        assert_eq!(o.dir, PathBuf::from("baselines"));
        assert!((o.threshold - 0.2).abs() < 1e-12);
        assert_eq!(o.runs, 1);
        assert!(parse_options(&argv(&["regression", "--threshold", "1.5"])).is_err());
        assert!(parse_options(&argv(&["regression", "--runs", "0"])).is_err());
        assert!(parse_options(&argv(&["regression", "--nope"])).is_err());
    }

    #[test]
    fn baseline_parses_committed_shape() {
        let dir = std::env::temp_dir().join("tomo_bench_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BASELINE_FILE);
        std::fs::write(
            &path,
            r#"{
              "workload": "tomo-sim run fig7 --quick --seed 42",
              "trials": 80,
              "cores": 1,
              "runs_per_point": 3,
              "points": [
                {"threads": 1, "wall_secs": 2.8, "trials_per_sec": 28.0, "cores": 1}
              ]
            }"#,
        )
        .unwrap();
        let b = load_baseline(&path).unwrap();
        assert_eq!(b.trials, 80);
        assert_eq!(b.cores, Some(1));
        assert_eq!(b.points.len(), 1);
        assert_eq!(b.points[0].threads, 1);
        assert_eq!(b.points[0].cores, Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn baseline_rejects_missing_fields() {
        let dir = std::env::temp_dir().join("tomo_bench_baseline_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BASELINE_FILE);
        std::fs::write(&path, r#"{"trials": 80}"#).unwrap();
        assert!(load_baseline(&path).unwrap_err().contains("points"));
        std::fs::write(&path, r#"{"points": []}"#).unwrap();
        assert!(load_baseline(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scale_baseline_parses_committed_shape() {
        let dir = std::env::temp_dir().join("tomo_bench_scale_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SCALE_FILE);
        std::fs::write(
            &path,
            r#"{
              "workload": "tomo-sim run scale --seed 42",
              "seed": 42,
              "cores": 1,
              "points": [
                {"links": 1005, "paths": 3005, "sparse_seconds": 0.11, "cores": 1},
                {"links": 2015, "paths": 4015, "sparse_seconds": 0.78}
              ]
            }"#,
        )
        .unwrap();
        let b = load_scale_baseline(&path).unwrap();
        assert_eq!(b.links, 1005);
        assert_eq!(b.paths, 3005);
        assert!((b.sparse_seconds - 0.11).abs() < 1e-12);
        assert_eq!(b.cores, Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scale_baseline_rejects_missing_fields() {
        let dir = std::env::temp_dir().join("tomo_bench_scale_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SCALE_FILE);
        std::fs::write(&path, r#"{"points": []}"#).unwrap();
        assert!(load_scale_baseline(&path).unwrap_err().contains("points"));
        std::fs::write(&path, r#"{"points": [{"links": 10, "paths": 20}]}"#).unwrap();
        assert!(load_scale_baseline(&path)
            .unwrap_err()
            .contains("sparse_seconds"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_baseline_parses_committed_shape() {
        let dir = std::env::temp_dir().join("tomo_bench_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SERVE_FILE);
        std::fs::write(
            &path,
            r#"{
              "workload": "tomo-serve bench --batches 400",
              "cores": 2,
              "batches": 400, "rows_per_batch": 8, "ingest_secs": 0.21,
              "batches_per_sec": 1900.0, "rows_per_sec": 15200.0,
              "queries": 410, "query_p50_us": 9.0, "query_p99_us": 31.0,
              "slo_ms": 5, "slo_met": true
            }"#,
        )
        .unwrap();
        let b = load_serve_baseline(&path).unwrap();
        assert_eq!(b.batches, 400);
        assert_eq!(b.rows_per_batch, 8);
        assert!((b.query_p99_us - 31.0).abs() < 1e-12);
        assert!((b.slo_ms - 5.0).abs() < 1e-12);
        assert_eq!(b.cores, Some(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_baseline_rejects_missing_fields() {
        let dir = std::env::temp_dir().join("tomo_bench_serve_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SERVE_FILE);
        std::fs::write(&path, r#"{"batches": 400, "rows_per_batch": 8}"#).unwrap();
        assert!(load_serve_baseline(&path)
            .unwrap_err()
            .contains("query_p99_us"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_load_baseline_parses_committed_shape() {
        let dir = std::env::temp_dir().join("tomo_bench_serve_load_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SERVE_LOAD_FILE);
        std::fs::write(
            &path,
            r#"{
              "seed": 42,
              "cores": 1,
              "config": {
                "client_counts": [1, 4], "batches_total": 4096,
                "groups": 8, "shards": 4, "slo_ms": 5.0
              },
              "points": [
                {"clients": 1, "batches_per_sec": 90000.0, "query_p99_us": 40.0},
                {"clients": 4, "batches_per_sec": 85000.0, "query_p99_us": 55.0}
              ]
            }"#,
        )
        .unwrap();
        let b = load_serve_load_baseline(&path).unwrap();
        assert_eq!(b.batches_total, 4096);
        assert_eq!(b.groups, 8);
        assert_eq!(b.shards, 4);
        assert!((b.slo_ms - 5.0).abs() < 1e-12);
        assert_eq!(b.cores, Some(1));
        assert_eq!(b.points.len(), 2);
        assert_eq!(b.points[1].clients, 4);
        assert!((b.points[1].batches_per_sec - 85000.0).abs() < 1e-9);
        assert!((b.points[0].query_p99_us - 40.0).abs() < 1e-12);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_load_baseline_rejects_missing_fields() {
        let dir = std::env::temp_dir().join("tomo_bench_serve_load_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SERVE_LOAD_FILE);
        std::fs::write(&path, r#"{"points": []}"#).unwrap();
        assert!(load_serve_load_baseline(&path)
            .unwrap_err()
            .contains("config"));
        std::fs::write(
            &path,
            r#"{"config": {"batches_total": 64, "groups": 4, "shards": 2, "slo_ms": 5.0},
                "points": []}"#,
        )
        .unwrap();
        assert!(load_serve_load_baseline(&path)
            .unwrap_err()
            .contains("no points"));
        std::fs::write(
            &path,
            r#"{"config": {"batches_total": 64, "groups": 4, "shards": 2, "slo_ms": 5.0},
                "points": [{"clients": 1, "batches_per_sec": 100.0}]}"#,
        )
        .unwrap();
        assert!(load_serve_load_baseline(&path)
            .unwrap_err()
            .contains("query_p99_us"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn workload_reruns_the_quick_fig7_trial_count() {
        // One run is enough to pin the trial count the gate checks.
        let (secs, trials) = run_workload(1, 1).unwrap();
        assert!(secs > 0.0);
        assert_eq!(trials, 80);
    }
}
