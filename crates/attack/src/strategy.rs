//! The three scapegoating strategies (Section III-C).

use tomo_core::TomographySystem;
use tomo_graph::LinkId;
use tomo_linalg::Vector;
use tomo_lp::WarmStart;
use tomo_obs::{LazyCounter, LazyHistogram};

use crate::attacker::AttackerSet;
use crate::manipulation::{LinkGoal, ManipulationProblem};
use crate::outcome::AttackOutcome;
use crate::scenario::AttackScenario;
use crate::AttackError;

static CHOSEN_FEASIBLE: LazyCounter = LazyCounter::new("attack.chosen_victim.feasible");
static CHOSEN_INFEASIBLE: LazyCounter = LazyCounter::new("attack.chosen_victim.infeasible");
static CHOSEN_DAMAGE: LazyHistogram = LazyHistogram::new("attack.chosen_victim.damage");
static MAXDMG_FEASIBLE: LazyCounter = LazyCounter::new("attack.max_damage.feasible");
static MAXDMG_INFEASIBLE: LazyCounter = LazyCounter::new("attack.max_damage.infeasible");
static MAXDMG_DAMAGE: LazyHistogram = LazyHistogram::new("attack.max_damage.damage");
static OBFUSC_FEASIBLE: LazyCounter = LazyCounter::new("attack.obfuscation.feasible");
static OBFUSC_INFEASIBLE: LazyCounter = LazyCounter::new("attack.obfuscation.infeasible");
static OBFUSC_DAMAGE: LazyHistogram = LazyHistogram::new("attack.obfuscation.damage");

/// Bumps the per-strategy feasible/infeasible counter and, on success,
/// records the achieved damage.
fn record_outcome(
    feasible: &LazyCounter,
    infeasible: &LazyCounter,
    damage: &LazyHistogram,
    outcome: &AttackOutcome,
) {
    match outcome.success() {
        Some(s) => {
            feasible.inc();
            damage.record(s.damage);
        }
        None => infeasible.inc(),
    }
}

/// Chosen-victim scapegoating (Eq. 4-7): frame exactly the given victim
/// links while every attacker-controlled link stays normal-looking, and
/// maximize the damage `‖m‖₁`.
///
/// ```
/// use tomo_attack::{attacker::AttackerSet, scenario::AttackScenario, strategy};
/// use tomo_core::{fig1, LinkState};
/// use tomo_linalg::Vector;
///
/// # fn main() -> Result<(), tomo_attack::AttackError> {
/// let system = fig1::fig1_system().unwrap();
/// let topo = fig1::fig1_topology();
/// let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
/// let x = Vector::filled(10, 10.0);
/// let outcome = strategy::chosen_victim(
///     &system, &attackers, &AttackScenario::paper_defaults(), &x,
///     &[topo.paper_link(10)],
/// )?;
/// let s = outcome.success().expect("feasible on Fig. 1");
/// assert_eq!(s.states[9], LinkState::Abnormal);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`AttackError::NoVictims`] for an empty victim set,
/// * [`AttackError::VictimControlledByAttacker`] if `L_s ∩ L_m ≠ ∅`
///   (Eq. 7),
/// * [`AttackError::UnknownVictim`] / construction errors.
pub fn chosen_victim(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    victims: &[LinkId],
) -> Result<AttackOutcome, AttackError> {
    chosen_victim_warm(system, attackers, scenario, true_metrics, victims, None)
}

/// [`chosen_victim`] with an optional shared simplex [`WarmStart`] basis
/// cache for Monte-Carlo streams of structurally identical LPs. Results
/// are decision-identical to the cold path (same feasibility verdict,
/// objective within solver tolerance) but not bit-identical — see
/// [`ManipulationProblem::with_warm_start`].
///
/// # Errors
///
/// Same contract as [`chosen_victim`].
pub fn chosen_victim_warm(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    victims: &[LinkId],
    warm: Option<&WarmStart>,
) -> Result<AttackOutcome, AttackError> {
    if victims.is_empty() {
        return Err(AttackError::NoVictims);
    }
    for &v in victims {
        if v.index() >= system.num_links() {
            return Err(AttackError::UnknownVictim { link: v });
        }
        if attackers.controls_link(v) {
            return Err(AttackError::VictimControlledByAttacker { link: v });
        }
    }
    let mut prob = ManipulationProblem::new(system, attackers, *scenario, true_metrics)?;
    if let Some(w) = warm {
        prob = prob.with_warm_start(w);
    }
    let outcome = solve_chosen_victim(&prob, attackers, victims)?;
    record_outcome(
        &CHOSEN_FEASIBLE,
        &CHOSEN_INFEASIBLE,
        &CHOSEN_DAMAGE,
        &outcome,
    );
    Ok(outcome)
}

/// Inner chosen-victim solve reusing an existing LP factory (avoids
/// re-factorizing when scanning many victims).
fn solve_chosen_victim(
    prob: &ManipulationProblem<'_>,
    attackers: &AttackerSet,
    victims: &[LinkId],
) -> Result<AttackOutcome, AttackError> {
    let mut goals: Vec<(LinkId, LinkGoal)> =
        victims.iter().map(|&v| (v, LinkGoal::Abnormal)).collect();
    for &l in attackers.controlled_links() {
        goals.push((l, LinkGoal::Normal));
    }
    prob.solve(&goals, victims)
}

/// Chosen-victim scapegoating with *exclusive framing*: like
/// [`chosen_victim`], but every non-victim link — not only the
/// attacker-controlled ones — is additionally constrained to classify
/// *normal*, so the blame points unambiguously at the victims.
///
/// This is the variant behind the paper's Fig. 4, where links 1-9 all
/// sit visibly below the normal threshold and only link 10 spikes. It
/// trades damage for precision: its optimum never exceeds
/// [`chosen_victim`]'s on the same instance.
///
/// # Errors
///
/// Same contract as [`chosen_victim`].
pub fn chosen_victim_exclusive(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    victims: &[LinkId],
) -> Result<AttackOutcome, AttackError> {
    if victims.is_empty() {
        return Err(AttackError::NoVictims);
    }
    for &v in victims {
        if v.index() >= system.num_links() {
            return Err(AttackError::UnknownVictim { link: v });
        }
        if attackers.controls_link(v) {
            return Err(AttackError::VictimControlledByAttacker { link: v });
        }
    }
    let prob = ManipulationProblem::new(system, attackers, *scenario, true_metrics)?;
    let goals: Vec<(LinkId, LinkGoal)> = (0..system.num_links())
        .map(LinkId)
        .map(|l| {
            if victims.contains(&l) {
                (l, LinkGoal::Abnormal)
            } else {
                (l, LinkGoal::NormalPlausible)
            }
        })
        .collect();
    let outcome = prob.solve(&goals, victims)?;
    record_outcome(
        &CHOSEN_FEASIBLE,
        &CHOSEN_INFEASIBLE,
        &CHOSEN_DAMAGE,
        &outcome,
    );
    Ok(outcome)
}

/// Maximum-damage scapegoating (Eq. 8): search all single-link victim
/// candidates `l ∉ L_m` and return the feasible attack with the largest
/// damage.
///
/// Enumerating singletons attains the optimum of Eq. (8): a larger victim
/// set only adds constraints, so it can never beat its best singleton
/// subset — yet the returned attack may still push *additional* links
/// over `b_u` as a side effect, exactly as the paper's Fig. 5 shows two
/// abnormal links.
///
/// ```
/// use tomo_attack::{attacker::AttackerSet, scenario::AttackScenario, strategy};
/// use tomo_core::fig1;
/// use tomo_linalg::Vector;
///
/// # fn main() -> Result<(), tomo_attack::AttackError> {
/// let system = fig1::fig1_system().unwrap();
/// let topo = fig1::fig1_topology();
/// let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
/// let x = Vector::filled(10, 10.0);
/// let best = strategy::max_damage(
///     &system, &attackers, &AttackScenario::paper_defaults(), &x,
/// )?;
/// assert!(best.success().expect("feasible").damage > 0.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates construction errors; an exhausted search returns
/// [`AttackOutcome::Infeasible`].
pub fn max_damage(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
) -> Result<AttackOutcome, AttackError> {
    max_damage_warm(system, attackers, scenario, true_metrics, None)
}

/// [`max_damage`] with an optional shared simplex [`WarmStart`] basis
/// cache. The victim scan solves one structurally identical LP per
/// candidate, so even a single call benefits: the second candidate
/// already reuses the first one's basis. Decision-identical to the cold
/// path, not bit-identical.
///
/// # Errors
///
/// Same contract as [`max_damage`].
pub fn max_damage_warm(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    warm: Option<&WarmStart>,
) -> Result<AttackOutcome, AttackError> {
    let mut prob = ManipulationProblem::new(system, attackers, *scenario, true_metrics)?;
    if let Some(w) = warm {
        prob = prob.with_warm_start(w);
    }
    let b_u = scenario.thresholds.upper();
    let mut best: Option<AttackOutcome> = None;
    for j in 0..system.num_links() {
        let victim = LinkId(j);
        if attackers.controls_link(victim) {
            continue;
        }
        // Cheap bound: if even saturating every attacked path cannot lift
        // this link's estimate past b_u, skip the LP.
        let needed = b_u + scenario.margin - prob.baseline_estimate()[j];
        if prob.max_upward_shift(victim) < needed {
            continue;
        }
        let outcome = solve_chosen_victim(&prob, attackers, &[victim])?;
        if let AttackOutcome::Success(ref s) = outcome {
            let better = match &best {
                Some(AttackOutcome::Success(b)) => s.damage > b.damage,
                _ => true,
            };
            if better {
                best = Some(outcome);
            }
        }
    }
    let outcome = best.unwrap_or(AttackOutcome::Infeasible);
    record_outcome(
        &MAXDMG_FEASIBLE,
        &MAXDMG_INFEASIBLE,
        &MAXDMG_DAMAGE,
        &outcome,
    );
    Ok(outcome)
}

/// Minimum-effort scapegoating: the dual of [`chosen_victim`] — satisfy
/// exactly the same framing constraints (victims abnormal, attacker
/// links normal) while **minimizing** the total manipulation `‖m‖₁`.
///
/// The paper's attacker maximizes damage; a *covert* attacker who only
/// wants the operator to chase the scapegoat would minimize footprint
/// instead: less injected delay means less collateral evidence
/// (smaller residuals under noise, fewer affected flows). Feasibility is
/// identical to [`chosen_victim`] — only the objective differs.
///
/// # Errors
///
/// Same contract as [`chosen_victim`].
pub fn min_effort_chosen_victim(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    victims: &[LinkId],
) -> Result<AttackOutcome, AttackError> {
    if victims.is_empty() {
        return Err(AttackError::NoVictims);
    }
    for &v in victims {
        if v.index() >= system.num_links() {
            return Err(AttackError::UnknownVictim { link: v });
        }
        if attackers.controls_link(v) {
            return Err(AttackError::VictimControlledByAttacker { link: v });
        }
    }
    let prob = ManipulationProblem::new(system, attackers, *scenario, true_metrics)?;
    let mut goals: Vec<(LinkId, LinkGoal)> =
        victims.iter().map(|&v| (v, LinkGoal::Abnormal)).collect();
    for &l in attackers.controlled_links() {
        goals.push((l, LinkGoal::Normal));
    }
    prob.solve_minimizing(&goals, victims)
}

/// Node scapegoating: frame a *node* rather than a link — the paper's
/// Section II-D question ("can B and C make some other node like D the
/// scapegoat?") and the Fig. 1 narrative ("link 1 or its end-node A
/// might have some issues").
///
/// The victim set is every link incident to `victim_node` that the
/// attackers do not control; making them all look abnormal points the
/// diagnosis at the node itself.
///
/// # Errors
///
/// * [`AttackError::NoVictims`] if every incident link is
///   attacker-controlled (framing would implicate the attackers) or the
///   node is isolated,
/// * [`AttackError::UnknownAttacker`] if `victim_node` is not in the
///   graph (reusing the unknown-node error shape).
pub fn frame_node(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    victim_node: tomo_graph::NodeId,
) -> Result<AttackOutcome, AttackError> {
    if victim_node.index() >= system.graph().num_nodes() {
        return Err(AttackError::UnknownAttacker { node: victim_node });
    }
    let victims: Vec<LinkId> = system
        .graph()
        .incident_links(victim_node)
        .expect("node validated")
        .into_iter()
        .filter(|&l| !attackers.controls_link(l))
        .collect();
    if victims.is_empty() {
        return Err(AttackError::NoVictims);
    }
    chosen_victim(system, attackers, scenario, true_metrics, &victims)
}

/// Obfuscation (Eq. 9-11): make a substantial set of links — the victims
/// `L_s` *and* the attacker links `L_m` — classify as *uncertain*, hiding
/// any clear outlier, while maximizing damage.
///
/// The victim set is searched over nested prefixes of the manipulable
/// non-attacker links (those whose estimate the attackers can lift into
/// the band at all), ordered by decreasing liftability. Prefixes are
/// nested, so LP feasibility is monotone in the prefix length — a longer
/// prefix only adds constraints — and the largest feasible prefix is
/// found by binary search (`O(log |L|)` LP solves).
///
/// Returns [`AttackOutcome::Infeasible`] if no victim set of size
/// ≥ `min_victims` works.
///
/// ```
/// use tomo_attack::{attacker::AttackerSet, scenario::AttackScenario, strategy};
/// use tomo_core::{fig1, LinkState};
/// use tomo_linalg::Vector;
///
/// # fn main() -> Result<(), tomo_attack::AttackError> {
/// let system = fig1::fig1_system().unwrap();
/// let topo = fig1::fig1_topology();
/// let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
/// let x = Vector::filled(10, 10.0);
/// let outcome = strategy::obfuscation(
///     &system, &attackers, &AttackScenario::paper_defaults(), &x, 3,
/// )?;
/// // Every link of Fig. 1 ends up in the uncertain band.
/// let s = outcome.success().expect("feasible");
/// assert!(s.states.iter().all(|&st| st == LinkState::Uncertain));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates construction errors.
pub fn obfuscation(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    min_victims: usize,
) -> Result<AttackOutcome, AttackError> {
    obfuscation_warm(system, attackers, scenario, true_metrics, min_victims, None)
}

/// [`obfuscation`] with an optional shared simplex [`WarmStart`] basis
/// cache: the binary search over victim prefixes re-solves similar LPs,
/// and cross-trial sharing reuses bases between Monte-Carlo trials with
/// the same coalition shape. Decision-identical to the cold path, not
/// bit-identical.
///
/// # Errors
///
/// Same contract as [`obfuscation`].
pub fn obfuscation_warm(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    min_victims: usize,
    warm: Option<&WarmStart>,
) -> Result<AttackOutcome, AttackError> {
    let outcome = obfuscation_inner(system, attackers, scenario, true_metrics, min_victims, warm)?;
    record_outcome(
        &OBFUSC_FEASIBLE,
        &OBFUSC_INFEASIBLE,
        &OBFUSC_DAMAGE,
        &outcome,
    );
    Ok(outcome)
}

fn obfuscation_inner(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    min_victims: usize,
    warm: Option<&WarmStart>,
) -> Result<AttackOutcome, AttackError> {
    let mut prob = ManipulationProblem::new(system, attackers, *scenario, true_metrics)?;
    if let Some(w) = warm {
        prob = prob.with_warm_start(w);
    }
    let b_l = scenario.thresholds.lower();

    // Candidate victims: non-attacker links the attackers can lift into
    // the uncertain band, sorted by decreasing liftability.
    let mut candidates: Vec<(LinkId, f64)> = (0..system.num_links())
        .map(LinkId)
        .filter(|&l| !attackers.controls_link(l))
        .map(|l| (l, prob.max_upward_shift(l)))
        .filter(|&(l, shift)| {
            let needed = b_l + scenario.margin - prob.baseline_estimate()[l.index()];
            shift >= needed
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });

    let floor = min_victims.max(1);
    if candidates.len() < floor {
        return Ok(AttackOutcome::Infeasible);
    }

    let solve_prefix = |k: usize| -> Result<AttackOutcome, AttackError> {
        let victims: Vec<LinkId> = candidates[..k].iter().map(|&(l, _)| l).collect();
        let goals: Vec<(LinkId, LinkGoal)> = victims
            .iter()
            .map(|&l| (l, LinkGoal::Uncertain))
            .chain(
                attackers
                    .controlled_links()
                    .iter()
                    .map(|&l| (l, LinkGoal::Uncertain)),
            )
            .collect();
        prob.solve(&goals, &victims)
    };

    // Fast paths: the full set, then the minimum viable set.
    let full = solve_prefix(candidates.len())?;
    if full.is_success() {
        return Ok(full);
    }
    if !solve_prefix(floor)?.is_success() {
        return Ok(AttackOutcome::Infeasible);
    }
    // Binary search the largest feasible prefix in [floor, len).
    let (mut lo, mut hi) = (floor, candidates.len());
    let mut best = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let outcome = solve_prefix(mid)?;
        if outcome.is_success() {
            best = Some(outcome);
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(best.unwrap_or(AttackOutcome::Infeasible))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::params::OBFUSCATION_MIN_VICTIMS;
    use tomo_core::{fig1, LinkState};

    fn setup() -> (
        TomographySystem,
        tomo_graph::topology::Fig1Topology,
        AttackerSet,
        AttackScenario,
        Vector,
    ) {
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let scenario = AttackScenario::paper_defaults();
        let x = Vector::filled(10, 10.0);
        (system, topo, attackers, scenario, x)
    }

    #[test]
    fn fig4_chosen_victim_on_link_10() {
        // The paper's Fig. 4: B and C frame link 10, which they do NOT
        // perfectly cut — the attack must still succeed.
        let (system, topo, attackers, scenario, x) = setup();
        let victim = topo.paper_link(10);
        let cut = crate::cut::analyze_cut(&system, &attackers, &[victim]);
        assert!(!cut.is_perfect(), "link 10 must be an imperfect-cut victim");

        let outcome = chosen_victim(&system, &attackers, &scenario, &x, &[victim]).unwrap();
        let s = outcome.success().expect("Fig. 4 attack is feasible");
        assert_eq!(s.states[victim.index()], LinkState::Abnormal);
        for &l in attackers.controlled_links() {
            assert_eq!(s.states[l.index()], LinkState::Normal);
        }
        assert!(s.damage > 0.0);
    }

    #[test]
    fn exclusive_framing_blames_only_the_victim() {
        let (system, topo, attackers, scenario, x) = setup();
        let victim = topo.paper_link(10);
        let outcome =
            chosen_victim_exclusive(&system, &attackers, &scenario, &x, &[victim]).unwrap();
        let s = outcome.success().expect("feasible on Fig. 1");
        // Exactly one abnormal link: the victim.
        for (j, &st) in s.states.iter().enumerate() {
            if j == victim.index() {
                assert_eq!(st, LinkState::Abnormal);
            } else {
                assert_eq!(st, LinkState::Normal, "link {}", j + 1);
            }
        }
        // Less damage than the unconstrained variant.
        let plain = chosen_victim(&system, &attackers, &scenario, &x, &[victim])
            .unwrap()
            .into_success()
            .unwrap();
        assert!(s.damage <= plain.damage + 1e-6);
        assert!(s.damage > 0.0);
    }

    #[test]
    fn exclusive_framing_validates_like_plain() {
        let (system, topo, attackers, scenario, x) = setup();
        assert!(matches!(
            chosen_victim_exclusive(&system, &attackers, &scenario, &x, &[]),
            Err(AttackError::NoVictims)
        ));
        assert!(matches!(
            chosen_victim_exclusive(&system, &attackers, &scenario, &x, &[topo.paper_link(5)]),
            Err(AttackError::VictimControlledByAttacker { .. })
        ));
    }

    #[test]
    fn chosen_victim_rejects_controlled_and_empty_victims() {
        let (system, topo, attackers, scenario, x) = setup();
        assert!(matches!(
            chosen_victim(&system, &attackers, &scenario, &x, &[]),
            Err(AttackError::NoVictims)
        ));
        assert!(matches!(
            chosen_victim(&system, &attackers, &scenario, &x, &[topo.paper_link(5)]),
            Err(AttackError::VictimControlledByAttacker { .. })
        ));
        assert!(matches!(
            chosen_victim(&system, &attackers, &scenario, &x, &[LinkId(42)]),
            Err(AttackError::UnknownVictim { .. })
        ));
    }

    #[test]
    fn fig5_max_damage_beats_every_chosen_victim() {
        let (system, topo, attackers, scenario, x) = setup();
        let best = max_damage(&system, &attackers, &scenario, &x)
            .unwrap()
            .into_success()
            .expect("Fig. 5 attack is feasible");

        // Maximum-damage dominates each individual chosen-victim attack.
        for n in [1, 9, 10] {
            let victim = topo.paper_link(n);
            let outcome = chosen_victim(&system, &attackers, &scenario, &x, &[victim]).unwrap();
            if let Some(s) = outcome.success() {
                assert!(
                    best.damage >= s.damage - 1e-6,
                    "victim {n}: {} > {}",
                    s.damage,
                    best.damage
                );
            }
        }
        // Attacker links still look normal.
        for &l in attackers.controlled_links() {
            assert_eq!(best.states[l.index()], LinkState::Normal);
        }
        // At least one non-attacker link is framed abnormal.
        assert!(best
            .states
            .iter()
            .enumerate()
            .any(|(j, &st)| st == LinkState::Abnormal && !attackers.controls_link(LinkId(j))));
    }

    #[test]
    fn fig6_obfuscation_pushes_all_links_into_the_band() {
        // Fig. 1 has only 3 non-attacker links (1, 9, 10), so the maximum
        // victim quota here is 3 — the paper's ≥5 quota applies to its
        // 100-node Fig. 8 experiments. With L_s = {1, 9, 10} and
        // L_m = {2..8}, L_o covers all 10 links: Fig. 6 shows exactly
        // this, every estimate inside the uncertain band.
        let (system, _topo, attackers, scenario, x) = setup();
        let outcome = obfuscation(&system, &attackers, &scenario, &x, 3).unwrap();
        let s = outcome.success().expect("Fig. 6 attack is feasible");
        assert_eq!(s.victims.len(), 3);
        // Every link of the network is uncertain — no clear outlier.
        for (j, &st) in s.states.iter().enumerate() {
            assert_eq!(st, LinkState::Uncertain, "link index {j}");
        }
        assert!(s.damage > 0.0);
        // The ≥5 quota is indeed impossible here (sanity for Fig. 8 logic).
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(OBFUSCATION_MIN_VICTIMS > 3);
        }
    }

    #[test]
    fn obfuscation_with_impossible_quota_is_infeasible() {
        let (system, _topo, attackers, scenario, x) = setup();
        // More victims than non-attacker links exist (10 − 7 = 3).
        let outcome = obfuscation(&system, &attackers, &scenario, &x, 4).unwrap();
        assert!(!outcome.is_success());
    }

    #[test]
    fn frame_node_makes_a_the_scapegoat() {
        // The paper's running narrative: B and C mislead the operator
        // into believing "link 1 or its end-node A might have some
        // issues". Frame node A: its only non-attacker link is link 1
        // (M1-A), perfectly cut by {B, C}.
        let (system, topo, attackers, scenario, x) = setup();
        let a = topo.node("A");
        let outcome = frame_node(&system, &attackers, &scenario, &x, a).unwrap();
        let s = outcome.success().expect("A can be framed");
        assert_eq!(s.victims, vec![topo.paper_link(1)]);
        assert_eq!(s.states[topo.paper_link(1).index()], LinkState::Abnormal);
        for &l in attackers.controlled_links() {
            assert_eq!(s.states[l.index()], LinkState::Normal);
        }
    }

    #[test]
    fn frame_node_d_uses_its_free_links() {
        // "Can B and C make some other node like D the scapegoat?"
        // D's links: 5 (B-D, controlled), 7 (C-D, controlled), 9 (M3-D),
        // 10 (D-M2). The victim set must be exactly {9, 10}.
        let (system, topo, attackers, scenario, x) = setup();
        let d = topo.node("D");
        let outcome = frame_node(&system, &attackers, &scenario, &x, d).unwrap();
        let s = outcome.success().expect("D can be framed");
        let mut victims = s.victims.clone();
        victims.sort();
        assert_eq!(victims, vec![topo.paper_link(9), topo.paper_link(10)]);
        for v in victims {
            assert_eq!(s.states[v.index()], LinkState::Abnormal);
        }
    }

    #[test]
    fn frame_node_validation() {
        let (system, topo, attackers, scenario, x) = setup();
        // Framing an attacker's own node: all incident links controlled.
        let b = topo.node("B");
        assert!(matches!(
            frame_node(&system, &attackers, &scenario, &x, b),
            Err(AttackError::NoVictims)
        ));
        // Unknown node.
        assert!(frame_node(&system, &attackers, &scenario, &x, tomo_graph::NodeId(99)).is_err());
    }

    #[test]
    fn min_effort_is_feasible_iff_chosen_victim_is_and_cheaper() {
        let (system, topo, attackers, scenario, x) = setup();
        for n in [1usize, 9, 10] {
            let victim = topo.paper_link(n);
            let plain = chosen_victim(&system, &attackers, &scenario, &x, &[victim]).unwrap();
            let covert =
                min_effort_chosen_victim(&system, &attackers, &scenario, &x, &[victim]).unwrap();
            assert_eq!(plain.is_success(), covert.is_success(), "victim {n}");
            if let (Some(p), Some(c)) = (plain.success(), covert.success()) {
                assert!(
                    c.damage <= p.damage + 1e-6,
                    "victim {n}: covert {} > damage-max {}",
                    c.damage,
                    p.damage
                );
                assert!(c.damage > 0.0, "framing requires nonzero manipulation");
                // The frame still works.
                assert_eq!(c.states[victim.index()], LinkState::Abnormal);
                for &l in attackers.controlled_links() {
                    assert_eq!(c.states[l.index()], LinkState::Normal);
                }
            }
        }
    }

    #[test]
    fn min_effort_validation_matches_chosen_victim() {
        let (system, topo, attackers, scenario, x) = setup();
        assert!(matches!(
            min_effort_chosen_victim(&system, &attackers, &scenario, &x, &[]),
            Err(AttackError::NoVictims)
        ));
        assert!(matches!(
            min_effort_chosen_victim(&system, &attackers, &scenario, &x, &[topo.paper_link(5)]),
            Err(AttackError::VictimControlledByAttacker { .. })
        ));
    }

    #[test]
    fn single_attacker_max_damage_on_fig1() {
        // Fig. 8's premise: "even one single attacker is likely to
        // succeed". Node B alone controls links 2, 3, 5, 6.
        let (system, topo, _, scenario, x) = setup();
        let b = topo.node("B");
        let attackers = AttackerSet::new(&system, vec![b]).unwrap();
        let outcome = max_damage(&system, &attackers, &scenario, &x).unwrap();
        assert!(outcome.is_success(), "single attacker B should succeed");
    }

    #[test]
    fn manipulations_always_satisfy_constraint_1() {
        let (system, _topo, attackers, scenario, x) = setup();
        let outcomes = [
            max_damage(&system, &attackers, &scenario, &x).unwrap(),
            obfuscation(&system, &attackers, &scenario, &x, 3).unwrap(),
        ];
        for o in outcomes.iter().filter_map(|o| o.success()) {
            assert!(crate::manipulation::satisfies_constraint_1(
                &o.manipulation,
                &attackers,
                scenario.path_cap,
                1e-6
            ));
        }
    }
}
