//! Cut analysis: the structural condition behind attack feasibility.
//!
//! *Perfect cut* (Section IV-A): for every measurement path `P` containing
//! a victim link there is a malicious node on `P`. Theorem 1: a perfect
//! cut makes every scapegoating strategy feasible (and, by Theorem 3,
//! undetectable). The *attack presence ratio* quantifies imperfect cuts
//! and is the x-axis of Fig. 7.

use tomo_core::TomographySystem;
use tomo_graph::LinkId;

use crate::attacker::AttackerSet;

/// Classification of the attackers' cut of a victim set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutKind {
    /// Every victim-crossing path passes an attacker.
    Perfect,
    /// Some victim-crossing path avoids all attackers.
    Imperfect,
    /// No measurement path crosses any victim link at all (the victim is
    /// invisible to tomography — scapegoating it is moot).
    NoCoverage,
}

/// Structural analysis of one (attackers, victims) pair.
#[derive(Debug, Clone)]
pub struct CutAnalysis {
    /// The cut classification.
    pub kind: CutKind,
    /// Paths crossing at least one victim link.
    pub victim_paths: Vec<usize>,
    /// Among `victim_paths`, those also visiting an attacker.
    pub covered_victim_paths: Vec<usize>,
}

impl CutAnalysis {
    /// The attack presence ratio (Section V-C1): victim-crossing paths
    /// that contain an attacker, over all victim-crossing paths.
    /// `1.0` for perfect cuts; `0.0` when the victim is uncovered.
    #[must_use]
    pub fn presence_ratio(&self) -> f64 {
        if self.victim_paths.is_empty() {
            0.0
        } else {
            self.covered_victim_paths.len() as f64 / self.victim_paths.len() as f64
        }
    }

    /// `true` iff the cut is perfect.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.kind == CutKind::Perfect
    }
}

/// Analyzes how well `attackers` cut `victims` from the measurement
/// paths.
#[must_use]
pub fn analyze_cut(
    system: &TomographySystem,
    attackers: &AttackerSet,
    victims: &[LinkId],
) -> CutAnalysis {
    let victim_paths = system.paths_crossing_links(victims);
    let covered_victim_paths: Vec<usize> = victim_paths
        .iter()
        .copied()
        .filter(|&i| attackers.controls_path(i))
        .collect();
    let kind = if victim_paths.is_empty() {
        CutKind::NoCoverage
    } else if covered_victim_paths.len() == victim_paths.len() {
        CutKind::Perfect
    } else {
        CutKind::Imperfect
    };
    CutAnalysis {
        kind,
        victim_paths,
        covered_victim_paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::placement::{random_placement, PlacementConfig};
    use tomo_core::{fig1, TomographySystem};
    use tomo_graph::topology;

    #[test]
    fn fig1_link1_is_perfectly_cut_by_b_and_c() {
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let analysis = analyze_cut(&system, &attackers, &[topo.paper_link(1)]);
        assert_eq!(analysis.kind, CutKind::Perfect);
        assert!((analysis.presence_ratio() - 1.0).abs() < 1e-12);
        assert!(!analysis.victim_paths.is_empty());
    }

    #[test]
    fn fig1_link10_is_imperfectly_cut() {
        // Link 10 (D-M2) is crossed by e.g. M3-D-M2, which avoids B and C.
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let analysis = analyze_cut(&system, &attackers, &[topo.paper_link(10)]);
        assert_eq!(analysis.kind, CutKind::Imperfect);
        let r = analysis.presence_ratio();
        assert!(r > 0.0 && r < 1.0, "ratio {r}");
    }

    #[test]
    fn fig3_topologies_match_their_names() {
        // Perfect-cut variant.
        let f = topology::fig3_perfect_cut();
        let pool =
            tomo_graph::enumerate::simple_paths_between_terminals(&f.graph, &f.monitors, 10, 1000)
                .unwrap();
        // This tiny graph is not fully identifiable, so build the cut
        // analysis directly on an unvalidated path set via a bigger
        // wrapper: use all paths as a system only if identifiable;
        // otherwise check the raw predicate.
        let crossing: Vec<_> = pool
            .iter()
            .filter(|p| p.contains_link(f.victim_link))
            .collect();
        assert!(!crossing.is_empty());
        assert!(crossing.iter().all(|p| p.contains_any_node(&f.attackers)));

        let f = topology::fig3_imperfect_cut();
        let pool =
            tomo_graph::enumerate::simple_paths_between_terminals(&f.graph, &f.monitors, 10, 1000)
                .unwrap();
        assert!(pool
            .iter()
            .any(|p| p.contains_link(f.victim_link) && !p.contains_any_node(&f.attackers)));
    }

    #[test]
    fn uncovered_victim_reports_no_coverage() {
        // Build a system where one link is never measured… impossible by
        // construction (identifiability needs every link covered), so
        // instead query an empty victim list.
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let analysis = analyze_cut(&system, &attackers, &[]);
        assert_eq!(analysis.kind, CutKind::NoCoverage);
        assert_eq!(analysis.presence_ratio(), 0.0);
    }

    #[test]
    fn presence_ratio_monotone_in_attacker_set() {
        // Adding attackers can only increase the covered path set —
        // the structural heart of Theorem 2.
        let mut rng = rand::SeedableRng::seed_from_u64(77);
        let rng: &mut rand_chacha::ChaCha8Rng = &mut rng;
        let g = tomo_graph::isp::generate(&tomo_graph::isp::IspConfig::default(), rng).unwrap();
        let system: TomographySystem =
            random_placement(&g, &PlacementConfig::default(), rng).unwrap();
        let victim = LinkId(0);
        let nodes: Vec<_> = system.graph().nodes().collect();
        let (va, vb) = {
            let (a, b) = system.graph().endpoints(victim).unwrap();
            (a, b)
        };
        let candidates: Vec<_> = nodes
            .iter()
            .copied()
            .filter(|&n| n != va && n != vb)
            .take(6)
            .collect();
        let small = AttackerSet::new(&system, candidates[..2].to_vec()).unwrap();
        let large = AttackerSet::new(&system, candidates.clone()).unwrap();
        let r_small = analyze_cut(&system, &small, &[victim]).presence_ratio();
        let r_large = analyze_cut(&system, &large, &[victim]).presence_ratio();
        assert!(r_large >= r_small - 1e-12);
    }
}
