//! Monte-Carlo attack-feasibility experiments (Figs. 7 and 8).
//!
//! Each *trial* draws random attackers, a random victim, and random
//! routine link delays on a fixed measurement system, then asks whether
//! the strategy's LP is feasible. The paper's success probability is the
//! fraction of feasible trials; for chosen-victim attacks it is reported
//! against the *attack presence ratio* (Theorem 2's driver), which this
//! module also bins.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_core::delay::DelayModel;
use tomo_core::TomographySystem;
use tomo_graph::{LinkId, NodeId};
use tomo_linalg::Vector;
use tomo_lp::WarmStart;
use tomo_obs::LazyCounter;
use tomo_par::{derive_seed, Executor};

static TRIALS: LazyCounter = LazyCounter::new("attack.montecarlo.trials");
static DEGENERATE: LazyCounter = LazyCounter::new("attack.montecarlo.degenerate");
static FAULT_RECOVERED: LazyCounter = LazyCounter::new("attack.montecarlo.fault.recovered");
static FAULT_QUARANTINED: LazyCounter = LazyCounter::new("attack.montecarlo.fault.quarantined");

use crate::attacker::AttackerSet;
use crate::cut::analyze_cut;
use crate::scenario::AttackScenario;
use crate::strategy;
use crate::AttackError;

/// One chosen-victim trial's record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChosenVictimTrial {
    /// Attack presence ratio of the sampled (attackers, victim) pair.
    pub presence_ratio: f64,
    /// Whether the attackers perfectly cut the victim.
    pub perfect_cut: bool,
    /// Whether the strategy LP was feasible.
    pub success: bool,
    /// Damage achieved when successful.
    pub damage: f64,
}

/// One single-attacker trial's record (max-damage or obfuscation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SingleAttackerTrial {
    /// Whether the strategy found any feasible victim set.
    pub success: bool,
    /// Damage achieved when successful.
    pub damage: f64,
}

/// Draws a uniformly random attacker set of `count` nodes.
///
/// Monitors are eligible — the paper allows compromised monitors
/// (Section II-D).
fn sample_attackers<R: Rng + ?Sized>(
    system: &TomographySystem,
    count: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = system.graph().nodes().collect();
    let count = count.min(nodes.len()).max(1);
    // Partial Fisher–Yates: `count` swaps instead of a full shuffle —
    // coalition sizes are tiny compared to the node count.
    let (sampled, _) = nodes.partial_shuffle(rng, count);
    sampled.to_vec()
}

/// Runs one chosen-victim trial: random attackers, a random
/// non-controlled victim link, random routine delays.
///
/// Returns `None` when the draw is degenerate (attackers control every
/// link, or the victim is not covered by any path — impossible on
/// identifiable systems, kept for robustness).
///
/// `warm` optionally shares a simplex basis cache across trials: trials
/// with the same coalition shape produce structurally identical LPs, so
/// later trials skip simplex phase 1 (see [`WarmStart`]). The success
/// verdict and binned statistics are unaffected; raw damage floats may
/// differ from a cold solve by solver tolerance, so pass `None` when
/// archiving them.
///
/// # Errors
///
/// Propagates attack-construction errors.
pub fn chosen_victim_trial<R: Rng + ?Sized>(
    system: &TomographySystem,
    scenario: &AttackScenario,
    delay_model: &DelayModel,
    num_attackers: usize,
    warm: Option<&WarmStart>,
    rng: &mut R,
) -> Result<Option<ChosenVictimTrial>, AttackError> {
    Ok(
        chosen_victim_trial_detailed(system, scenario, delay_model, num_attackers, warm, rng)?
            .map(|d| d.trial),
    )
}

/// A chosen-victim trial's full context, beyond the summary record:
/// the sampled world and, on success, the manipulation vector. The
/// chaos experiment needs these to replay the attacked measurements
/// through a fault-injected detection round.
#[derive(Debug, Clone)]
pub struct ChosenVictimTrialDetail {
    /// The summary record (what [`chosen_victim_trial`] returns).
    pub trial: ChosenVictimTrial,
    /// The framed victim link.
    pub victim: LinkId,
    /// The sampled routine link delays `x`.
    pub true_delays: Vector,
    /// The manipulation vector `m` when the attack LP was feasible
    /// (attacked measurements are `y = R x + m`).
    pub manipulation: Option<Vector>,
    /// Warm-start outcome of the attack LP solve: `Some(true)` basis
    /// cache hit, `Some(false)` miss, `None` cold solve. Strictly
    /// observational — feeds trace provenance, never the results.
    pub warm_outcome: Option<bool>,
}

/// [`chosen_victim_trial`] with the sampled world attached — identical
/// RNG draw sequence, so both variants produce the same trial for the
/// same stream.
///
/// # Errors
///
/// Propagates attack-construction errors.
pub fn chosen_victim_trial_detailed<R: Rng + ?Sized>(
    system: &TomographySystem,
    scenario: &AttackScenario,
    delay_model: &DelayModel,
    num_attackers: usize,
    warm: Option<&WarmStart>,
    rng: &mut R,
) -> Result<Option<ChosenVictimTrialDetail>, AttackError> {
    TRIALS.inc();
    let attackers = AttackerSet::new(system, sample_attackers(system, num_attackers, rng))?;
    let free_links: Vec<LinkId> = (0..system.num_links())
        .map(LinkId)
        .filter(|&l| !attackers.controls_link(l))
        .collect();
    let Some(&victim) = free_links.as_slice().choose(rng) else {
        DEGENERATE.inc();
        return Ok(None);
    };
    let cut = analyze_cut(system, &attackers, &[victim]);
    if cut.victim_paths.is_empty() {
        DEGENERATE.inc();
        return Ok(None);
    }
    let x = delay_model.sample(system.num_links(), rng);
    // Drain any stale outcome from earlier solves on this thread so the
    // take below reflects exactly the attack LP of *this* trial.
    let _ = tomo_lp::take_last_warm_outcome();
    let outcome = strategy::chosen_victim_warm(system, &attackers, scenario, &x, &[victim], warm)?;
    let warm_outcome = tomo_lp::take_last_warm_outcome();
    let (success, damage, manipulation) = match outcome.success() {
        Some(s) => (true, s.damage, Some(s.manipulation.clone())),
        None => (false, 0.0, None),
    };
    Ok(Some(ChosenVictimTrialDetail {
        trial: ChosenVictimTrial {
            presence_ratio: cut.presence_ratio(),
            perfect_cut: cut.is_perfect(),
            success,
            damage,
        },
        victim,
        true_delays: x,
        manipulation,
        warm_outcome,
    }))
}

/// Outcome of a fault-injected chosen-victim trial
/// (see [`chosen_victim_trial_faulted`]).
#[derive(Debug, Clone)]
pub enum FaultedTrial {
    /// The trial produced a record (possibly after absorbing injected
    /// solver faults through retries).
    Completed {
        /// The trial detail (`None` on a degenerate draw).
        detail: Option<ChosenVictimTrialDetail>,
        /// Injected solver faults absorbed by the retry ladder.
        recovered_faults: u32,
    },
    /// The retry budget was exhausted; the trial is abandoned with the
    /// final typed error rendered for the fault report.
    Quarantined {
        /// Display form of the last solver error.
        error: String,
    },
}

/// `true` for the typed LP errors the chaos layer injects
/// ([`tomo_lp::chaos`]) — the failures montecarlo converts into recorded
/// outcomes rather than aborts.
#[must_use]
pub fn is_injected_solver_fault(e: &AttackError) -> bool {
    matches!(
        e,
        AttackError::Lp(
            tomo_lp::LpError::IterationLimit { .. } | tomo_lp::LpError::SingularBasis { .. }
        )
    )
}

/// Runs a chosen-victim trial under an optionally armed solver fault,
/// with a bounded deterministic retry ladder.
///
/// Every attempt reseeds an identical RNG stream from `rng_seed`, so a
/// retry replays *exactly* the same trial — the only difference is that
/// the armed fault has been consumed, letting the solve complete. Solver
/// breakdowns that are **not** injected faults propagate as errors;
/// injected ones either recover (counted in `recovered_faults`) or,
/// after `max_retries` additional attempts, quarantine the trial as a
/// recorded outcome instead of an abort.
///
/// The armed fault is always disarmed before returning, whatever the
/// path, so no fault can leak into the next trial on this worker thread.
///
/// # Errors
///
/// Propagates attack-construction errors unrelated to fault injection.
#[allow(clippy::too_many_arguments)] // mirrors chosen_victim_trial + the fault knobs
pub fn chosen_victim_trial_faulted(
    system: &TomographySystem,
    scenario: &AttackScenario,
    delay_model: &DelayModel,
    num_attackers: usize,
    warm: Option<&WarmStart>,
    solver_fault: Option<tomo_lp::chaos::SolveFault>,
    max_retries: u32,
    rng_seed: u64,
) -> Result<FaultedTrial, AttackError> {
    let mut recovered = 0u32;
    for attempt in 0..=max_retries {
        if attempt == 0 {
            if let Some(fault) = solver_fault {
                tomo_lp::chaos::arm(fault);
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
        let result = chosen_victim_trial_detailed(
            system,
            scenario,
            delay_model,
            num_attackers,
            warm,
            &mut rng,
        );
        tomo_lp::chaos::disarm();
        match result {
            Ok(detail) => {
                if recovered > 0 {
                    FAULT_RECOVERED.add(u64::from(recovered));
                }
                return Ok(FaultedTrial::Completed {
                    detail,
                    recovered_faults: recovered,
                });
            }
            Err(e) if is_injected_solver_fault(&e) => {
                if attempt == max_retries {
                    FAULT_QUARANTINED.inc();
                    return Ok(FaultedTrial::Quarantined {
                        error: e.to_string(),
                    });
                }
                recovered += 1;
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("the retry loop always returns")
}

/// Runs one single-attacker maximum-damage trial (Fig. 8).
///
/// `warm` is the optional shared basis cache; the recorded `damage` is
/// an LP objective, so callers that persist it verbatim (the Fig. 8
/// artifact does) must pass `None` to stay bit-reproducible.
///
/// # Errors
///
/// Propagates attack-construction errors.
pub fn max_damage_trial<R: Rng + ?Sized>(
    system: &TomographySystem,
    scenario: &AttackScenario,
    delay_model: &DelayModel,
    warm: Option<&WarmStart>,
    rng: &mut R,
) -> Result<SingleAttackerTrial, AttackError> {
    TRIALS.inc();
    let attackers = AttackerSet::new(system, sample_attackers(system, 1, rng))?;
    let x = delay_model.sample(system.num_links(), rng);
    let outcome = strategy::max_damage_warm(system, &attackers, scenario, &x, warm)?;
    Ok(match outcome.success() {
        Some(s) => SingleAttackerTrial {
            success: true,
            damage: s.damage,
        },
        None => SingleAttackerTrial {
            success: false,
            damage: 0.0,
        },
    })
}

/// Runs one single-attacker obfuscation trial (Fig. 8): success requires
/// at least `min_victims` victim links in the uncertain state.
///
/// `warm` follows the same contract as [`max_damage_trial`]: pass `None`
/// when the damage floats are persisted verbatim.
///
/// # Errors
///
/// Propagates attack-construction errors.
pub fn obfuscation_trial<R: Rng + ?Sized>(
    system: &TomographySystem,
    scenario: &AttackScenario,
    delay_model: &DelayModel,
    min_victims: usize,
    warm: Option<&WarmStart>,
    rng: &mut R,
) -> Result<SingleAttackerTrial, AttackError> {
    TRIALS.inc();
    let attackers = AttackerSet::new(system, sample_attackers(system, 1, rng))?;
    let x = delay_model.sample(system.num_links(), rng);
    let outcome = strategy::obfuscation_warm(system, &attackers, scenario, &x, min_victims, warm)?;
    Ok(match outcome.success() {
        Some(s) => SingleAttackerTrial {
            success: true,
            damage: s.damage,
        },
        None => SingleAttackerTrial {
            success: false,
            damage: 0.0,
        },
    })
}

/// Success probability as a function of coalition size — a natural
/// companion to Fig. 7 (which varies the presence *ratio*): how does the
/// number of colluding nodes translate into feasibility?
///
/// Runs `trials` chosen-victim trials for each coalition size in
/// `1..=max_attackers`, fanned out across `exec`'s workers, and returns
/// one success probability per size. Each trial draws from its own RNG
/// stream derived from `(seed, trial_index)`, so the curve is
/// bit-identical for every thread count.
///
/// # Errors
///
/// Propagates attack-construction errors.
pub fn coalition_sweep(
    system: &TomographySystem,
    scenario: &AttackScenario,
    delay_model: &DelayModel,
    max_attackers: usize,
    trials: usize,
    seed: u64,
    exec: &Executor,
) -> Result<Vec<f64>, AttackError> {
    let max_attackers = max_attackers.max(1);
    if trials == 0 {
        return Ok(vec![0.0; max_attackers]);
    }
    system.warm_estimator_cache()?;
    // One basis cache for the whole sweep: the curve aggregates success
    // booleans only, so warm-started solves cannot change it. The handle
    // is Sync and shared by reference across the executor's workers.
    let warm = tomo_lp::warm_enabled().then(WarmStart::new);
    let records = exec.try_map(max_attackers * trials, |idx| {
        let k = idx / trials + 1;
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, idx as u64));
        chosen_victim_trial(system, scenario, delay_model, k, warm.as_ref(), &mut rng)
    })?;
    let curve = records
        .chunks(trials)
        .map(|chunk| {
            let usable = chunk.iter().flatten().count();
            let successes = chunk.iter().flatten().filter(|t| t.success).count();
            if usable == 0 {
                0.0
            } else {
                successes as f64 / usable as f64
            }
        })
        .collect();
    Ok(curve)
}

/// Success probability per presence-ratio bin — the Fig. 7 curve.
///
/// `bins` half-open intervals partition `[0, 1]`; the last bin is closed
/// at 1. Bins with no samples report `None`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioBins {
    /// Bin edges: `edges[k] .. edges[k+1]`.
    pub edges: Vec<f64>,
    /// Trials per bin.
    pub counts: Vec<usize>,
    /// Successes per bin.
    pub successes: Vec<usize>,
}

impl RatioBins {
    /// Builds `bins` equal-width bins over `[0, 1]` from trial records.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    #[must_use]
    pub fn from_trials(trials: &[ChosenVictimTrial], bins: usize) -> Self {
        assert!(bins > 0, "at least one bin required");
        let edges: Vec<f64> = (0..=bins).map(|k| k as f64 / bins as f64).collect();
        let mut counts = vec![0usize; bins];
        let mut successes = vec![0usize; bins];
        for t in trials {
            let mut k = (t.presence_ratio * bins as f64).floor() as usize;
            if k >= bins {
                k = bins - 1; // ratio == 1.0 goes to the last bin
            }
            counts[k] += 1;
            if t.success {
                successes[k] += 1;
            }
        }
        RatioBins {
            edges,
            counts,
            successes,
        }
    }

    /// Success probability of bin `k` (`None` when empty).
    #[must_use]
    pub fn probability(&self, k: usize) -> Option<f64> {
        if self.counts[k] == 0 {
            None
        } else {
            Some(self.successes[k] as f64 / self.counts[k] as f64)
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if there are no bins (cannot happen via `from_trials`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tomo_core::{fig1, params};

    fn fig1_setup() -> (TomographySystem, AttackScenario, DelayModel) {
        (
            fig1::fig1_system().unwrap(),
            AttackScenario::paper_defaults(),
            params::default_delay_model(),
        )
    }

    #[test]
    fn chosen_victim_trials_produce_valid_records() {
        let (system, scenario, delays) = fig1_setup();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut any_success = false;
        for _ in 0..30 {
            if let Some(t) =
                chosen_victim_trial(&system, &scenario, &delays, 2, None, &mut rng).unwrap()
            {
                assert!((0.0..=1.0).contains(&t.presence_ratio));
                if t.perfect_cut {
                    assert!((t.presence_ratio - 1.0).abs() < 1e-12);
                    // Theorem 1: perfect cut ⇒ success.
                    assert!(t.success, "perfect cut must succeed");
                }
                if t.success {
                    assert!(t.damage > 0.0);
                    any_success = true;
                } else {
                    assert_eq!(t.damage, 0.0);
                }
            }
        }
        assert!(any_success, "some Fig. 1 trials must succeed");
    }

    #[test]
    fn single_attacker_trials_run() {
        let (system, scenario, delays) = fig1_setup();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut md_successes = 0;
        for _ in 0..10 {
            let t = max_damage_trial(&system, &scenario, &delays, None, &mut rng).unwrap();
            if t.success {
                md_successes += 1;
                assert!(t.damage > 0.0);
            }
        }
        // On Fig. 1 most single attackers can frame someone.
        assert!(md_successes > 0);

        let t = obfuscation_trial(&system, &scenario, &delays, 2, None, &mut rng).unwrap();
        // Either outcome is legitimate; record shape only.
        if !t.success {
            assert_eq!(t.damage, 0.0);
        }
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let (system, scenario, delays) = fig1_setup();
        let a = chosen_victim_trial(
            &system,
            &scenario,
            &delays,
            2,
            None,
            &mut ChaCha8Rng::seed_from_u64(7),
        )
        .unwrap();
        let b = chosen_victim_trial(
            &system,
            &scenario,
            &delays,
            2,
            None,
            &mut ChaCha8Rng::seed_from_u64(7),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn detailed_trial_matches_summary_trial() {
        let (system, scenario, delays) = fig1_setup();
        for seed in [3u64, 11, 19] {
            let summary = chosen_victim_trial(
                &system,
                &scenario,
                &delays,
                2,
                None,
                &mut ChaCha8Rng::seed_from_u64(seed),
            )
            .unwrap();
            let detail = chosen_victim_trial_detailed(
                &system,
                &scenario,
                &delays,
                2,
                None,
                &mut ChaCha8Rng::seed_from_u64(seed),
            )
            .unwrap();
            assert_eq!(summary, detail.as_ref().map(|d| d.trial));
            if let Some(d) = detail {
                assert_eq!(d.true_delays.len(), system.num_links());
                assert_eq!(d.manipulation.is_some(), d.trial.success);
                if let Some(m) = &d.manipulation {
                    assert_eq!(m.len(), system.num_paths());
                }
            }
        }
    }

    #[test]
    fn faulted_trial_without_fault_matches_plain_trial() {
        let (system, scenario, delays) = fig1_setup();
        let outcome =
            chosen_victim_trial_faulted(&system, &scenario, &delays, 2, None, None, 1, 77).unwrap();
        let FaultedTrial::Completed {
            detail,
            recovered_faults,
        } = outcome
        else {
            panic!("unfaulted trial cannot quarantine");
        };
        assert_eq!(recovered_faults, 0);
        let plain = chosen_victim_trial(
            &system,
            &scenario,
            &delays,
            2,
            None,
            &mut ChaCha8Rng::seed_from_u64(77),
        )
        .unwrap();
        assert_eq!(detail.map(|d| d.trial), plain);
    }

    #[test]
    fn injected_solver_faults_recover_through_retry() {
        let (system, scenario, delays) = fig1_setup();
        for fault in [
            tomo_lp::chaos::SolveFault::IterationExhaustion,
            tomo_lp::chaos::SolveFault::SingularWarmBasis,
        ] {
            let outcome = chosen_victim_trial_faulted(
                &system,
                &scenario,
                &delays,
                2,
                None,
                Some(fault),
                1,
                77,
            )
            .unwrap();
            let FaultedTrial::Completed {
                detail,
                recovered_faults,
            } = outcome
            else {
                panic!("{fault:?}: one retry must recover");
            };
            assert_eq!(recovered_faults, 1, "{fault:?}");
            // The retry replays the identical trial.
            let plain = chosen_victim_trial(
                &system,
                &scenario,
                &delays,
                2,
                None,
                &mut ChaCha8Rng::seed_from_u64(77),
            )
            .unwrap();
            assert_eq!(detail.map(|d| d.trial), plain, "{fault:?}");
        }
    }

    #[test]
    fn exhausted_retry_budget_quarantines_instead_of_aborting() {
        let (system, scenario, delays) = fig1_setup();
        let outcome = chosen_victim_trial_faulted(
            &system,
            &scenario,
            &delays,
            2,
            None,
            Some(tomo_lp::chaos::SolveFault::IterationExhaustion),
            0,
            77,
        )
        .unwrap();
        let FaultedTrial::Quarantined { error } = outcome else {
            panic!("zero retries must quarantine");
        };
        assert!(error.contains("iterations"), "error: {error}");
        // The armed fault was consumed: the next plain trial is healthy.
        assert!(chosen_victim_trial(
            &system,
            &scenario,
            &delays,
            2,
            None,
            &mut ChaCha8Rng::seed_from_u64(77),
        )
        .is_ok());
    }

    #[test]
    fn injected_fault_classifier() {
        assert!(is_injected_solver_fault(&AttackError::Lp(
            tomo_lp::LpError::IterationLimit { limit: 5 }
        )));
        assert!(is_injected_solver_fault(&AttackError::Lp(
            tomo_lp::LpError::SingularBasis { rows: 3 }
        )));
        assert!(!is_injected_solver_fault(&AttackError::Lp(
            tomo_lp::LpError::NonFiniteCoefficient { context: "x" }
        )));
    }

    #[test]
    fn coalition_sweep_grows_with_attackers() {
        let (system, scenario, delays) = fig1_setup();
        let exec = Executor::single_threaded();
        let curve = coalition_sweep(&system, &scenario, &delays, 4, 25, 10, &exec).unwrap();
        assert_eq!(curve.len(), 4);
        assert!(curve.iter().all(|p| (0.0..=1.0).contains(p)));
        // Larger coalitions should not be dramatically worse: compare the
        // best of sizes {3,4} against size 1 (statistical, generous slack).
        let large = curve[2].max(curve[3]);
        assert!(
            large + 0.25 >= curve[0],
            "coalitions of 3-4 ({large}) much weaker than singletons ({})",
            curve[0]
        );
    }

    #[test]
    fn coalition_sweep_is_thread_count_invariant() {
        let (system, scenario, delays) = fig1_setup();
        let seq = coalition_sweep(
            &system,
            &scenario,
            &delays,
            3,
            8,
            10,
            &Executor::single_threaded(),
        )
        .unwrap();
        let par =
            coalition_sweep(&system, &scenario, &delays, 3, 8, 10, &Executor::new(4)).unwrap();
        // Bit-identical, not approximately equal.
        assert_eq!(seq, par);
        // Degenerate sizes still produce a full curve.
        let empty = coalition_sweep(
            &system,
            &scenario,
            &delays,
            2,
            0,
            10,
            &Executor::single_threaded(),
        )
        .unwrap();
        assert_eq!(empty, vec![0.0, 0.0]);
    }

    #[test]
    fn ratio_bins_aggregate_correctly() {
        let trials = vec![
            ChosenVictimTrial {
                presence_ratio: 0.05,
                perfect_cut: false,
                success: false,
                damage: 0.0,
            },
            ChosenVictimTrial {
                presence_ratio: 0.55,
                perfect_cut: false,
                success: true,
                damage: 10.0,
            },
            ChosenVictimTrial {
                presence_ratio: 0.55,
                perfect_cut: false,
                success: false,
                damage: 0.0,
            },
            ChosenVictimTrial {
                presence_ratio: 1.0,
                perfect_cut: true,
                success: true,
                damage: 5.0,
            },
        ];
        let bins = RatioBins::from_trials(&trials, 10);
        assert_eq!(bins.len(), 10);
        assert!(!bins.is_empty());
        assert_eq!(bins.counts[0], 1);
        assert_eq!(bins.probability(0), Some(0.0));
        assert_eq!(bins.counts[5], 2);
        assert_eq!(bins.probability(5), Some(0.5));
        // ratio 1.0 lands in the last bin.
        assert_eq!(bins.counts[9], 1);
        assert_eq!(bins.probability(9), Some(1.0));
        assert_eq!(bins.probability(3), None);
        assert_eq!(bins.edges.len(), 11);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = RatioBins::from_trials(&[], 0);
    }
}
