//! The attacker model: which nodes are malicious, which links and paths
//! they control.

use tomo_core::TomographySystem;
use tomo_graph::{LinkId, NodeId};

use crate::AttackError;

/// A set of malicious nodes `V_m` within a measurement system, with the
/// derived quantities the paper's formulation uses:
///
/// * `controlled_links` — `L_m`, every link incident to an attacker
///   ("they can adversely affect the performance of all links connecting
///   to them"),
/// * `attacked_paths` — row indices of measurement paths visiting an
///   attacker; only these entries of `m` may be nonzero (Constraint 1).
///
/// Monitors may be attackers too — the paper explicitly allows it
/// (Section II-D).
#[derive(Debug, Clone)]
pub struct AttackerSet {
    nodes: Vec<NodeId>,
    controlled_links: Vec<LinkId>,
    attacked_paths: Vec<usize>,
}

impl AttackerSet {
    /// Builds the attacker view of `system` for malicious `nodes`.
    ///
    /// # Errors
    ///
    /// * [`AttackError::NoAttackers`] for an empty node set,
    /// * [`AttackError::UnknownAttacker`] if a node is not in the graph.
    pub fn new(system: &TomographySystem, nodes: Vec<NodeId>) -> Result<Self, AttackError> {
        let mut unique = nodes;
        unique.sort();
        unique.dedup();
        if unique.is_empty() {
            return Err(AttackError::NoAttackers);
        }
        for &n in &unique {
            if n.index() >= system.graph().num_nodes() {
                return Err(AttackError::UnknownAttacker { node: n });
            }
        }
        let mut controlled_links: Vec<LinkId> = Vec::new();
        for &n in &unique {
            for l in system
                .graph()
                .incident_links(n)
                .expect("attacker nodes validated")
            {
                if !controlled_links.contains(&l) {
                    controlled_links.push(l);
                }
            }
        }
        controlled_links.sort();
        let attacked_paths = system.paths_through_nodes(&unique);
        Ok(AttackerSet {
            nodes: unique,
            controlled_links,
            attacked_paths,
        })
    }

    /// The malicious nodes `V_m` (sorted, deduplicated).
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The attacker-controlled links `L_m` (sorted).
    #[must_use]
    pub fn controlled_links(&self) -> &[LinkId] {
        &self.controlled_links
    }

    /// Row indices of measurement paths visiting an attacker — the only
    /// paths whose measurements can be manipulated.
    #[must_use]
    pub fn attacked_paths(&self) -> &[usize] {
        &self.attacked_paths
    }

    /// `true` if `link` is attacker-controlled.
    #[must_use]
    pub fn controls_link(&self, link: LinkId) -> bool {
        self.controlled_links.contains(&link)
    }

    /// `true` if the path at `row` can be manipulated.
    #[must_use]
    pub fn controls_path(&self, row: usize) -> bool {
        self.attacked_paths.contains(&row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::fig1;

    #[test]
    fn fig1_attackers_control_links_2_through_8() {
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let set = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        assert_eq!(set.nodes().len(), 2);
        let expected: Vec<LinkId> = (2..=8).map(|n| topo.paper_link(n)).collect();
        assert_eq!(set.controlled_links(), expected.as_slice());
        assert!(set.controls_link(topo.paper_link(5)));
        assert!(!set.controls_link(topo.paper_link(1)));
        assert!(!set.controls_link(topo.paper_link(9)));
        assert!(!set.controls_link(topo.paper_link(10)));
    }

    #[test]
    fn attacked_paths_match_node_queries() {
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let set = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        for (i, p) in system.paths().iter().enumerate() {
            assert_eq!(
                set.controls_path(i),
                p.contains_any_node(set.nodes()),
                "path {i}"
            );
        }
        // B and C sit on most Fig. 1 paths.
        assert!(set.attacked_paths().len() >= 15);
    }

    #[test]
    fn duplicates_are_merged() {
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let b = topo.attackers[0];
        let set = AttackerSet::new(&system, vec![b, b, b]).unwrap();
        assert_eq!(set.nodes(), &[b]);
    }

    #[test]
    fn empty_and_unknown_rejected() {
        let system = fig1::fig1_system().unwrap();
        assert!(matches!(
            AttackerSet::new(&system, vec![]),
            Err(AttackError::NoAttackers)
        ));
        assert!(matches!(
            AttackerSet::new(&system, vec![NodeId(99)]),
            Err(AttackError::UnknownAttacker { .. })
        ));
    }

    #[test]
    fn monitor_can_be_attacker() {
        let system = fig1::fig1_system().unwrap();
        let m1 = system.graph().node_by_label("M1").unwrap();
        let set = AttackerSet::new(&system, vec![m1]).unwrap();
        // M1's links: 1 (M1-A) and 2 (M1-B).
        assert_eq!(set.controlled_links().len(), 2);
        assert!(!set.attacked_paths().is_empty());
    }
}
