//! Attack results.

use serde::{Deserialize, Serialize};
use tomo_core::LinkState;
use tomo_graph::LinkId;
use tomo_linalg::Vector;

/// A successfully computed scapegoating attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackSuccess {
    /// The attack manipulation vector `m` over *all* measurement paths
    /// (zero on paths the attackers do not sit on — Constraint 1).
    pub manipulation: Vector,
    /// The damage `‖m‖₁` (Definition 2).
    pub damage: f64,
    /// The link-metric estimate `x̂` tomography produces under attack.
    pub estimate: Vector,
    /// Per-link classification of `estimate` under the scenario
    /// thresholds.
    pub states: Vec<LinkState>,
    /// The victim set `L_s` the attack frames.
    pub victims: Vec<LinkId>,
}

/// Outcome of a scapegoating strategy: the LP is either feasible (attack
/// succeeds, with the maximizing manipulation) or infeasible (the paper's
/// definition of attack failure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AttackOutcome {
    /// The strategy admits a feasible manipulation; the embedded
    /// [`AttackSuccess`] holds the damage-maximizing one.
    Success(AttackSuccess),
    /// No manipulation satisfies the strategy's constraints.
    Infeasible,
}

impl AttackOutcome {
    /// `true` iff the attack is feasible.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, AttackOutcome::Success(_))
    }

    /// The success payload, if any.
    #[must_use]
    pub fn success(&self) -> Option<&AttackSuccess> {
        match self {
            AttackOutcome::Success(s) => Some(s),
            AttackOutcome::Infeasible => None,
        }
    }

    /// Consumes the outcome, returning the success payload if any.
    #[must_use]
    pub fn into_success(self) -> Option<AttackSuccess> {
        match self {
            AttackOutcome::Success(s) => Some(s),
            AttackOutcome::Infeasible => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = AttackSuccess {
            manipulation: Vector::zeros(3),
            damage: 0.0,
            estimate: Vector::zeros(2),
            states: vec![LinkState::Normal, LinkState::Normal],
            victims: vec![LinkId(1)],
        };
        let outcome = AttackOutcome::Success(s);
        assert!(outcome.is_success());
        assert!(outcome.success().is_some());
        assert!(outcome.into_success().is_some());

        let fail = AttackOutcome::Infeasible;
        assert!(!fail.is_success());
        assert!(fail.success().is_none());
        assert!(fail.into_success().is_none());
    }
}
