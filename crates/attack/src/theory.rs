//! Constructive results from the feasibility analysis (Section IV-A).
//!
//! The proof of Theorem 1 is constructive: under a perfect cut, pick any
//! target estimate `x̂*` satisfying the state bounds with `Δx̂* = x̂* − x*`
//! supported on `L_m ∪ L_s`, and set `m* = R Δx̂*` (Eq. 15). The perfect
//! cut guarantees `m*` vanishes on attacker-free paths, and a
//! victims-only non-negative `Δx̂*` guarantees `m* ⪰ 0`. This module
//! implements that construction — independent of the LP machinery — and
//! is used to cross-validate the LP and to realize Theorem 3's
//! "undetectable" branch exactly (`R x̂ = y′` holds with equality).

use tomo_core::TomographySystem;
use tomo_graph::LinkId;
use tomo_linalg::{norms, Vector};

use crate::attacker::AttackerSet;
use crate::cut::{analyze_cut, CutKind};
use crate::outcome::{AttackOutcome, AttackSuccess};
use crate::scenario::AttackScenario;
use crate::AttackError;

/// The Theorem-1 construction: under a perfect cut of `victims`, produce
/// the manipulation `m = R Δx̂` that makes each victim's estimate exactly
/// `target_estimate` (which should exceed `b_u`).
///
/// Returns [`AttackOutcome::Infeasible`] if the cut is not perfect (the
/// construction's premise) or if the resulting manipulation would exceed
/// the per-path cap (the paper's practical limit).
///
/// # Errors
///
/// * [`AttackError::NoVictims`] / [`AttackError::UnknownVictim`] /
///   [`AttackError::VictimControlledByAttacker`] on malformed victim
///   sets,
/// * [`AttackError::BadBaseline`] on a wrong-length metric vector.
pub fn perfect_cut_attack(
    system: &TomographySystem,
    attackers: &AttackerSet,
    scenario: &AttackScenario,
    true_metrics: &Vector,
    victims: &[LinkId],
    target_estimate: f64,
) -> Result<AttackOutcome, AttackError> {
    if victims.is_empty() {
        return Err(AttackError::NoVictims);
    }
    for &v in victims {
        if v.index() >= system.num_links() {
            return Err(AttackError::UnknownVictim { link: v });
        }
        if attackers.controls_link(v) {
            return Err(AttackError::VictimControlledByAttacker { link: v });
        }
    }
    if true_metrics.len() != system.num_links() {
        return Err(AttackError::BadBaseline {
            expected: system.num_links(),
            got: true_metrics.len(),
        });
    }

    if analyze_cut(system, attackers, victims).kind != CutKind::Perfect {
        return Ok(AttackOutcome::Infeasible);
    }

    // Δx̂: lift each victim to the target, leave everything else alone.
    let mut delta = Vector::zeros(system.num_links());
    for &v in victims {
        let lift = target_estimate - true_metrics[v.index()];
        if lift < 0.0 {
            return Ok(AttackOutcome::Infeasible);
        }
        delta[v.index()] = lift;
    }

    // m = R Δx̂ (Eq. 15).
    let manipulation = system
        .routing_matrix()
        .mul_vec(&delta)
        .expect("delta has |L| entries");

    // Respect the practical per-path cap.
    if manipulation.iter().any(|&m| m > scenario.path_cap + 1e-9) {
        return Ok(AttackOutcome::Infeasible);
    }
    debug_assert!(
        crate::manipulation::satisfies_constraint_1(
            &manipulation,
            attackers,
            scenario.path_cap,
            1e-9
        ),
        "Theorem 1: perfect cut must yield a Constraint-1 manipulation"
    );

    let y = system.measure(true_metrics)?;
    let attacked = &y + &manipulation;
    let estimate = system.estimate(&attacked)?;
    let states = system.classify(&estimate, &scenario.thresholds);
    Ok(AttackOutcome::Success(AttackSuccess {
        damage: norms::l1(&manipulation),
        manipulation,
        estimate,
        states,
        victims: victims.to_vec(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng as _;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tomo_core::{fig1, LinkState};

    fn setup() -> (
        TomographySystem,
        tomo_graph::topology::Fig1Topology,
        AttackerSet,
        AttackScenario,
        Vector,
    ) {
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        (
            system,
            topo,
            attackers,
            AttackScenario::paper_defaults(),
            Vector::filled(10, 10.0),
        )
    }

    #[test]
    fn construction_succeeds_on_perfectly_cut_link_1() {
        let (system, topo, attackers, scenario, x) = setup();
        let victim = topo.paper_link(1);
        let outcome =
            perfect_cut_attack(&system, &attackers, &scenario, &x, &[victim], 900.0).unwrap();
        let s = outcome.success().expect("Theorem 1 guarantees feasibility");
        assert_eq!(s.states[victim.index()], LinkState::Abnormal);
        // The estimate hits the target exactly (the construction solves
        // the system with equality).
        assert!((s.estimate[victim.index()] - 900.0).abs() < 1e-6);
        // Non-victim links keep their true estimates.
        for j in 0..10 {
            if j != victim.index() {
                assert!(
                    (s.estimate[j] - 10.0).abs() < 1e-6,
                    "link {j}: {}",
                    s.estimate[j]
                );
            }
        }
        // Theorem 3 premise: measurements are perfectly consistent.
        let y_attacked = &system.measure(&x).unwrap() + &s.manipulation;
        let recon = system.routing_matrix().mul_vec(&s.estimate).unwrap();
        assert!(recon.approx_eq(&y_attacked, 1e-6));
    }

    #[test]
    fn imperfect_cut_refuses_construction() {
        let (system, topo, attackers, scenario, x) = setup();
        let victim = topo.paper_link(10); // imperfectly cut
        let outcome =
            perfect_cut_attack(&system, &attackers, &scenario, &x, &[victim], 900.0).unwrap();
        assert!(!outcome.is_success());
    }

    #[test]
    fn cap_violation_refused() {
        let (system, topo, attackers, scenario, x) = setup();
        let victim = topo.paper_link(1);
        // A target of 3000ms would need per-path manipulation > 2000ms.
        let outcome =
            perfect_cut_attack(&system, &attackers, &scenario, &x, &[victim], 3100.0).unwrap();
        assert!(!outcome.is_success());
    }

    #[test]
    fn target_below_truth_refused() {
        let (system, topo, attackers, scenario, _) = setup();
        let x = Vector::filled(10, 50.0);
        let victim = topo.paper_link(1);
        let outcome =
            perfect_cut_attack(&system, &attackers, &scenario, &x, &[victim], 20.0).unwrap();
        assert!(!outcome.is_success(), "m ⪰ 0 forbids lowering estimates");
    }

    #[test]
    fn validation_errors() {
        let (system, topo, attackers, scenario, x) = setup();
        assert!(matches!(
            perfect_cut_attack(&system, &attackers, &scenario, &x, &[], 900.0),
            Err(AttackError::NoVictims)
        ));
        assert!(matches!(
            perfect_cut_attack(
                &system,
                &attackers,
                &scenario,
                &x,
                &[topo.paper_link(5)],
                900.0
            ),
            Err(AttackError::VictimControlledByAttacker { .. })
        ));
        assert!(matches!(
            perfect_cut_attack(
                &system,
                &attackers,
                &scenario,
                &Vector::zeros(2),
                &[topo.paper_link(1)],
                900.0
            ),
            Err(AttackError::BadBaseline { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Theorem 1, cross-validated against the LP: whenever the
        /// construction succeeds on Fig. 1's perfectly cut link 1 (random
        /// baselines, random in-cap targets), the chosen-victim LP must
        /// also report feasibility.
        #[test]
        fn lp_agrees_with_construction(seed in 0u64..200) {
            let (system, topo, attackers, scenario, _) = setup();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let x: Vector = (0..10).map(|_| rng.gen_range(1.0..20.0)).collect();
            let victim = topo.paper_link(1);
            let target = rng.gen_range(810.0..1500.0);
            let constructed = perfect_cut_attack(
                &system, &attackers, &scenario, &x, &[victim], target,
            ).unwrap();
            prop_assert!(constructed.is_success());
            let lp = crate::strategy::chosen_victim(
                &system, &attackers, &scenario, &x, &[victim],
            ).unwrap();
            prop_assert!(lp.is_success());
            // The LP maximizes damage, so it dominates the construction.
            let lp_damage = lp.success().unwrap().damage;
            let c_damage = constructed.success().unwrap().damage;
            prop_assert!(lp_damage >= c_damage - 1e-6,
                "LP {} < construction {}", lp_damage, c_damage);
        }
    }
}
