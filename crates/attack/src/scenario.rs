//! Attack scenario parameters shared by all strategies.

use serde::{Deserialize, Serialize};
use tomo_core::{params, StateThresholds};

/// Parameters of a scapegoating attempt: the operator's classification
/// thresholds (which the attacker is assumed to know or estimate), the
/// per-path manipulation cap, and the strictness margin used to turn the
/// paper's strict inequalities (`x̂ < b_l`, `x̂ > b_u`) into solvable
/// LP constraints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackScenario {
    /// The operator's link-state thresholds `(b_l, b_u)`.
    pub thresholds: StateThresholds,
    /// Per-path manipulation cap in metric units (the paper: 2000 ms).
    pub path_cap: f64,
    /// Margin by which state constraints clear their thresholds. Must be
    /// positive; also absorbs numerical error in the LP solution.
    pub margin: f64,
    /// When set, the attacker additionally enforces measurement
    /// consistency `R x̂(m) = y + m` (plus, by default, physical
    /// plausibility `x̂(m) ⪰ 0`), making the attack invisible to the
    /// Eq. (23) consistency detector. Per Theorem 3 this is achievable
    /// exactly when the attackers perfectly cut the victims; with an
    /// imperfect cut the stealthy LP is (generically) infeasible.
    pub evade_detection: bool,
    /// Only meaningful with [`Self::evade_detection`]: when `false`, the
    /// evader drops the plausibility constraint `x̂(m) ⪰ 0` and is willing
    /// to leave *negative* link estimates behind. This is the exploit for
    /// the gap in Theorem 3's detectable branch (see DESIGN.md): at AS
    /// scale it can succeed even on imperfectly-cut victims, evading the
    /// paper's pure consistency check — only a plausibility-checking
    /// detector catches it.
    pub plausible_evasion: bool,
}

impl AttackScenario {
    /// The paper's Section V-A setup: `b_l = 100 ms`, `b_u = 800 ms`,
    /// cap `2000 ms`, with a 1 ms strictness margin, no detection
    /// evasion.
    ///
    /// ```
    /// let s = tomo_attack::scenario::AttackScenario::paper_defaults();
    /// assert_eq!(s.path_cap, 2000.0);
    /// assert_eq!(s.thresholds.lower(), 100.0);
    /// assert!(!s.evade_detection);
    /// ```
    #[must_use]
    pub fn paper_defaults() -> Self {
        AttackScenario {
            thresholds: params::default_thresholds(),
            path_cap: params::PATH_CAP_MS,
            margin: 1.0,
            evade_detection: false,
            plausible_evasion: true,
        }
    }

    /// The paper defaults with detection evasion switched on.
    #[must_use]
    pub fn paper_defaults_stealthy() -> Self {
        AttackScenario {
            evade_detection: true,
            ..AttackScenario::paper_defaults()
        }
    }

    /// Creates a scenario, validating `path_cap > 0` and `margin > 0`.
    #[must_use]
    pub fn new(thresholds: StateThresholds, path_cap: f64, margin: f64) -> Option<Self> {
        if path_cap.is_finite() && path_cap > 0.0 && margin.is_finite() && margin > 0.0 {
            Some(AttackScenario {
                thresholds,
                path_cap,
                margin,
                evade_detection: false,
                plausible_evasion: true,
            })
        } else {
            None
        }
    }

    /// Returns a copy with [`Self::evade_detection`] set.
    #[must_use]
    pub fn with_evasion(mut self, evade: bool) -> Self {
        self.evade_detection = evade;
        self
    }

    /// The gap-exploiting evader: consistency without plausibility (see
    /// [`Self::plausible_evasion`]).
    #[must_use]
    pub fn paper_defaults_implausible_evader() -> Self {
        AttackScenario {
            evade_detection: true,
            plausible_evasion: false,
            ..AttackScenario::paper_defaults()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let s = AttackScenario::paper_defaults();
        assert_eq!(s.thresholds.lower(), 100.0);
        assert_eq!(s.thresholds.upper(), 800.0);
        assert_eq!(s.path_cap, 2000.0);
        assert!(s.margin > 0.0);
    }

    #[test]
    fn validation() {
        let t = StateThresholds::new(1.0, 2.0).unwrap();
        assert!(AttackScenario::new(t, 10.0, 0.1).is_some());
        assert!(AttackScenario::new(t, 0.0, 0.1).is_none());
        assert!(AttackScenario::new(t, 10.0, 0.0).is_none());
        assert!(AttackScenario::new(t, f64::NAN, 0.1).is_none());
    }
}
