//! The manipulation LP: the common optimization core of all three
//! scapegoating strategies.
//!
//! With estimator matrix `A = (RᵀR)⁻¹Rᵀ` and clean estimate `x̂₀`, a
//! manipulation `m` shifts the tomography output linearly:
//! `x̂(m) = x̂₀ + A m`. Every strategy is then
//!
//! ```text
//! maximize   Σᵢ mᵢ                               (damage, Definition 2)
//! subject to mᵢ ∈ [0, cap]   for attacked paths  (Constraint 1 + cap)
//!            mᵢ = 0          elsewhere            (Constraint 1)
//!            x̂(m)ⱼ  ⋚  thresholds                 (per-link state goals)
//! ```
//!
//! differing only in which links get which state goal.

use tomo_core::TomographySystem;
use tomo_graph::LinkId;
use tomo_linalg::{norms, CsrBuilder, CsrMatrix, Matrix, Vector};
use tomo_lp::{LpProblem, LpStatus, Objective, Relation, VarId, WarmStart};

use crate::attacker::AttackerSet;
use crate::outcome::{AttackOutcome, AttackSuccess};
use crate::scenario::AttackScenario;
use crate::AttackError;

/// The state the attacker wants tomography to report for one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkGoal {
    /// Estimate below `b_l − margin` — constraint (5).
    Normal,
    /// Estimate above `b_u + margin` — constraint (6).
    Abnormal,
    /// Estimate inside `[b_l + margin, b_u − margin]` — constraint (10).
    Uncertain,
    /// Like [`LinkGoal::Normal`] but additionally `x̂ ≥ 0`: a *plausible*
    /// healthy link. Eq. (5) does not require non-negativity, but a
    /// negative delay estimate would instantly expose the attack to a
    /// sanity check, so precision strategies (exclusive framing) use
    /// this variant.
    NormalPlausible,
}

/// A reusable manipulation-LP factory for one (system, attackers,
/// baseline) instance. Strategies call [`ManipulationProblem::solve`]
/// with different goal sets; the expensive pieces (estimator matrix,
/// clean measurements) are computed once.
#[derive(Debug, Clone)]
pub struct ManipulationProblem<'a> {
    system: &'a TomographySystem,
    attackers: &'a AttackerSet,
    scenario: AttackScenario,
    /// Clean measurements `y = R x`.
    clean_measurements: Vector,
    /// Clean estimate `x̂₀` (equals the true metrics in a noise-free run).
    baseline_estimate: Vector,
    /// `A = (RᵀR)⁻¹Rᵀ`, links × paths — borrowed from the system's
    /// estimator cache (materialized once per system, shared across
    /// trials and worker threads).
    estimator: &'a Matrix,
    /// Sparse LP coefficient rows, links × |attacked paths|: row `j`
    /// holds the estimator entries `A[j, i]` over attacked paths `i`
    /// with `|A[j, i]| > 1e-12`, column `c` being the position of path
    /// `i` in `attacked_paths()` (= the LP variable index). Built once
    /// per problem; every goal and plausibility constraint is a row
    /// slice of this matrix instead of a fresh dense scan per solve.
    goal_rows: CsrMatrix,
    /// Consistency rows `(R·A − I)` restricted to attacked columns,
    /// paths × |attacked paths|, same filter. Only built when the
    /// scenario evades detection.
    evasion_rows: Option<CsrMatrix>,
    /// Optional shared simplex basis cache; see
    /// [`ManipulationProblem::with_warm_start`].
    warm: Option<&'a WarmStart>,
}

impl<'a> ManipulationProblem<'a> {
    /// Prepares the LP factory for true link metrics `true_metrics`.
    ///
    /// # Errors
    ///
    /// * [`AttackError::BadBaseline`] if `true_metrics.len() ≠ |L|`,
    /// * propagates tomography errors.
    pub fn new(
        system: &'a TomographySystem,
        attackers: &'a AttackerSet,
        scenario: AttackScenario,
        true_metrics: &Vector,
    ) -> Result<Self, AttackError> {
        if true_metrics.len() != system.num_links() {
            return Err(AttackError::BadBaseline {
                expected: system.num_links(),
                got: true_metrics.len(),
            });
        }
        let clean_measurements = system.measure(true_metrics)?;
        let baseline_estimate = system.estimate(&clean_measurements)?;
        let estimator = system.estimator_matrix()?;
        let attacked = attackers.attacked_paths();

        // Pre-filter the estimator down to the attacked columns once:
        // the same |A[j,i]| > 1e-12 cut, in the same attacked-path
        // order, that constraint assembly used to redo per solve.
        let mut goal_builder = CsrBuilder::new(attacked.len());
        for j in 0..system.num_links() {
            goal_builder
                .push_row(attacked.iter().enumerate().filter_map(|(c, &i)| {
                    let a = estimator[(j, i)];
                    (a.abs() > 1e-12).then_some((c, a))
                }))
                .expect("columns ascend with attacked-path order");
        }
        let goal_rows = goal_builder.finish();

        let evasion_rows = if scenario.evade_detection {
            let projector = system.projector()?;
            let mut b = CsrBuilder::new(attacked.len());
            for row in 0..system.num_paths() {
                b.push_row(attacked.iter().enumerate().filter_map(|(c, &k)| {
                    let mut p = projector[(row, k)];
                    if row == k {
                        p -= 1.0;
                    }
                    (p.abs() > 1e-12).then_some((c, p))
                }))
                .expect("columns ascend with attacked-path order");
            }
            Some(b.finish())
        } else {
            None
        };

        Ok(ManipulationProblem {
            system,
            attackers,
            scenario,
            clean_measurements,
            baseline_estimate,
            estimator,
            goal_rows,
            evasion_rows,
            warm: None,
        })
    }

    /// Attaches a shared [`WarmStart`] basis cache: subsequent solves
    /// go through [`LpProblem::solve_warm`], reusing the optimal basis
    /// of the previous structurally identical LP to skip simplex
    /// phase 1. Results stay decision-identical (status, objective up
    /// to solver tolerance) but are not bit-identical to cold solves —
    /// callers whose outputs archive raw solution floats should stay
    /// cold (see DESIGN.md §5d).
    #[must_use]
    pub fn with_warm_start(mut self, warm: &'a WarmStart) -> Self {
        self.warm = Some(warm);
        self
    }

    /// The clean (pre-attack) estimate `x̂₀`.
    #[must_use]
    pub fn baseline_estimate(&self) -> &Vector {
        &self.baseline_estimate
    }

    /// The clean measurement vector `y`.
    #[must_use]
    pub fn clean_measurements(&self) -> &Vector {
        &self.clean_measurements
    }

    /// Largest achievable upward shift of link `j`'s estimate:
    /// `Σᵢ max(A[j,i], 0) · cap` over attacked paths. A cheap feasibility
    /// pre-filter for victim candidates (if even this bound cannot reach
    /// `b_u`, the abnormal goal is hopeless).
    #[must_use]
    pub fn max_upward_shift(&self, link: LinkId) -> f64 {
        let j = link.index();
        self.attackers
            .attacked_paths()
            .iter()
            .map(|&i| self.estimator[(j, i)].max(0.0))
            .sum::<f64>()
            * self.scenario.path_cap
    }

    /// Solves the manipulation LP for the given per-link goals.
    ///
    /// Links not mentioned in `goals` are unconstrained (the paper's
    /// formulations constrain only `L_m` and `L_s`). `victims` is the
    /// victim set `L_s` recorded on a successful outcome (it does not
    /// affect the optimization — attacker links may share the same state
    /// goal without being victims).
    ///
    /// # Errors
    ///
    /// * [`AttackError::UnknownVictim`] if a goal references a link
    ///   outside the graph,
    /// * propagates LP solver errors.
    pub fn solve(
        &self,
        goals: &[(LinkId, LinkGoal)],
        victims: &[LinkId],
    ) -> Result<AttackOutcome, AttackError> {
        self.solve_directed(goals, victims, Objective::Maximize)
    }

    /// Like [`Self::solve`] but **minimizing** the total manipulation
    /// `‖m‖₁` — the covert attacker's objective (see
    /// `strategy::min_effort_chosen_victim`). Feasibility is unchanged.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve`].
    pub fn solve_minimizing(
        &self,
        goals: &[(LinkId, LinkGoal)],
        victims: &[LinkId],
    ) -> Result<AttackOutcome, AttackError> {
        self.solve_directed(goals, victims, Objective::Minimize)
    }

    fn solve_directed(
        &self,
        goals: &[(LinkId, LinkGoal)],
        victims: &[LinkId],
        direction: Objective,
    ) -> Result<AttackOutcome, AttackError> {
        for &(l, _) in goals {
            if l.index() >= self.system.num_links() {
                return Err(AttackError::UnknownVictim { link: l });
            }
        }
        let attacked = self.attackers.attacked_paths();
        if attacked.is_empty() {
            // No manipulable path: feasible only if every goal already
            // holds at the clean estimate with margin.
            return Ok(self.zero_manipulation_outcome(goals, victims));
        }

        let mut lp = LpProblem::new(direction);
        let vars: Vec<VarId> = attacked
            .iter()
            .map(|&i| {
                lp.add_variable(format!("m_{i}"), 0.0, Some(self.scenario.path_cap))
                    .expect("valid bounds")
            })
            .collect();
        for &v in &vars {
            lp.set_objective_coefficient(v, 1.0);
        }

        let b_l = self.scenario.thresholds.lower();
        let b_u = self.scenario.thresholds.upper();
        let eps = self.scenario.margin;

        for &(link, goal) in goals {
            let j = link.index();
            let cols = self.goal_rows.row_indices(j);
            let vals = self.goal_rows.row_values(j);
            let base = self.baseline_estimate[j];
            let mut push = |rel: Relation, rhs: f64| {
                lp.add_sparse_row(&vars, cols, vals, rel, rhs)
                    .expect("finite coefficients, ascending columns");
            };
            match goal {
                LinkGoal::Normal => push(Relation::Le, b_l - eps - base),
                LinkGoal::Abnormal => push(Relation::Ge, b_u + eps - base),
                LinkGoal::Uncertain => {
                    push(Relation::Ge, b_l + eps - base);
                    push(Relation::Le, b_u - eps - base);
                }
                LinkGoal::NormalPlausible => {
                    push(Relation::Le, b_l - eps - base);
                    push(Relation::Ge, -base);
                }
            }
        }

        if self.scenario.evade_detection {
            self.add_evasion_constraints(&mut lp, &vars);
        }

        let sol = match self.warm {
            Some(w) => lp.solve_warm(w)?,
            None => lp.solve()?,
        };
        match sol.status() {
            LpStatus::Optimal => {
                let mut manipulation = Vector::zeros(self.system.num_paths());
                for (&i, &v) in attacked.iter().zip(vars.iter()) {
                    // Clamp LP round-off into the valid range.
                    manipulation[i] = sol.value(v).clamp(0.0, self.scenario.path_cap);
                }
                Ok(self.outcome_from_manipulation(manipulation, victims))
            }
            LpStatus::Infeasible => Ok(AttackOutcome::Infeasible),
            LpStatus::Unbounded => {
                unreachable!("capped variables make the damage objective bounded")
            }
        }
    }

    /// Adds the detection-evasion constraints of Theorem 3's
    /// undetectable branch:
    ///
    /// * consistency: `(R A − I) m = 0` row per measurement path, so the
    ///   Eq. (23) check `R x̂ = y′` holds with equality,
    /// * plausibility: `x̂(m)ⱼ ≥ 0` per link (negative delay estimates
    ///   would expose the attack to a trivial sanity check).
    fn add_evasion_constraints(&self, lp: &mut LpProblem, vars: &[VarId]) {
        // (R·A − I) restricted to attacked columns, pre-filtered into
        // CSR rows at construction (computed once, not per LP solve).
        let evasion = self
            .evasion_rows
            .as_ref()
            .expect("evasion rows built when scenario.evade_detection");
        for i in 0..evasion.rows() {
            let cols = evasion.row_indices(i);
            if !cols.is_empty() {
                lp.add_sparse_row(vars, cols, evasion.row_values(i), Relation::Eq, 0.0)
                    .expect("finite coefficients, ascending columns");
            }
        }
        if !self.scenario.plausible_evasion {
            return; // the gap exploit: consistent but implausible
        }
        for j in 0..self.goal_rows.rows() {
            let cols = self.goal_rows.row_indices(j);
            if !cols.is_empty() {
                lp.add_sparse_row(
                    vars,
                    cols,
                    self.goal_rows.row_values(j),
                    Relation::Ge,
                    -self.baseline_estimate[j],
                )
                .expect("finite coefficients, ascending columns");
            }
        }
    }

    /// Builds the success payload for a concrete manipulation vector.
    fn outcome_from_manipulation(&self, manipulation: Vector, victims: &[LinkId]) -> AttackOutcome {
        let attacked_measurements = &self.clean_measurements + &manipulation;
        let estimate = self
            .system
            .estimate(&attacked_measurements)
            .expect("dimensions fixed by construction");
        let states = self.system.classify(&estimate, &self.scenario.thresholds);
        AttackOutcome::Success(AttackSuccess {
            damage: norms::l1(&manipulation),
            manipulation,
            estimate,
            states,
            victims: victims.to_vec(),
        })
    }

    /// Outcome when the attacker cannot touch any path: the zero
    /// manipulation either already satisfies all goals or the attack is
    /// infeasible.
    fn zero_manipulation_outcome(
        &self,
        goals: &[(LinkId, LinkGoal)],
        victims: &[LinkId],
    ) -> AttackOutcome {
        let b_l = self.scenario.thresholds.lower();
        let b_u = self.scenario.thresholds.upper();
        let eps = self.scenario.margin;
        let ok = goals.iter().all(|&(l, g)| {
            let v = self.baseline_estimate[l.index()];
            match g {
                LinkGoal::Normal => v <= b_l - eps,
                LinkGoal::Abnormal => v >= b_u + eps,
                LinkGoal::Uncertain => (b_l + eps..=b_u - eps).contains(&v),
                LinkGoal::NormalPlausible => v >= 0.0 && v <= b_l - eps,
            }
        });
        if ok {
            self.outcome_from_manipulation(Vector::zeros(self.system.num_paths()), victims)
        } else {
            AttackOutcome::Infeasible
        }
    }
}

/// Verifies Constraint 1 on a manipulation vector: non-negative
/// everywhere, zero on paths without an attacker, and within the cap.
/// Used by tests and by downstream consumers that receive manipulation
/// vectors from untrusted strategy code.
#[must_use]
pub fn satisfies_constraint_1(
    manipulation: &Vector,
    attackers: &AttackerSet,
    cap: f64,
    tol: f64,
) -> bool {
    manipulation.iter().enumerate().all(|(i, &m)| {
        let in_range = (-tol..=cap + tol).contains(&m);
        let allowed = attackers.controls_path(i) || m.abs() <= tol;
        in_range && allowed
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::fig1;
    use tomo_core::LinkState;

    fn setup() -> (
        tomo_core::TomographySystem,
        tomo_graph::topology::Fig1Topology,
        Vector,
    ) {
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let x = Vector::filled(10, 10.0);
        (system, topo, x)
    }

    #[test]
    fn baseline_estimate_equals_truth_noise_free() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        assert!(prob.baseline_estimate().approx_eq(&x, 1e-8));
        assert_eq!(prob.clean_measurements().len(), 23);
    }

    #[test]
    fn abnormal_goal_on_perfectly_cut_link_succeeds() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let victim = topo.paper_link(1);
        let mut goals = vec![(victim, LinkGoal::Abnormal)];
        for &l in attackers.controlled_links() {
            goals.push((l, LinkGoal::Normal));
        }
        let outcome = prob.solve(&goals, &[victim]).unwrap();
        let s = outcome.success().expect("perfect cut must be feasible");
        assert_eq!(s.states[victim.index()], LinkState::Abnormal);
        for &l in attackers.controlled_links() {
            assert_eq!(s.states[l.index()], LinkState::Normal, "link {l}");
        }
        assert!(s.damage > 0.0);
        assert!(satisfies_constraint_1(
            &s.manipulation,
            &attackers,
            2000.0,
            1e-6
        ));
    }

    #[test]
    fn solution_is_damage_maximal_not_just_feasible() {
        // The LP maximizes ‖m‖₁; every attacked path must be driven to a
        // binding constraint (cap or a state constraint). Sanity check:
        // damage strictly exceeds what the minimum framing needs.
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let victim = topo.paper_link(1);
        let goals = vec![(victim, LinkGoal::Abnormal)];
        let unconstrained = prob
            .solve(&goals, &[victim])
            .unwrap()
            .into_success()
            .unwrap();
        // With no normal-goals, the attacker can saturate caps on many
        // paths: damage should be large (at least several caps' worth).
        assert!(
            unconstrained.damage >= 3.0 * 2000.0,
            "damage {}",
            unconstrained.damage
        );
    }

    #[test]
    fn impossible_goal_is_infeasible() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        // Margin cannot exceed the band: force normal AND abnormal on the
        // same link.
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let l = topo.paper_link(9);
        let outcome = prob
            .solve(&[(l, LinkGoal::Normal), (l, LinkGoal::Abnormal)], &[l])
            .unwrap();
        assert!(!outcome.is_success());
    }

    #[test]
    fn unknown_victim_rejected() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        assert!(matches!(
            prob.solve(&[(LinkId(99), LinkGoal::Abnormal)], &[]),
            Err(AttackError::UnknownVictim { .. })
        ));
    }

    #[test]
    fn bad_baseline_rejected() {
        let (system, topo, _) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        assert!(matches!(
            ManipulationProblem::new(
                &system,
                &attackers,
                AttackScenario::paper_defaults(),
                &Vector::zeros(3),
            ),
            Err(AttackError::BadBaseline { .. })
        ));
    }

    #[test]
    fn max_upward_shift_bounds_actual_shift() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let victim = topo.paper_link(10);
        let outcome = prob
            .solve(&[(victim, LinkGoal::Abnormal)], &[victim])
            .unwrap();
        if let Some(s) = outcome.success() {
            let shift = s.estimate[victim.index()] - x[victim.index()];
            assert!(shift <= prob.max_upward_shift(victim) + 1e-6);
        }
    }

    #[test]
    fn empty_goals_maximize_pure_damage() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let outcome = prob.solve(&[], &[]).unwrap();
        let s = outcome.success().unwrap();
        // Unconstrained: every attacked path saturates the cap.
        let expected = attackers.attacked_paths().len() as f64 * 2000.0;
        assert!((s.damage - expected).abs() < 1e-3);
    }

    #[test]
    fn stealthy_attack_on_perfect_cut_is_consistent() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob = ManipulationProblem::new(
            &system,
            &attackers,
            AttackScenario::paper_defaults_stealthy(),
            &x,
        )
        .unwrap();
        let victim = topo.paper_link(1); // perfectly cut by {B, C}
        let mut goals = vec![(victim, LinkGoal::Abnormal)];
        for &l in attackers.controlled_links() {
            goals.push((l, LinkGoal::Normal));
        }
        let outcome = prob.solve(&goals, &[victim]).unwrap();
        let s = outcome
            .success()
            .expect("Theorem 3: perfect cut admits an undetectable attack");
        // The consistency residual ‖R x̂ − y′‖₁ vanishes.
        let y_attacked = &prob.clean_measurements().clone() + &s.manipulation;
        let reproj = system.routing_matrix().mul_vec(&s.estimate).unwrap();
        let residual = tomo_linalg::norms::l1(&(&reproj - &y_attacked));
        assert!(residual < 1e-4, "residual {residual}");
        assert_eq!(s.states[victim.index()], tomo_core::LinkState::Abnormal);
    }

    #[test]
    fn stealthy_attack_on_imperfect_cut_is_infeasible() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob = ManipulationProblem::new(
            &system,
            &attackers,
            AttackScenario::paper_defaults_stealthy(),
            &x,
        )
        .unwrap();
        let victim = topo.paper_link(10); // NOT perfectly cut
        let mut goals = vec![(victim, LinkGoal::Abnormal)];
        for &l in attackers.controlled_links() {
            goals.push((l, LinkGoal::Normal));
        }
        let outcome = prob.solve(&goals, &[victim]).unwrap();
        assert!(
            !outcome.is_success(),
            "Theorem 3: imperfect cut cannot evade the consistency check"
        );
    }

    #[test]
    fn constraint_1_checker() {
        let (system, topo, _) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let n = system.num_paths();
        assert!(satisfies_constraint_1(
            &Vector::zeros(n),
            &attackers,
            100.0,
            1e-9
        ));
        // Negative entry fails.
        let mut neg = Vector::zeros(n);
        neg[attackers.attacked_paths()[0]] = -1.0;
        assert!(!satisfies_constraint_1(&neg, &attackers, 100.0, 1e-9));
        // Entry on a non-attacked path fails.
        if let Some(free) = (0..n).find(|i| !attackers.controls_path(*i)) {
            let mut bad = Vector::zeros(n);
            bad[free] = 1.0;
            assert!(!satisfies_constraint_1(&bad, &attackers, 100.0, 1e-9));
        }
        // Over-cap fails.
        let mut over = Vector::zeros(n);
        over[attackers.attacked_paths()[0]] = 101.0;
        assert!(!satisfies_constraint_1(&over, &attackers, 100.0, 1e-9));
    }
}
