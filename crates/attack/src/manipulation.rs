//! The manipulation LP: the common optimization core of all three
//! scapegoating strategies.
//!
//! With estimator matrix `A = (RᵀR)⁻¹Rᵀ` and clean estimate `x̂₀`, a
//! manipulation `m` shifts the tomography output linearly:
//! `x̂(m) = x̂₀ + A m`. Every strategy is then
//!
//! ```text
//! maximize   Σᵢ mᵢ                               (damage, Definition 2)
//! subject to mᵢ ∈ [0, cap]   for attacked paths  (Constraint 1 + cap)
//!            mᵢ = 0          elsewhere            (Constraint 1)
//!            x̂(m)ⱼ  ⋚  thresholds                 (per-link state goals)
//! ```
//!
//! differing only in which links get which state goal.

use tomo_core::TomographySystem;
use tomo_graph::LinkId;
use tomo_linalg::{norms, Matrix, Vector};
use tomo_lp::{LpProblem, LpStatus, Objective, Relation, VarId};

use crate::attacker::AttackerSet;
use crate::outcome::{AttackOutcome, AttackSuccess};
use crate::scenario::AttackScenario;
use crate::AttackError;

/// The state the attacker wants tomography to report for one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkGoal {
    /// Estimate below `b_l − margin` — constraint (5).
    Normal,
    /// Estimate above `b_u + margin` — constraint (6).
    Abnormal,
    /// Estimate inside `[b_l + margin, b_u − margin]` — constraint (10).
    Uncertain,
    /// Like [`LinkGoal::Normal`] but additionally `x̂ ≥ 0`: a *plausible*
    /// healthy link. Eq. (5) does not require non-negativity, but a
    /// negative delay estimate would instantly expose the attack to a
    /// sanity check, so precision strategies (exclusive framing) use
    /// this variant.
    NormalPlausible,
}

/// A reusable manipulation-LP factory for one (system, attackers,
/// baseline) instance. Strategies call [`ManipulationProblem::solve`]
/// with different goal sets; the expensive pieces (estimator matrix,
/// clean measurements) are computed once.
#[derive(Debug, Clone)]
pub struct ManipulationProblem<'a> {
    system: &'a TomographySystem,
    attackers: &'a AttackerSet,
    scenario: AttackScenario,
    /// Clean measurements `y = R x`.
    clean_measurements: Vector,
    /// Clean estimate `x̂₀` (equals the true metrics in a noise-free run).
    baseline_estimate: Vector,
    /// `A = (RᵀR)⁻¹Rᵀ`, links × paths — borrowed from the system's
    /// estimator cache (materialized once per system, shared across
    /// trials and worker threads).
    estimator: &'a Matrix,
}

impl<'a> ManipulationProblem<'a> {
    /// Prepares the LP factory for true link metrics `true_metrics`.
    ///
    /// # Errors
    ///
    /// * [`AttackError::BadBaseline`] if `true_metrics.len() ≠ |L|`,
    /// * propagates tomography errors.
    pub fn new(
        system: &'a TomographySystem,
        attackers: &'a AttackerSet,
        scenario: AttackScenario,
        true_metrics: &Vector,
    ) -> Result<Self, AttackError> {
        if true_metrics.len() != system.num_links() {
            return Err(AttackError::BadBaseline {
                expected: system.num_links(),
                got: true_metrics.len(),
            });
        }
        let clean_measurements = system.measure(true_metrics)?;
        let baseline_estimate = system.estimate(&clean_measurements)?;
        let estimator = system.estimator_matrix()?;
        Ok(ManipulationProblem {
            system,
            attackers,
            scenario,
            clean_measurements,
            baseline_estimate,
            estimator,
        })
    }

    /// The clean (pre-attack) estimate `x̂₀`.
    #[must_use]
    pub fn baseline_estimate(&self) -> &Vector {
        &self.baseline_estimate
    }

    /// The clean measurement vector `y`.
    #[must_use]
    pub fn clean_measurements(&self) -> &Vector {
        &self.clean_measurements
    }

    /// Largest achievable upward shift of link `j`'s estimate:
    /// `Σᵢ max(A[j,i], 0) · cap` over attacked paths. A cheap feasibility
    /// pre-filter for victim candidates (if even this bound cannot reach
    /// `b_u`, the abnormal goal is hopeless).
    #[must_use]
    pub fn max_upward_shift(&self, link: LinkId) -> f64 {
        let j = link.index();
        self.attackers
            .attacked_paths()
            .iter()
            .map(|&i| self.estimator[(j, i)].max(0.0))
            .sum::<f64>()
            * self.scenario.path_cap
    }

    /// Solves the manipulation LP for the given per-link goals.
    ///
    /// Links not mentioned in `goals` are unconstrained (the paper's
    /// formulations constrain only `L_m` and `L_s`). `victims` is the
    /// victim set `L_s` recorded on a successful outcome (it does not
    /// affect the optimization — attacker links may share the same state
    /// goal without being victims).
    ///
    /// # Errors
    ///
    /// * [`AttackError::UnknownVictim`] if a goal references a link
    ///   outside the graph,
    /// * propagates LP solver errors.
    pub fn solve(
        &self,
        goals: &[(LinkId, LinkGoal)],
        victims: &[LinkId],
    ) -> Result<AttackOutcome, AttackError> {
        self.solve_directed(goals, victims, Objective::Maximize)
    }

    /// Like [`Self::solve`] but **minimizing** the total manipulation
    /// `‖m‖₁` — the covert attacker's objective (see
    /// `strategy::min_effort_chosen_victim`). Feasibility is unchanged.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve`].
    pub fn solve_minimizing(
        &self,
        goals: &[(LinkId, LinkGoal)],
        victims: &[LinkId],
    ) -> Result<AttackOutcome, AttackError> {
        self.solve_directed(goals, victims, Objective::Minimize)
    }

    fn solve_directed(
        &self,
        goals: &[(LinkId, LinkGoal)],
        victims: &[LinkId],
        direction: Objective,
    ) -> Result<AttackOutcome, AttackError> {
        for &(l, _) in goals {
            if l.index() >= self.system.num_links() {
                return Err(AttackError::UnknownVictim { link: l });
            }
        }
        let attacked = self.attackers.attacked_paths();
        if attacked.is_empty() {
            // No manipulable path: feasible only if every goal already
            // holds at the clean estimate with margin.
            return Ok(self.zero_manipulation_outcome(goals, victims));
        }

        let mut lp = LpProblem::new(direction);
        let vars: Vec<VarId> = attacked
            .iter()
            .map(|&i| {
                lp.add_variable(format!("m_{i}"), 0.0, Some(self.scenario.path_cap))
                    .expect("valid bounds")
            })
            .collect();
        for &v in &vars {
            lp.set_objective_coefficient(v, 1.0);
        }

        let b_l = self.scenario.thresholds.lower();
        let b_u = self.scenario.thresholds.upper();
        let eps = self.scenario.margin;

        for &(link, goal) in goals {
            let j = link.index();
            let terms: Vec<(VarId, f64)> = attacked
                .iter()
                .zip(vars.iter())
                .filter(|(&i, _)| self.estimator[(j, i)].abs() > 1e-12)
                .map(|(&i, &v)| (v, self.estimator[(j, i)]))
                .collect();
            let base = self.baseline_estimate[j];
            match goal {
                LinkGoal::Normal => {
                    lp.add_constraint(&terms, Relation::Le, b_l - eps - base)
                        .expect("finite");
                }
                LinkGoal::Abnormal => {
                    lp.add_constraint(&terms, Relation::Ge, b_u + eps - base)
                        .expect("finite");
                }
                LinkGoal::Uncertain => {
                    lp.add_constraint(&terms, Relation::Ge, b_l + eps - base)
                        .expect("finite");
                    lp.add_constraint(&terms, Relation::Le, b_u - eps - base)
                        .expect("finite");
                }
                LinkGoal::NormalPlausible => {
                    lp.add_constraint(&terms, Relation::Le, b_l - eps - base)
                        .expect("finite");
                    lp.add_constraint(&terms, Relation::Ge, -base)
                        .expect("finite");
                }
            }
        }

        if self.scenario.evade_detection {
            self.add_evasion_constraints(&mut lp, attacked, &vars);
        }

        let sol = lp.solve()?;
        match sol.status() {
            LpStatus::Optimal => {
                let mut manipulation = Vector::zeros(self.system.num_paths());
                for (&i, &v) in attacked.iter().zip(vars.iter()) {
                    // Clamp LP round-off into the valid range.
                    manipulation[i] = sol.value(v).clamp(0.0, self.scenario.path_cap);
                }
                Ok(self.outcome_from_manipulation(manipulation, victims))
            }
            LpStatus::Infeasible => Ok(AttackOutcome::Infeasible),
            LpStatus::Unbounded => {
                unreachable!("capped variables make the damage objective bounded")
            }
        }
    }

    /// Adds the detection-evasion constraints of Theorem 3's
    /// undetectable branch:
    ///
    /// * consistency: `(R A − I) m = 0` row per measurement path, so the
    ///   Eq. (23) check `R x̂ = y′` holds with equality,
    /// * plausibility: `x̂(m)ⱼ ≥ 0` per link (negative delay estimates
    ///   would expose the attack to a trivial sanity check).
    fn add_evasion_constraints(&self, lp: &mut LpProblem, attacked: &[usize], vars: &[VarId]) {
        // P = R·A: the projector onto the routing matrix's column space,
        // cached on the system (computed once, not per LP solve).
        let projector = self
            .system
            .projector()
            .expect("projector exists after successful system construction");
        let num_paths = self.system.num_paths();
        for i in 0..num_paths {
            let terms: Vec<(VarId, f64)> = attacked
                .iter()
                .zip(vars.iter())
                .filter_map(|(&k, &v)| {
                    let mut c = projector[(i, k)];
                    if i == k {
                        c -= 1.0;
                    }
                    (c.abs() > 1e-12).then_some((v, c))
                })
                .collect();
            if !terms.is_empty() {
                lp.add_constraint(&terms, Relation::Eq, 0.0)
                    .expect("finite");
            }
        }
        if !self.scenario.plausible_evasion {
            return; // the gap exploit: consistent but implausible
        }
        for j in 0..self.system.num_links() {
            let terms: Vec<(VarId, f64)> = attacked
                .iter()
                .zip(vars.iter())
                .filter(|(&i, _)| self.estimator[(j, i)].abs() > 1e-12)
                .map(|(&i, &v)| (v, self.estimator[(j, i)]))
                .collect();
            if !terms.is_empty() {
                lp.add_constraint(&terms, Relation::Ge, -self.baseline_estimate[j])
                    .expect("finite");
            }
        }
    }

    /// Builds the success payload for a concrete manipulation vector.
    fn outcome_from_manipulation(&self, manipulation: Vector, victims: &[LinkId]) -> AttackOutcome {
        let attacked_measurements = &self.clean_measurements + &manipulation;
        let estimate = self
            .system
            .estimate(&attacked_measurements)
            .expect("dimensions fixed by construction");
        let states = self.system.classify(&estimate, &self.scenario.thresholds);
        AttackOutcome::Success(AttackSuccess {
            damage: norms::l1(&manipulation),
            manipulation,
            estimate,
            states,
            victims: victims.to_vec(),
        })
    }

    /// Outcome when the attacker cannot touch any path: the zero
    /// manipulation either already satisfies all goals or the attack is
    /// infeasible.
    fn zero_manipulation_outcome(
        &self,
        goals: &[(LinkId, LinkGoal)],
        victims: &[LinkId],
    ) -> AttackOutcome {
        let b_l = self.scenario.thresholds.lower();
        let b_u = self.scenario.thresholds.upper();
        let eps = self.scenario.margin;
        let ok = goals.iter().all(|&(l, g)| {
            let v = self.baseline_estimate[l.index()];
            match g {
                LinkGoal::Normal => v <= b_l - eps,
                LinkGoal::Abnormal => v >= b_u + eps,
                LinkGoal::Uncertain => (b_l + eps..=b_u - eps).contains(&v),
                LinkGoal::NormalPlausible => v >= 0.0 && v <= b_l - eps,
            }
        });
        if ok {
            self.outcome_from_manipulation(Vector::zeros(self.system.num_paths()), victims)
        } else {
            AttackOutcome::Infeasible
        }
    }
}

/// Verifies Constraint 1 on a manipulation vector: non-negative
/// everywhere, zero on paths without an attacker, and within the cap.
/// Used by tests and by downstream consumers that receive manipulation
/// vectors from untrusted strategy code.
#[must_use]
pub fn satisfies_constraint_1(
    manipulation: &Vector,
    attackers: &AttackerSet,
    cap: f64,
    tol: f64,
) -> bool {
    manipulation.iter().enumerate().all(|(i, &m)| {
        let in_range = (-tol..=cap + tol).contains(&m);
        let allowed = attackers.controls_path(i) || m.abs() <= tol;
        in_range && allowed
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_core::fig1;
    use tomo_core::LinkState;

    fn setup() -> (
        tomo_core::TomographySystem,
        tomo_graph::topology::Fig1Topology,
        Vector,
    ) {
        let system = fig1::fig1_system().unwrap();
        let topo = fig1::fig1_topology();
        let x = Vector::filled(10, 10.0);
        (system, topo, x)
    }

    #[test]
    fn baseline_estimate_equals_truth_noise_free() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        assert!(prob.baseline_estimate().approx_eq(&x, 1e-8));
        assert_eq!(prob.clean_measurements().len(), 23);
    }

    #[test]
    fn abnormal_goal_on_perfectly_cut_link_succeeds() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let victim = topo.paper_link(1);
        let mut goals = vec![(victim, LinkGoal::Abnormal)];
        for &l in attackers.controlled_links() {
            goals.push((l, LinkGoal::Normal));
        }
        let outcome = prob.solve(&goals, &[victim]).unwrap();
        let s = outcome.success().expect("perfect cut must be feasible");
        assert_eq!(s.states[victim.index()], LinkState::Abnormal);
        for &l in attackers.controlled_links() {
            assert_eq!(s.states[l.index()], LinkState::Normal, "link {l}");
        }
        assert!(s.damage > 0.0);
        assert!(satisfies_constraint_1(
            &s.manipulation,
            &attackers,
            2000.0,
            1e-6
        ));
    }

    #[test]
    fn solution_is_damage_maximal_not_just_feasible() {
        // The LP maximizes ‖m‖₁; every attacked path must be driven to a
        // binding constraint (cap or a state constraint). Sanity check:
        // damage strictly exceeds what the minimum framing needs.
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let victim = topo.paper_link(1);
        let goals = vec![(victim, LinkGoal::Abnormal)];
        let unconstrained = prob
            .solve(&goals, &[victim])
            .unwrap()
            .into_success()
            .unwrap();
        // With no normal-goals, the attacker can saturate caps on many
        // paths: damage should be large (at least several caps' worth).
        assert!(
            unconstrained.damage >= 3.0 * 2000.0,
            "damage {}",
            unconstrained.damage
        );
    }

    #[test]
    fn impossible_goal_is_infeasible() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        // Margin cannot exceed the band: force normal AND abnormal on the
        // same link.
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let l = topo.paper_link(9);
        let outcome = prob
            .solve(&[(l, LinkGoal::Normal), (l, LinkGoal::Abnormal)], &[l])
            .unwrap();
        assert!(!outcome.is_success());
    }

    #[test]
    fn unknown_victim_rejected() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        assert!(matches!(
            prob.solve(&[(LinkId(99), LinkGoal::Abnormal)], &[]),
            Err(AttackError::UnknownVictim { .. })
        ));
    }

    #[test]
    fn bad_baseline_rejected() {
        let (system, topo, _) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        assert!(matches!(
            ManipulationProblem::new(
                &system,
                &attackers,
                AttackScenario::paper_defaults(),
                &Vector::zeros(3),
            ),
            Err(AttackError::BadBaseline { .. })
        ));
    }

    #[test]
    fn max_upward_shift_bounds_actual_shift() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let victim = topo.paper_link(10);
        let outcome = prob
            .solve(&[(victim, LinkGoal::Abnormal)], &[victim])
            .unwrap();
        if let Some(s) = outcome.success() {
            let shift = s.estimate[victim.index()] - x[victim.index()];
            assert!(shift <= prob.max_upward_shift(victim) + 1e-6);
        }
    }

    #[test]
    fn empty_goals_maximize_pure_damage() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob =
            ManipulationProblem::new(&system, &attackers, AttackScenario::paper_defaults(), &x)
                .unwrap();
        let outcome = prob.solve(&[], &[]).unwrap();
        let s = outcome.success().unwrap();
        // Unconstrained: every attacked path saturates the cap.
        let expected = attackers.attacked_paths().len() as f64 * 2000.0;
        assert!((s.damage - expected).abs() < 1e-3);
    }

    #[test]
    fn stealthy_attack_on_perfect_cut_is_consistent() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob = ManipulationProblem::new(
            &system,
            &attackers,
            AttackScenario::paper_defaults_stealthy(),
            &x,
        )
        .unwrap();
        let victim = topo.paper_link(1); // perfectly cut by {B, C}
        let mut goals = vec![(victim, LinkGoal::Abnormal)];
        for &l in attackers.controlled_links() {
            goals.push((l, LinkGoal::Normal));
        }
        let outcome = prob.solve(&goals, &[victim]).unwrap();
        let s = outcome
            .success()
            .expect("Theorem 3: perfect cut admits an undetectable attack");
        // The consistency residual ‖R x̂ − y′‖₁ vanishes.
        let y_attacked = &prob.clean_measurements().clone() + &s.manipulation;
        let reproj = system.routing_matrix().mul_vec(&s.estimate).unwrap();
        let residual = tomo_linalg::norms::l1(&(&reproj - &y_attacked));
        assert!(residual < 1e-4, "residual {residual}");
        assert_eq!(s.states[victim.index()], tomo_core::LinkState::Abnormal);
    }

    #[test]
    fn stealthy_attack_on_imperfect_cut_is_infeasible() {
        let (system, topo, x) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let prob = ManipulationProblem::new(
            &system,
            &attackers,
            AttackScenario::paper_defaults_stealthy(),
            &x,
        )
        .unwrap();
        let victim = topo.paper_link(10); // NOT perfectly cut
        let mut goals = vec![(victim, LinkGoal::Abnormal)];
        for &l in attackers.controlled_links() {
            goals.push((l, LinkGoal::Normal));
        }
        let outcome = prob.solve(&goals, &[victim]).unwrap();
        assert!(
            !outcome.is_success(),
            "Theorem 3: imperfect cut cannot evade the consistency check"
        );
    }

    #[test]
    fn constraint_1_checker() {
        let (system, topo, _) = setup();
        let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
        let n = system.num_paths();
        assert!(satisfies_constraint_1(
            &Vector::zeros(n),
            &attackers,
            100.0,
            1e-9
        ));
        // Negative entry fails.
        let mut neg = Vector::zeros(n);
        neg[attackers.attacked_paths()[0]] = -1.0;
        assert!(!satisfies_constraint_1(&neg, &attackers, 100.0, 1e-9));
        // Entry on a non-attacked path fails.
        if let Some(free) = (0..n).find(|i| !attackers.controls_path(*i)) {
            let mut bad = Vector::zeros(n);
            bad[free] = 1.0;
            assert!(!satisfies_constraint_1(&bad, &attackers, 100.0, 1e-9));
        }
        // Over-cap fails.
        let mut over = Vector::zeros(n);
        over[attackers.attacked_paths()[0]] = 101.0;
        assert!(!satisfies_constraint_1(&over, &attackers, 100.0, 1e-9));
    }
}
