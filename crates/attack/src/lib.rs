//! Scapegoating attacks against network tomography — the primary
//! contribution of the ICDCS 2017 paper, as a reusable library.
//!
//! An attacker controls a set of in-network nodes. On every measurement
//! path that crosses one of its nodes it may add non-negative extra delay
//! (the *attack manipulation vector* `m`, Constraint 1); paths without an
//! attacker cannot be touched. The attacker's goals, formalized as linear
//! programs over `m` (the estimate responds linearly:
//! `x̂(m) = x̂₀ + A m` with `A = (RᵀR)⁻¹Rᵀ`):
//!
//! * [`strategy::chosen_victim`] — Eq. (4-7): maximize damage `‖m‖₁`
//!   while the chosen victim links classify *abnormal* and all
//!   attacker-adjacent links classify *normal*.
//! * [`strategy::max_damage`] — Eq. (8): additionally search for the
//!   victim set that admits the largest damage.
//! * [`strategy::obfuscation`] — Eq. (9-11): push a substantial set of
//!   links into the *uncertain* band so no clear outlier exists.
//!
//! Feasibility theory lives in [`cut`] (perfect/imperfect cuts, attack
//! presence ratio — Theorems 1 and 2) and [`theory`] (the constructive
//! perfect-cut attack from the proof of Theorem 1). Monte-Carlo success
//! probability experiments (Figs. 7 and 8) live in [`montecarlo`].
//!
//! # Example
//!
//! Frame link 10 of the paper's Fig. 1 network (the attack of Fig. 4):
//!
//! ```
//! use tomo_attack::{attacker::AttackerSet, scenario::AttackScenario, strategy};
//! use tomo_core::fig1;
//! use tomo_core::LinkState;
//!
//! # fn main() -> Result<(), tomo_attack::AttackError> {
//! let system = fig1::fig1_system().unwrap();
//! let topo = fig1::fig1_topology();
//! let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
//! let scenario = AttackScenario::paper_defaults();
//!
//! // Clean link delays of 10 ms each.
//! let x = tomo_linalg::Vector::filled(10, 10.0);
//! let victim = topo.paper_link(10);
//! let outcome = strategy::chosen_victim(&system, &attackers, &scenario, &x, &[victim])?;
//! assert!(outcome.is_success());
//! let o = outcome.success().unwrap();
//! assert_eq!(o.states[victim.index()], LinkState::Abnormal);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod attacker;
pub mod cut;
pub mod manipulation;
pub mod montecarlo;
pub mod outcome;
pub mod scenario;
pub mod strategy;
pub mod theory;

pub use error::AttackError;
pub use outcome::{AttackOutcome, AttackSuccess};
