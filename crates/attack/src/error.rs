use std::error::Error;
use std::fmt;

use tomo_core::CoreError;
use tomo_graph::{LinkId, NodeId};
use tomo_lp::LpError;

/// Errors produced while constructing or solving scapegoating attacks.
///
/// An *infeasible* attack is not an error — it is the
/// [`AttackOutcome::Infeasible`](crate::AttackOutcome) variant — errors
/// indicate malformed inputs or solver breakdowns.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttackError {
    /// An attacker node does not belong to the system's graph.
    UnknownAttacker {
        /// The offending node.
        node: NodeId,
    },
    /// The attacker set is empty.
    NoAttackers,
    /// A victim link does not belong to the system's graph.
    UnknownVictim {
        /// The offending link.
        link: LinkId,
    },
    /// A victim link is controlled by the attackers — Eq. (7) requires
    /// `L_s ∩ L_m = ∅`.
    VictimControlledByAttacker {
        /// The offending link.
        link: LinkId,
    },
    /// The victim set is empty.
    NoVictims,
    /// The baseline link-metric vector has the wrong length.
    BadBaseline {
        /// Expected length (|L|).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// An underlying tomography operation failed.
    Core(CoreError),
    /// The LP solver failed (iteration limit — should not occur).
    Lp(LpError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::UnknownAttacker { node } => {
                write!(f, "attacker node {node} is not in the graph")
            }
            AttackError::NoAttackers => write!(f, "attacker set is empty"),
            AttackError::UnknownVictim { link } => {
                write!(f, "victim link {link} is not in the graph")
            }
            AttackError::VictimControlledByAttacker { link } => write!(
                f,
                "victim link {link} is attacker-controlled; Eq. (7) requires disjoint sets"
            ),
            AttackError::NoVictims => write!(f, "victim set is empty"),
            AttackError::BadBaseline { expected, got } => {
                write!(f, "baseline metrics: expected length {expected}, got {got}")
            }
            AttackError::Core(e) => write!(f, "tomography error: {e}"),
            AttackError::Lp(e) => write!(f, "LP solver error: {e}"),
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Core(e) => Some(e),
            AttackError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for AttackError {
    fn from(e: CoreError) -> Self {
        AttackError::Core(e)
    }
}

impl From<LpError> for AttackError {
    fn from(e: LpError) -> Self {
        AttackError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(AttackError::NoAttackers.to_string().contains("empty"));
        let e = AttackError::VictimControlledByAttacker { link: LinkId(3) };
        assert!(e.to_string().contains("l3"));
        assert!(e.source().is_none());
        let c: AttackError = CoreError::NoPaths.into();
        assert!(c.source().is_some());
        let l: AttackError = LpError::IterationLimit { limit: 5 }.into();
        assert!(l.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
