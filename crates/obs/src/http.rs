//! A zero-dependency blocking HTTP/1.1 server loop.
//!
//! [`HttpServer`] is a minimal request/response loop over plain
//! `std::net`: one connection at a time, a caller-supplied handler
//! mapping [`HttpRequest`] to [`HttpResponse`]. It exists so every
//! HTTP-fronted component in the workspace (the Prometheus scrape
//! endpoint here, the `tomo-serve` daemon's query/health front) shares
//! one hardened accept loop — deadlines, drain-on-shutdown — instead of
//! growing private copies.
//!
//! [`MetricsServer`] is the original scrape endpoint, now a thin wrapper
//! serving the global registry in Prometheus text exposition at
//! `GET /metrics` (plus a `GET /healthz` liveness probe).
//!
//! Servers bind loopback only: the simulator has no business listening
//! on external interfaces.
//!
//! # Shutdown semantics
//!
//! [`HttpServerHandle::shutdown`] sets the stop flag and wakes the
//! accept loop with a throwaway self-connect. The loop then *drains*:
//! every connection already accepted or sitting in the listen backlog is
//! served (bounded by the per-connection read deadline) before the
//! thread exits, so a request that raced the shutdown still gets its
//! response instead of a silent hangup.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::prometheus::prometheus_text;

/// How long a single request may dawdle before the connection is cut.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request body the loop will buffer (requests, not ingest).
const MAX_BODY_LEN: usize = 1 << 20;

/// One parsed HTTP request, as seen by a [`Handler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), uppercased as received.
    pub method: String,
    /// Request target with any `?query` suffix stripped.
    pub target: String,
    /// The raw query string after `?`, when present.
    pub query: Option<String>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// The handler's answer: status line tail, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code and reason, e.g. `"200 OK"`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Extra headers rendered verbatim (`name: value`), e.g.
    /// `Retry-After` on a backpressure 503.
    pub extra_headers: Vec<(String, String)>,
}

impl HttpResponse {
    /// A `200 OK` response.
    #[must_use]
    pub fn ok(content_type: &'static str, body: String) -> Self {
        HttpResponse {
            status: "200 OK",
            content_type,
            body,
            extra_headers: Vec::new(),
        }
    }

    /// A `404 Not Found` response.
    #[must_use]
    pub fn not_found() -> Self {
        HttpResponse {
            status: "404 Not Found",
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".to_string(),
            extra_headers: Vec::new(),
        }
    }

    /// A `405 Method Not Allowed` response.
    #[must_use]
    pub fn method_not_allowed() -> Self {
        HttpResponse {
            status: "405 Method Not Allowed",
            content_type: "text/plain; charset=utf-8",
            body: "method not allowed\n".to_string(),
            extra_headers: Vec::new(),
        }
    }

    /// A `503 Service Unavailable` with a `Retry-After` hint in seconds.
    #[must_use]
    pub fn unavailable(body: String, retry_after_secs: u64) -> Self {
        HttpResponse {
            status: "503 Service Unavailable",
            content_type: "text/plain; charset=utf-8",
            body,
            extra_headers: vec![("Retry-After".to_string(), retry_after_secs.to_string())],
        }
    }
}

/// A request handler shared across the accept loop's lifetime.
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// A bound-but-not-yet-serving HTTP endpoint.
pub struct HttpServer {
    listener: TcpListener,
}

/// Handle to an [`HttpServer`] running on a background thread.
///
/// Dropping the handle shuts the server down and joins the thread.
pub struct HttpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `127.0.0.1:port` (`port` 0 asks the OS for a free port).
    ///
    /// # Errors
    ///
    /// Returns the bind error (e.g. the port is taken).
    pub fn bind(port: u16) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        Ok(HttpServer { listener })
    }

    /// The address the server is listening on.
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves requests on the calling thread until the process exits.
    ///
    /// # Errors
    ///
    /// Returns the first fatal `accept` error; per-connection errors
    /// (malformed requests, client hangups) are swallowed.
    pub fn serve_forever(self, handler: Handler) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            // A broken request must not take the loop down.
            let _ = handle_connection(stream, &handler);
        }
    }

    /// Serves requests on a background thread; the returned handle stops
    /// the server when dropped.
    ///
    /// # Errors
    ///
    /// Returns the socket error if the local address cannot be read.
    pub fn spawn(self, handler: Handler) -> std::io::Result<HttpServerHandle> {
        self.spawn_named(handler, "tomo-http")
    }

    /// [`Self::spawn`] with an explicit thread name.
    ///
    /// # Errors
    ///
    /// Returns the socket error if the local address cannot be read, or
    /// the spawn error.
    pub fn spawn_named(self, handler: Handler, name: &str) -> std::io::Result<HttpServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let listener = self.listener;
        let thread = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        // Serve every accepted connection, even one that
                        // raced the stop flag: the shutdown self-connect
                        // closes instantly (EOF, no response written),
                        // while a real request gets its answer.
                        Ok((stream, _)) => {
                            let _ = handle_connection(stream, &handler);
                        }
                        Err(_) => break,
                    }
                }
                // Drain the listen backlog before exiting: connections
                // the OS accepted on our behalf while we were busy must
                // be served, not reset. Nonblocking accept empties the
                // queue and WouldBlock marks the true end.
                if listener.set_nonblocking(true).is_ok() {
                    while let Ok((stream, _)) = listener.accept() {
                        let _ = stream.set_nonblocking(false);
                        let _ = handle_connection(stream, &handler);
                    }
                }
            })?;
        Ok(HttpServerHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }
}

impl HttpServerHandle {
    /// The address the background server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server, drains pending connections, and joins its
    /// thread (idempotent).
    pub fn shutdown(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `accept`; a throwaway self-connect
        // wakes it so it can observe the stop flag and drain.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for HttpServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The Prometheus scrape endpoint: `GET /metrics` renders the global
/// registry, `GET /healthz` answers liveness probes.
pub struct MetricsServer {
    inner: HttpServer,
}

/// Handle to a [`MetricsServer`] running on a background thread.
///
/// Dropping the handle shuts the server down and joins the thread.
pub struct MetricsServerHandle {
    inner: HttpServerHandle,
}

fn metrics_handler() -> Handler {
    Arc::new(|req: &HttpRequest| {
        if req.method != "GET" {
            return HttpResponse::method_not_allowed();
        }
        match req.target.as_str() {
            "/metrics" => HttpResponse::ok(
                "text/plain; version=0.0.4; charset=utf-8",
                prometheus_text(&crate::snapshot()),
            ),
            "/healthz" => HttpResponse::ok("text/plain; charset=utf-8", "ok\n".to_string()),
            _ => HttpResponse::not_found(),
        }
    })
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` (`port` 0 asks the OS for a free port).
    ///
    /// # Errors
    ///
    /// Returns the bind error (e.g. the port is taken).
    pub fn bind(port: u16) -> std::io::Result<MetricsServer> {
        Ok(MetricsServer {
            inner: HttpServer::bind(port)?,
        })
    }

    /// The address the server is listening on.
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Serves scrapes on the calling thread until the process exits.
    ///
    /// # Errors
    ///
    /// Returns the first fatal `accept` error; per-connection errors
    /// (malformed requests, client hangups) are swallowed.
    pub fn serve_forever(self) -> std::io::Result<()> {
        self.inner.serve_forever(metrics_handler())
    }

    /// Serves scrapes on a background thread; the returned handle stops
    /// the server when dropped.
    ///
    /// # Errors
    ///
    /// Returns the socket error if the local address cannot be read.
    pub fn spawn(self) -> std::io::Result<MetricsServerHandle> {
        Ok(MetricsServerHandle {
            inner: self.inner.spawn_named(metrics_handler(), "tomo-metrics")?,
        })
    }
}

impl MetricsServerHandle {
    /// The address the background server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Stops the server and joins its thread (idempotent).
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

fn handle_connection(stream: TcpStream, handler: &Handler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; only Content-Length matters for the bodies we take.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let raw_target = parts.next().unwrap_or("").to_string();
    let (target, query) = match raw_target.split_once('?') {
        Some((t, q)) => (t.to_string(), Some(q.to_string())),
        None => (raw_target, None),
    };

    let mut body = Vec::new();
    if content_length > 0 && content_length <= MAX_BODY_LEN {
        body.resize(content_length, 0);
        reader.read_exact(&mut body)?;
    }

    let mut stream = reader.into_inner();
    if method.is_empty() {
        // EOF before a request line (e.g. the shutdown wake): nothing to
        // answer.
        return Ok(());
    }
    let response = handler(&HttpRequest {
        method,
        target,
        query,
        body,
    });
    respond(&mut stream, &response)
}

fn respond(stream: &mut TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    let mut header = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        header.push_str(&format!("{name}: {value}\r\n"));
    }
    header.push_str("Connection: close\r\n\r\n");
    stream.write_all(header.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    #[test]
    fn scrape_loop_serves_metrics_health_and_404() {
        crate::counter("http.test.scrapes").inc();
        let server = MetricsServer::bind(0).expect("bind loopback");
        let mut handle = server.spawn().expect("spawn");
        let addr = handle.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("tomo_http_test_scrapes"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(health.ends_with("ok\n"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));

        handle.shutdown();
    }

    #[test]
    fn non_get_method_is_rejected() {
        let server = MetricsServer::bind(0).expect("bind loopback");
        let handle = server.spawn().expect("spawn");
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn content_length_matches_body() {
        crate::counter("http.test.length").inc();
        let server = MetricsServer::bind(0).expect("bind loopback");
        let handle = server.spawn().expect("spawn");
        let response = get(handle.local_addr(), "/metrics");
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .parse()
            .expect("numeric length");
        assert_eq!(length, body.len());
    }

    #[test]
    fn generic_handler_sees_method_target_query_and_body() {
        let server = HttpServer::bind(0).expect("bind loopback");
        let handler: Handler = Arc::new(|req: &HttpRequest| {
            HttpResponse::ok(
                "text/plain; charset=utf-8",
                format!(
                    "{} {} {} {}",
                    req.method,
                    req.target,
                    req.query.as_deref().unwrap_or("-"),
                    String::from_utf8_lossy(&req.body)
                ),
            )
        });
        let handle = server.spawn(handler).expect("spawn");
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        write!(
            stream,
            "POST /echo?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
        )
        .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.ends_with("POST /echo x=1 hello"), "{response}");
    }

    #[test]
    fn unavailable_response_carries_retry_after() {
        let server = HttpServer::bind(0).expect("bind loopback");
        let handler: Handler =
            Arc::new(|_req: &HttpRequest| HttpResponse::unavailable("busy\n".to_string(), 3));
        let handle = server.spawn(handler).expect("spawn");
        let response = get(handle.local_addr(), "/anything");
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert!(response.contains("Retry-After: 3\r\n"), "{response}");
    }

    /// Regression test for the shutdown race: a connection accepted (or
    /// queued in the backlog) concurrently with `shutdown` must still be
    /// served, not silently dropped.
    ///
    /// The server thread is pinned inside `handle_connection` for a slow
    /// first client, guaranteeing the second client's connection and the
    /// shutdown self-connect both sit in the listen backlog when the
    /// stop flag is raised. Before the drain fix the loop exited without
    /// touching the backlog and the second client read an empty reply.
    #[test]
    fn shutdown_drains_concurrently_accepted_connections() {
        crate::counter("http.test.drain").inc();
        let server = MetricsServer::bind(0).expect("bind loopback");
        let handle = server.spawn().expect("spawn");
        let addr = handle.local_addr();

        // Slow client: connect and hold the request back so the server
        // thread blocks reading it.
        let mut slow = TcpStream::connect(addr).expect("slow connect");
        std::thread::sleep(Duration::from_millis(50)); // let accept() run

        // Fast client: request already written, waiting in the backlog.
        let mut fast = TcpStream::connect(addr).expect("fast connect");
        write!(fast, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("fast request");

        // Shut down while the server is still busy with the slow client.
        let mut handle = handle;
        let shutdown = std::thread::spawn(move || handle.shutdown());
        std::thread::sleep(Duration::from_millis(50));

        // Release the slow client; both must receive full responses.
        write!(slow, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("slow request");
        let mut slow_response = String::new();
        slow.read_to_string(&mut slow_response).expect("slow read");
        assert!(slow_response.starts_with("HTTP/1.1 200"), "{slow_response}");

        let mut fast_response = String::new();
        fast.read_to_string(&mut fast_response).expect("fast read");
        assert!(
            fast_response.starts_with("HTTP/1.1 200"),
            "backlogged connection dropped during shutdown: {fast_response:?}"
        );
        shutdown.join().expect("shutdown join");
    }
}
