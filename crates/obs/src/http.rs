//! A zero-dependency blocking HTTP/1.1 scrape endpoint.
//!
//! [`MetricsServer`] serves the global registry in Prometheus text
//! exposition at `GET /metrics` (plus a `GET /healthz` liveness probe).
//! One connection is handled at a time — a scrape loop, not a web
//! server — which keeps the implementation at plain `std::net` and is
//! deliberately the first brick of the roadmap's `tomo-serve` daemon.
//!
//! The server binds loopback only: the simulator has no business
//! listening on external interfaces.

use std::io::{BufRead, BufReader, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::prometheus::prometheus_text;

/// How long a single request may dawdle before the connection is cut.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A bound-but-not-yet-serving metrics endpoint.
pub struct MetricsServer {
    listener: TcpListener,
}

/// Handle to a [`MetricsServer`] running on a background thread.
///
/// Dropping the handle shuts the server down and joins the thread.
pub struct MetricsServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `127.0.0.1:port` (`port` 0 asks the OS for a free port).
    ///
    /// # Errors
    ///
    /// Returns the bind error (e.g. the port is taken).
    pub fn bind(port: u16) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        Ok(MetricsServer { listener })
    }

    /// The address the server is listening on.
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves scrapes on the calling thread until the process exits.
    ///
    /// # Errors
    ///
    /// Returns the first fatal `accept` error; per-connection errors
    /// (malformed requests, client hangups) are swallowed.
    pub fn serve_forever(self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            // A broken scrape must not take the loop down.
            let _ = handle_connection(stream);
        }
    }

    /// Serves scrapes on a background thread; the returned handle stops
    /// the server when dropped.
    ///
    /// # Errors
    ///
    /// Returns the socket error if the local address cannot be read.
    pub fn spawn(self) -> std::io::Result<MetricsServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let listener = self.listener;
        let thread = std::thread::Builder::new()
            .name("tomo-metrics".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stop_flag.load(Ordering::Relaxed) {
                                break;
                            }
                            let _ = handle_connection(stream);
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(MetricsServerHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }
}

impl MetricsServerHandle {
    /// The address the background server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread (idempotent).
    pub fn shutdown(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop blocks in `accept`; a throwaway self-connect
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; the bodyless GETs we serve need none of them.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let target = path.split('?').next().unwrap_or(path);

    let mut stream = reader.into_inner();
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    match target {
        "/metrics" => {
            let body = prometheus_text(&crate::snapshot());
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    #[test]
    fn scrape_loop_serves_metrics_health_and_404() {
        crate::counter("http.test.scrapes").inc();
        let server = MetricsServer::bind(0).expect("bind loopback");
        let mut handle = server.spawn().expect("spawn");
        let addr = handle.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("tomo_http_test_scrapes"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(health.ends_with("ok\n"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));

        handle.shutdown();
    }

    #[test]
    fn non_get_method_is_rejected() {
        let server = MetricsServer::bind(0).expect("bind loopback");
        let handle = server.spawn().expect("spawn");
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn content_length_matches_body() {
        crate::counter("http.test.length").inc();
        let server = MetricsServer::bind(0).expect("bind loopback");
        let handle = server.spawn().expect("spawn");
        let response = get(handle.local_addr(), "/metrics");
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .parse()
            .expect("numeric length");
        assert_eq!(length, body.len());
    }
}
