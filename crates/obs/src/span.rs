//! Hierarchical wall-clock spans.
//!
//! A [`SpanGuard`] times the region between its creation and drop. Spans
//! nest per thread: a span opened while another is active records under
//! the `/`-joined path `parent/child`, so the registry aggregates each
//! distinct call path separately. In verbose mode (see
//! [`set_verbose`]) every span prints an indented line to stderr as it
//! closes — children appear above their parent, deepest first.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

static VERBOSE: AtomicBool = AtomicBool::new(false);

/// Enables or disables printing span timings to stderr on close.
pub fn set_verbose(on: bool) {
    VERBOSE.store(on, Ordering::Relaxed);
}

/// Whether verbose span printing is enabled.
#[must_use]
pub fn verbose() -> bool {
    VERBOSE.load(Ordering::Relaxed)
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSummary {
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall-clock time across all closes, in nanoseconds.
    pub duration_ns: u64,
    /// Fastest single close, in nanoseconds.
    pub min_ns: u64,
    /// Slowest single close, in nanoseconds.
    pub max_ns: u64,
}

impl SpanSummary {
    pub(crate) fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.duration_ns += ns;
        self.min_ns = if self.count == 1 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
    }
}

/// RAII timer for one span; records into the global registry on drop.
///
/// When tracing is enabled (see [`crate::set_tracing`]) the guard also
/// carries a process-unique span id and an explicit parent link, and
/// pushes a [`crate::TraceEvent::Span`] into the trace journal on drop.
pub struct SpanGuard {
    path: String,
    depth: usize,
    start: Instant,
    /// Trace identity: 0 when tracing was off at open time.
    trace_id: u64,
    /// The parent to restore on the thread when this span closes.
    trace_prev: u64,
    /// This span's parent id in the trace tree.
    trace_parent: u64,
    /// Open timestamp, ns since the trace epoch (only when traced).
    start_ns: u64,
}

/// Opens a span named `name`, nested under the thread's innermost open
/// span (if any).
#[must_use = "a span measures the region until the guard is dropped"]
pub fn span(name: &str) -> SpanGuard {
    let (path, depth) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        (path, stack.len() - 1)
    });
    let (trace_id, trace_prev, trace_parent, start_ns) = if crate::tracing_enabled() {
        let id = crate::trace::next_span_id();
        let prev = crate::trace::swap_current_parent(id);
        (id, prev, prev, crate::trace::now_ns())
    } else {
        (0, 0, 0, 0)
    };
    SpanGuard {
        path,
        depth,
        start: Instant::now(),
        trace_id,
        trace_prev,
        trace_parent,
        start_ns,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards normally drop LIFO; tolerate leaks by popping only
            // our own entry when it is still the innermost one.
            if stack.last() == Some(&self.path) {
                stack.pop();
            }
        });
        if self.trace_id != 0 {
            crate::trace::restore_parent(self.trace_prev);
            // Still journal the close even if tracing was switched off
            // mid-span: a tree with holes is worse than a few extra
            // events at the shutdown boundary.
            let name = self.path.rsplit('/').next().unwrap_or(&self.path);
            crate::trace::record_span_event(
                self.trace_id,
                self.trace_parent,
                name,
                &self.path,
                self.start_ns,
                ns,
            );
        }
        crate::record_span(&self.path, ns);
        if verbose() {
            let name = self.path.rsplit('/').next().unwrap_or(&self.path);
            eprintln!(
                "{:indent$}[span] {name} {}",
                "",
                fmt_ns(ns),
                indent = 2 * self.depth
            );
        }
    }
}

/// Formats a nanosecond duration for humans.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_min_max_total() {
        let mut s = SpanSummary {
            count: 0,
            duration_ns: 0,
            min_ns: 0,
            max_ns: 0,
        };
        s.observe(10);
        s.observe(30);
        s.observe(20);
        assert_eq!(s.count, 3);
        assert_eq!(s.duration_ns, 60);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500_000), "1.500 ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.000 s");
        assert!(fmt_ns(3_000).contains("us"));
    }
}
