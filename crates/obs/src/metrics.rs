//! Counters, gauges, and log-scale histograms.
//!
//! All instruments are lock-free on the hot path: a [`Counter`] is one
//! relaxed atomic add, a [`Gauge`] one atomic store, and a
//! [`Histogram::record`] a handful of relaxed atomic operations. Name
//! resolution through the global registry happens once per call site via
//! the `Lazy*` handles, never per update.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A monotonically increasing `u64` counter.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a standalone (unregistered) counter; named counters come
    /// from [`crate::counter`].
    #[must_use]
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins `f64` gauge.
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a standalone (unregistered) gauge; named gauges come from
    /// [`crate::gauge`].
    #[must_use]
    pub const fn new() -> Self {
        // 0u64 is the bit pattern of 0.0f64.
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Stores a new value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;
/// Binary exponent of bucket 0's upper edge minus one: bucket `i` covers
/// `[2^(i + MIN_EXP), 2^(i + MIN_EXP + 1))`.
const MIN_EXP: i32 = -32;

/// Percentile summary of a histogram, as captured in snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (0 when empty).
    pub min: f64,
    /// Largest recorded value (0 when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// A log-scale histogram of non-negative `f64` values.
///
/// Values land in one of [`HISTOGRAM_BUCKETS`] power-of-two buckets:
/// bucket `i` covers `[2^(i-32), 2^(i-31))`, with bucket 0 additionally
/// absorbing everything below `2^-32` (including zero and negatives) and
/// the last bucket everything at or above `2^31`. Percentile queries
/// return the geometric midpoint of the target bucket, clamped to the
/// exact observed `[min, max]` range, so single-bucket distributions
/// report exact percentiles.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// Creates a standalone (unregistered) histogram; named histograms
    /// come from [`crate::histogram`].
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// The bucket a value lands in.
    #[must_use]
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value <= 0.0 {
            // Zero, negatives, and NaN all collapse into bucket 0.
            return 0;
        }
        let biased = ((value.to_bits() >> 52) & 0x7ff) as i32;
        if biased == 0x7ff {
            return HISTOGRAM_BUCKETS - 1; // +inf
        }
        // Subnormals (biased == 0) sit far below 2^MIN_EXP: bucket 0.
        let exp = biased - 1023;
        (exp - MIN_EXP).clamp(0, HISTOGRAM_BUCKETS as i32 - 1) as usize
    }

    /// The `[lower, upper)` value range of a bucket.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (f64, f64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket {index} out of range");
        let lo = 2.0f64.powi(index as i32 + MIN_EXP);
        (lo, lo * 2.0)
    }

    /// Records one value. NaN is ignored.
    pub fn record(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        fetch_update_f64(&self.sum_bits, |s| s + value);
        fetch_update_f64(&self.min_bits, |m| m.min(value));
        fetch_update_f64(&self.max_bits, |m| m.max(value));
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`), or `None` when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
                let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
                // Clamp the geometric midpoint into the bucket's range
                // intersected with the observed [min, max]; when that
                // intersection is empty (out-of-range values pooled into
                // an edge bucket) fall back to the observed range.
                let (mut lower, mut upper) = (lo.max(min), hi.min(max));
                if lower > upper {
                    (lower, upper) = (min, max);
                }
                return Some((lo * hi).sqrt().clamp(lower, upper));
            }
        }
        None // unreachable: cumulative == count by construction
    }

    /// Full percentile summary (zeros when empty).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        if count == 0 {
            return HistogramSummary {
                count: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        HistogramSummary {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            p50: self.percentile(0.50).unwrap_or(0.0),
            p90: self.percentile(0.90).unwrap_or(0.0),
            p99: self.percentile(0.99).unwrap_or(0.0),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Compare-and-swap update of an `f64` stored as bits in an `AtomicU64`.
fn fetch_update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// A call-site handle to a named [`Counter`]: registry lookup happens on
/// first use, every later update is a single atomic add.
///
/// ```
/// static PIVOTS: tomo_obs::LazyCounter = tomo_obs::LazyCounter::new("doc.example.pivots");
/// PIVOTS.inc();
/// assert_eq!(PIVOTS.get(), 1);
/// ```
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Creates the handle (const, so it can be a `static`).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn handle(&self) -> &'static Counter {
        self.cell.get_or_init(|| crate::counter(self.name))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.handle().inc();
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.handle().add(n);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.handle().get()
    }
}

/// A call-site handle to a named [`Gauge`]; see [`LazyCounter`].
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// Creates the handle (const, so it can be a `static`).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    fn handle(&self) -> &'static Gauge {
        self.cell.get_or_init(|| crate::gauge(self.name))
    }

    /// Stores a new value.
    pub fn set(&self, v: f64) {
        self.handle().set(v);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        self.handle().get()
    }
}

/// A call-site handle to a named [`Histogram`]; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Creates the handle (const, so it can be a `static`).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn handle(&self) -> &'static Histogram {
        self.cell.get_or_init(|| crate::histogram(self.name))
    }

    /// Records one value.
    pub fn record(&self, v: f64) {
        self.handle().record(v);
    }

    /// Full percentile summary.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        self.handle().summary()
    }

    /// Times `f` and records its wall-clock duration in seconds.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _timer = self.start_timer();
        f()
    }

    /// Starts an RAII timer that records the elapsed seconds into this
    /// histogram when dropped — early `return`/`?` paths are timed too,
    /// unlike a hand-rolled `Instant::now()`/`record` pair.
    #[must_use]
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            histogram: self.handle(),
            start: std::time::Instant::now(),
        }
    }
}

/// RAII guard from [`LazyHistogram::start_timer`]; records on drop.
pub struct HistogramTimer {
    histogram: &'static Histogram,
    start: std::time::Instant,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.histogram.record(self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Exactly 1.0 = 2^0 opens the bucket whose bounds are [1, 2).
        let i = Histogram::bucket_index(1.0);
        assert_eq!(Histogram::bucket_bounds(i), (1.0, 2.0));
        assert_eq!(Histogram::bucket_index(1.999_999), i);
        assert_eq!(Histogram::bucket_index(2.0), i + 1);
        // Just below a power of two stays in the lower bucket.
        assert_eq!(Histogram::bucket_index(0.999_999), i - 1);
        // Zero, negatives, NaN collapse to bucket 0; +inf to the last.
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(
            Histogram::bucket_index(f64::INFINITY),
            HISTOGRAM_BUCKETS - 1
        );
        // Every interior bucket's lower bound maps back to that bucket.
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_index(lo), b, "lower bound of {b}");
            assert_eq!(Histogram::bucket_index(hi), b + 1, "upper bound of {b}");
        }
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.0), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn single_sample_percentiles_all_collapse_to_it() {
        let h = Histogram::new();
        h.record(3.25);
        // One sample occupies one bucket; [min, max] clamping makes every
        // quantile report the sample exactly, including the extremes.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(3.25), "q={q}");
        }
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max), (3.25, 3.25));
        assert_eq!((s.p50, s.p90, s.p99), (3.25, 3.25, 3.25));
    }

    #[test]
    fn all_equal_samples_have_degenerate_spread() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(0.125);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, s.max);
        assert_eq!(s.p50, 0.125);
        assert_eq!(s.p90, 0.125);
        assert_eq!(s.p99, 0.125);
        assert!((s.sum - 125.0).abs() < 1e-9);
    }

    #[test]
    fn single_bucket_percentiles_are_exact() {
        let h = Histogram::new();
        for _ in 0..8 {
            h.record(1.5);
        }
        // All mass in [1, 2); clamping to [min, max] = [1.5, 1.5] makes
        // every percentile exact.
        let s = h.summary();
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 1.5);
        assert_eq!(s.max, 1.5);
        assert_eq!(s.p50, 1.5);
        assert_eq!(s.p90, 1.5);
        assert_eq!(s.p99, 1.5);
        assert!((s.sum - 12.0).abs() < 1e-12);
    }

    #[test]
    fn two_cluster_percentiles_pick_the_right_bucket() {
        let h = Histogram::new();
        // 90 small values, 10 large ones: p50 must sit with the small
        // cluster, p99 with the large one.
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!((1.0..2.0).contains(&p50), "p50 {p50}");
        assert!((512.0..=1000.0).contains(&p99), "p99 {p99}");
        // p90 is the boundary: the 90th of 100 values is still small.
        let p90 = h.percentile(0.90).unwrap();
        assert!((1.0..2.0).contains(&p90), "p90 {p90}");
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p50, 0.0);
    }

    #[test]
    fn percentiles_clamp_into_observed_range() {
        let h = Histogram::new();
        // One value near the top of its bucket: the geometric midpoint
        // would undershoot, clamping pulls it back to the observed value.
        h.record(1.9);
        assert_eq!(h.percentile(0.5), Some(1.9));
        assert_eq!(h.percentile(1.0), Some(1.9));
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(3.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        h.record(5.0);
        assert_eq!(h.percentile(0.5), Some(5.0));
    }

    #[test]
    fn lazy_metrics_are_contention_safe() {
        // Hammer the same lazy handles from many threads, including the
        // racy first touch that initializes the registry entry. Every
        // update must land exactly once.
        static MT_COUNTER: LazyCounter = LazyCounter::new("test.metrics.mt.counter");
        static MT_HIST: LazyHistogram = LazyHistogram::new("test.metrics.mt.hist");
        const THREADS: usize = 8;
        const UPDATES: usize = 2_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..UPDATES {
                        MT_COUNTER.inc();
                        MT_HIST.record((t * UPDATES + i) as f64);
                    }
                });
            }
        });
        assert_eq!(MT_COUNTER.get(), (THREADS * UPDATES) as u64);
        let s = MT_HIST.summary();
        assert_eq!(s.count, (THREADS * UPDATES) as u64);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, (THREADS * UPDATES - 1) as f64);
    }

    #[test]
    fn histogram_timer_records_on_early_return() {
        static TIMED: LazyHistogram = LazyHistogram::new("test.metrics.timer.hist");
        fn fallible(fail: bool) -> Result<u32, ()> {
            let _timer = TIMED.start_timer();
            if fail {
                return Err(());
            }
            Ok(7)
        }
        assert_eq!(TIMED.time(|| 41 + 1), 42);
        assert_eq!(TIMED.summary().count, 1);
        assert!(fallible(true).is_err());
        assert_eq!(fallible(false), Ok(7));
        // Both the early-return and the success path were timed.
        assert_eq!(TIMED.summary().count, 3);
    }
}
