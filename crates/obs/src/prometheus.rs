//! Prometheus text exposition (version 0.0.4) for a [`Snapshot`].
//!
//! Renders every registered instrument into the plain-text scrape
//! format: counters and gauges as single samples, histograms as
//! `summary` families (pre-computed p50/p90/p99 quantiles plus
//! `_sum`/`_count`), and span statistics as two labelled counter
//! families keyed on the `/`-joined call path. Metric names are
//! sanitized to the Prometheus charset and prefixed `tomo_`; rows come
//! out name-sorted because snapshots are name-sorted by construction.

use crate::{HistogramSummary, Snapshot, SpanSummary};

/// Maps an internal dotted metric name (`lp.simplex.pivots`) to a legal
/// Prometheus name (`tomo_lp_simplex_pivots`).
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("tomo_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped.
fn label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a float sample value (Prometheus accepts `NaN`/`+Inf`/`-Inf`
/// spellings, unlike JSON).
fn sample(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        crate::json::float(v)
    }
}

fn push_histogram(out: &mut String, name: &str, s: &HistogramSummary) {
    let n = metric_name(name);
    out.push_str(&format!("# TYPE {n} summary\n"));
    for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
        out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", sample(v)));
    }
    out.push_str(&format!("{n}_sum {}\n", sample(s.sum)));
    out.push_str(&format!("{n}_count {}\n", s.count));
}

fn push_spans(out: &mut String, spans: &[(String, SpanSummary)]) {
    if spans.is_empty() {
        return;
    }
    out.push_str("# TYPE tomo_span_calls_total counter\n");
    for (path, s) in spans {
        out.push_str(&format!(
            "tomo_span_calls_total{{path=\"{}\"}} {}\n",
            label_value(path),
            s.count
        ));
    }
    out.push_str("# TYPE tomo_span_duration_ns_total counter\n");
    for (path, s) in spans {
        out.push_str(&format!(
            "tomo_span_duration_ns_total{{path=\"{}\"}} {}\n",
            label_value(path),
            s.duration_ns
        ));
    }
}

/// Renders `snapshot` in the Prometheus text exposition format.
#[must_use]
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = metric_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let n = metric_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", sample(*value)));
    }
    for (name, summary) in &snapshot.histograms {
        push_histogram(&mut out, name, summary);
    }
    push_spans(&mut out, &snapshot.spans);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![("lp.simplex.pivots".into(), 42)],
            gauges: vec![("par.workers".into(), 2.0)],
            histograms: vec![(
                "attack.damage".into(),
                HistogramSummary {
                    count: 3,
                    sum: 6.0,
                    min: 1.0,
                    max: 3.0,
                    p50: 2.0,
                    p90: 3.0,
                    p99: 3.0,
                },
            )],
            spans: vec![(
                "sim.fig7/par.worker".into(),
                SpanSummary {
                    count: 80,
                    duration_ns: 1_000_000,
                    min_ns: 10,
                    max_ns: 100_000,
                },
            )],
        }
    }

    #[test]
    fn renders_all_instrument_families() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE tomo_lp_simplex_pivots counter\n"));
        assert!(text.contains("tomo_lp_simplex_pivots 42\n"));
        assert!(text.contains("# TYPE tomo_par_workers gauge\n"));
        assert!(text.contains("tomo_par_workers 2.0\n"));
        assert!(text.contains("# TYPE tomo_attack_damage summary\n"));
        assert!(text.contains("tomo_attack_damage{quantile=\"0.5\"} 2.0\n"));
        assert!(text.contains("tomo_attack_damage_sum 6.0\n"));
        assert!(text.contains("tomo_attack_damage_count 3\n"));
        assert!(text.contains("tomo_span_calls_total{path=\"sim.fig7/par.worker\"} 80\n"));
        assert!(
            text.contains("tomo_span_duration_ns_total{path=\"sim.fig7/par.worker\"} 1000000\n")
        );
    }

    #[test]
    fn sanitizes_names_and_escapes_labels() {
        let snap = Snapshot {
            counters: vec![("weird-name with spaces!".into(), 1)],
            gauges: vec![],
            histograms: vec![],
            spans: vec![(
                "path\"with\\quotes\nand newline".into(),
                SpanSummary {
                    count: 1,
                    duration_ns: 1,
                    min_ns: 1,
                    max_ns: 1,
                },
            )],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("tomo_weird_name_with_spaces_ 1\n"));
        assert!(text.contains("path=\"path\\\"with\\\\quotes\\nand newline\""));
    }

    #[test]
    fn non_finite_samples_use_prometheus_spellings() {
        assert_eq!(sample(f64::NAN), "NaN");
        assert_eq!(sample(f64::INFINITY), "+Inf");
        assert_eq!(sample(f64::NEG_INFINITY), "-Inf");
        assert_eq!(sample(1.5), "1.5");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            spans: vec![],
        };
        assert_eq!(prometheus_text(&snap), "");
    }
}
