//! Minimal JSON rendering for metrics snapshots.
//!
//! The observability layer must not depend on the rest of the workspace
//! (everything else depends on *it*), so snapshots are rendered with this
//! tiny writer instead of `serde_json`. Output is a strict subset of
//! JSON: objects with string keys, `u64`/`f64` numbers, and strings.

use std::fmt::Write as _;

/// Escapes a string into a JSON string literal (including the quotes).
pub(crate) fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` so it parses back exactly (shortest roundtrip form);
/// non-finite values become `null`, which JSON cannot represent.
pub(crate) fn float(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_specials() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn quotes_and_backslashes_escape_independently() {
        assert_eq!(string(""), "\"\"");
        assert_eq!(string("\""), "\"\\\"\"");
        assert_eq!(string("\\"), "\"\\\\\"");
        // A backslash before a quote must not swallow the quote escape.
        assert_eq!(string("\\\""), "\"\\\\\\\"\"");
        // Already-escaped-looking input is data, not syntax.
        assert_eq!(string("\\n"), "\"\\\\n\"");
    }

    #[test]
    fn every_control_char_is_escaped() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let rendered = string(&c.to_string());
            let expected = match c {
                '\n' => "\"\\n\"".to_string(),
                '\r' => "\"\\r\"".to_string(),
                '\t' => "\"\\t\"".to_string(),
                _ => format!("\"\\u{code:04x}\""),
            };
            assert_eq!(rendered, expected, "control char {code:#04x}");
            // Nothing below 0x20 may survive raw inside the literal.
            assert!(
                rendered.chars().all(|r| (r as u32) >= 0x20),
                "raw control char leaked for {code:#04x}"
            );
        }
        // 0x20 and above (and non-ASCII) pass through untouched.
        assert_eq!(string(" ~é∑"), "\" ~é∑\"");
    }

    #[test]
    fn floats_roundtrip_and_mark_integrals() {
        assert_eq!(float(1.0), "1.0");
        assert_eq!(float(0.1), "0.1");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
        let third = 1.0 / 3.0;
        assert_eq!(float(third).parse::<f64>().unwrap(), third);
    }
}
