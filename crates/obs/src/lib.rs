//! Zero-dependency observability for the scapegoating reproduction.
//!
//! Every other crate in the workspace can afford to depend on this one:
//! it is pure `std` (no tracing/metrics ecosystems, which the offline
//! build environment could not fetch anyway) and all hot-path operations
//! are a few relaxed atomics. Three instrument families share one global
//! registry:
//!
//! * **metrics** — named [`Counter`]s, [`Gauge`]s, and log-scale
//!   [`Histogram`]s with p50/p90/p99 summaries. Hot call sites declare a
//!   `static` [`LazyCounter`]/[`LazyHistogram`] handle so the name lookup
//!   happens once, not per update.
//! * **spans** — RAII wall-clock timers ([`span`]) that nest per thread
//!   and aggregate per `/`-joined call path; `--verbose` printing via
//!   [`set_verbose`].
//! * **events** — a level-filtered log ([`info!`], [`debug!`], …)
//!   controlled by the `TOMO_LOG` environment variable, rendering
//!   human-readable lines to stderr and JSON lines to an optional file.
//! * **traces** — opt-in ([`set_tracing`]) per-event recording of span
//!   trees with explicit parent links that survive `tomo-par` thread
//!   hops ([`TraceContext`]), plus per-trial provenance records
//!   ([`record_trial`]), in a fixed-capacity ring journal exportable as
//!   Chrome trace-event JSON ([`write_chrome_trace`]) or scrapeable as
//!   Prometheus text ([`prometheus_text`], [`MetricsServer`]).
//!
//! Metric names follow `<crate>.<component>.<name>`, e.g.
//! `lp.simplex.pivots` or `attack.chosen_victim.damage`.
//!
//! [`snapshot`] captures everything recorded so far; its JSON form backs
//! `tomo-sim run … --metrics FILE`.
//!
//! ```
//! static SOLVES: tomo_obs::LazyCounter = tomo_obs::LazyCounter::new("doc.solver.solves");
//!
//! fn solve() {
//!     let _span = tomo_obs::span("doc.solve");
//!     SOLVES.inc();
//! }
//! solve();
//! let snap = tomo_obs::snapshot();
//! assert_eq!(snap.counter("doc.solver.solves"), Some(1));
//! assert!(snap.span("doc.solve").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
mod json;
mod log;
mod metrics;
mod prometheus;
mod span;
mod trace;

pub use http::{
    Handler, HttpRequest, HttpResponse, HttpServer, HttpServerHandle, MetricsServer,
    MetricsServerHandle,
};
pub use log::{log_enabled, log_record, set_log_json, set_max_level, Level};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, HistogramTimer, LazyCounter, LazyGauge,
    LazyHistogram, HISTOGRAM_BUCKETS,
};
pub use prometheus::prometheus_text;
pub use span::{fmt_ns, set_verbose, span, verbose, SpanGuard, SpanSummary};
pub use trace::{
    chrome_trace_json, journal_capacity, journal_snapshot, now_ns, record_trial, reset_journal,
    set_journal_capacity, set_tracing, thread_tid, tracing_enabled, write_chrome_trace,
    ChromeTraceStats, ContextGuard, JournalSnapshot, TraceContext, TraceEvent, TrialProvenance,
    DEFAULT_JOURNAL_CAPACITY,
};

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    spans: Mutex<BTreeMap<String, SpanSummary>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The counter registered under `name` (registering it on first use).
///
/// Instrument handles live for the program's lifetime (they are leaked
/// once per name), so [`reset`] zeroes values without invalidating them.
pub fn counter(name: &'static str) -> &'static Counter {
    lock(&registry().counters)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// The gauge registered under `name` (registering it on first use).
pub fn gauge(name: &'static str) -> &'static Gauge {
    lock(&registry().gauges)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// The histogram registered under `name` (registering it on first use).
pub fn histogram(name: &'static str) -> &'static Histogram {
    lock(&registry().histograms)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// The gauge registered under `"{prefix}.{index}"`, for families of
/// per-shard / per-worker instruments whose cardinality is only known at
/// runtime. The composed name is leaked once per distinct `(prefix,
/// index)` pair — the same lifetime [`gauge`] gives static names — so
/// callers should keep the index space small and bounded (shard counts,
/// not request ids).
pub fn indexed_gauge(prefix: &str, index: usize) -> &'static Gauge {
    let name = format!("{prefix}.{index}");
    let mut gauges = lock(&registry().gauges);
    if let Some(g) = gauges.get(name.as_str()) {
        return g;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    gauges.insert(leaked, Box::leak(Box::new(Gauge::new())));
    gauges[leaked]
}

/// The counter registered under `"{prefix}.{index}"` (see
/// [`indexed_gauge`] for the naming and lifetime contract).
pub fn indexed_counter(prefix: &str, index: usize) -> &'static Counter {
    let name = format!("{prefix}.{index}");
    let mut counters = lock(&registry().counters);
    if let Some(c) = counters.get(name.as_str()) {
        return c;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    counters.insert(leaked, Box::leak(Box::new(Counter::new())));
    counters[leaked]
}

pub(crate) fn record_span(path: &str, ns: u64) {
    let mut spans = lock(&registry().spans);
    match spans.get_mut(path) {
        Some(stats) => stats.observe(ns),
        None => {
            let mut stats = SpanSummary {
                count: 0,
                duration_ns: 0,
                min_ns: 0,
                max_ns: 0,
            };
            stats.observe(ns);
            spans.insert(path.to_string(), stats);
        }
    }
}

/// Zeroes every registered instrument and clears span statistics.
///
/// Registered names (and the `&'static` handles pointing at them) stay
/// valid; only their recorded values are discarded.
pub fn reset() {
    for c in lock(&registry().counters).values() {
        c.reset();
    }
    for g in lock(&registry().gauges).values() {
        g.reset();
    }
    for h in lock(&registry().histograms).values() {
        h.reset();
    }
    lock(&registry().spans).clear();
}

/// A point-in-time copy of everything the registry has recorded.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Span statistics by `/`-joined path.
    pub spans: Vec<(String, SpanSummary)>,
}

/// Captures the current state of all instruments (sorted by name).
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot {
        counters: lock(&registry().counters)
            .iter()
            .map(|(&n, c)| (n.to_string(), c.get()))
            .collect(),
        gauges: lock(&registry().gauges)
            .iter()
            .map(|(&n, g)| (n.to_string(), g.get()))
            .collect(),
        histograms: lock(&registry().histograms)
            .iter()
            .map(|(&n, h)| (n.to_string(), h.summary()))
            .collect(),
        spans: lock(&registry().spans)
            .iter()
            .map(|(n, s)| (n.clone(), *s))
            .collect(),
    }
}

impl Snapshot {
    /// Looks up a counter value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge value by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Looks up span statistics by exact path.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|(n, _)| n == path).map(|(_, s)| s)
    }

    /// Renders the snapshot as pretty JSON:
    ///
    /// ```json
    /// {
    ///   "counters": { "lp.simplex.pivots": 42 },
    ///   "gauges": { },
    ///   "histograms": { "name": { "count": 1, "sum": …, "p50": …, … } },
    ///   "spans": { "sim.fig4": { "count": 1, "duration_ns": …, … } }
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        push_section(
            &mut out,
            "counters",
            self.counters
                .iter()
                .map(|(n, v)| (n.as_str(), v.to_string())),
            false,
        );
        push_section(
            &mut out,
            "gauges",
            self.gauges
                .iter()
                .map(|(n, v)| (n.as_str(), json::float(*v))),
            false,
        );
        push_section(
            &mut out,
            "histograms",
            self.histograms.iter().map(|(n, s)| {
                (
                    n.as_str(),
                    format!(
                        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                         \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        s.count,
                        json::float(s.sum),
                        json::float(s.min),
                        json::float(s.max),
                        json::float(s.p50),
                        json::float(s.p90),
                        json::float(s.p99),
                    ),
                )
            }),
            false,
        );
        push_section(
            &mut out,
            "spans",
            self.spans.iter().map(|(n, s)| {
                (
                    n.as_str(),
                    format!(
                        "{{\"count\": {}, \"duration_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                        s.count, s.duration_ns, s.min_ns, s.max_ns,
                    ),
                )
            }),
            true,
        );
        out.push('}');
        out
    }

    /// Writes [`Snapshot::to_json`] to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on failure.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

fn push_section<'a>(
    out: &mut String,
    title: &str,
    entries: impl Iterator<Item = (&'a str, String)>,
    last: bool,
) {
    out.push_str(&format!("  {}: {{", json::string(title)));
    let mut first = true;
    for (name, rendered) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {rendered}", json::string(name)));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push('}');
    out.push_str(if last { "\n" } else { ",\n" });
}

/// Emits a log event at an explicit level.
///
/// ```
/// tomo_obs::event!(tomo_obs::Level::Warn, "doc.target", "x = {}", 1);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $($arg:tt)+) => {
        if $crate::log_enabled($level) {
            $crate::log_record($level, $target, &format!($($arg)+));
        }
    };
}

/// Emits an [`Level::Error`] event.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Error, $target, $($arg)+) };
}

/// Emits a [`Level::Warn`] event.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Warn, $target, $($arg)+) };
}

/// Emits an [`Level::Info`] event.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Info, $target, $($arg)+) };
}

/// Emits a [`Level::Debug`] event.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Debug, $target, $($arg)+) };
}

/// Emits a [`Level::Trace`] event.
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)+) => { $crate::event!($crate::Level::Trace, $target, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_stable_handles() {
        let a = counter("lib.test.stable");
        a.inc();
        let b = counter("lib.test.stable");
        assert_eq!(b.get(), 1);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn snapshot_lookup_helpers() {
        counter("lib.test.lookup").add(3);
        gauge("lib.test.gauge").set(1.25);
        histogram("lib.test.hist").record(2.0);
        let snap = snapshot();
        assert_eq!(snap.counter("lib.test.lookup"), Some(3));
        assert_eq!(snap.gauge("lib.test.gauge"), Some(1.25));
        assert_eq!(snap.histogram("lib.test.hist").unwrap().count, 1);
        assert_eq!(snap.counter("lib.test.absent"), None);
    }

    #[test]
    fn indexed_instruments_compose_names_and_stay_stable() {
        let g0 = indexed_gauge("lib.test.shard_depth", 0);
        let g1 = indexed_gauge("lib.test.shard_depth", 1);
        g0.set(3.0);
        g1.set(7.0);
        assert!(std::ptr::eq(g0, indexed_gauge("lib.test.shard_depth", 0)));
        assert!(!std::ptr::eq(g0, g1));
        let c = indexed_counter("lib.test.shard_rejects", 2);
        c.add(5);
        assert!(std::ptr::eq(
            c,
            indexed_counter("lib.test.shard_rejects", 2)
        ));
        let snap = snapshot();
        assert_eq!(snap.gauge("lib.test.shard_depth.0"), Some(3.0));
        assert_eq!(snap.gauge("lib.test.shard_depth.1"), Some(7.0));
        assert_eq!(snap.counter("lib.test.shard_rejects.2"), Some(5));
    }

    #[test]
    fn snapshot_json_is_shapely() {
        counter("lib.test.json").add(7);
        let json = snapshot().to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"lib.test.json\": 7"));
        assert!(json.contains("\"spans\""));
    }
}
