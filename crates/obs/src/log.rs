//! Level-filtered structured event log.
//!
//! The maximum level comes from the `TOMO_LOG` environment variable
//! (`error`, `warn`, `info`, `debug`, `trace`, or `off`; default `warn`)
//! and can be overridden programmatically with [`set_max_level`]. Events
//! below the threshold cost one relaxed atomic load. Enabled events
//! render a human-readable line to stderr and, when a JSON sink is
//! configured (via [`set_log_json`] or the `TOMO_LOG_JSON` environment
//! variable), one JSON object per line to that file.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::json;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or wrong results.
    Error = 1,
    /// Suspicious but recoverable.
    Warn = 2,
    /// High-level progress.
    Info = 3,
    /// Per-operation detail.
    Debug = 4,
    /// Inner-loop detail.
    Trace = 5,
}

impl Level {
    /// Short uppercase label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses a level name (case-insensitive); `"off"` yields `None`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// Sentinel meaning "not yet initialised from the environment".
const UNSET: u8 = u8::MAX;
/// Stored max level: 0 = off, 1..=5 = `Level`, `UNSET` = lazy init pending.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn current_max() -> u8 {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return v;
    }
    let from_env = std::env::var("TOMO_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Some(Level::Warn));
    let encoded = from_env.map_or(0, |l| l as u8);
    MAX_LEVEL.store(encoded, Ordering::Relaxed);
    encoded
}

/// Overrides the maximum level (`None` disables logging entirely).
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted.
#[must_use]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= current_max()
}

static JSON_SINK: Mutex<Option<std::fs::File>> = Mutex::new(None);
static JSON_SINK_INIT: std::sync::Once = std::sync::Once::new();

/// Sends a copy of every emitted event to `path` as JSON lines
/// (appending; the file is created if missing).
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be opened.
pub fn set_log_json(path: &Path) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    *JSON_SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(file);
    Ok(())
}

/// Emits one event unconditionally — call [`log_enabled`] first (the
/// `event!`/`info!`/… macros do).
pub fn log_record(level: Level, target: &str, message: &str) {
    eprintln!("[{:5} {target}] {message}", level.as_str());
    JSON_SINK_INIT.call_once(|| {
        if let Ok(path) = std::env::var("TOMO_LOG_JSON") {
            let _ = set_log_json(Path::new(&path));
        }
    });
    let mut sink = JSON_SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(file) = sink.as_mut() {
        let line = format!(
            "{{\"level\":{},\"target\":{},\"message\":{}}}\n",
            json::string(level.as_str()),
            json::string(target),
            json::string(message),
        );
        let _ = file.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn parse_accepts_names_and_off() {
        assert_eq!(Level::parse("TRACE"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("warning"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("nonsense"), None);
    }

    #[test]
    fn filtering_follows_max_level() {
        set_max_level(Some(Level::Info));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_max_level(None);
        assert!(!log_enabled(Level::Error));
        set_max_level(Some(Level::Warn));
    }
}
