//! Cross-thread trace trees and the per-trial provenance journal.
//!
//! Aggregated span statistics (see [`crate::span`]) answer "where does
//! the time go", but cannot answer "what happened in trial 731 of the
//! fig7 sweep". This module records *individual* events — completed
//! spans with explicit parent links, and per-trial provenance records —
//! into a fixed-capacity ring-buffer **journal**:
//!
//! * **Bounded overhead.** The journal never allocates after creation;
//!   recording is a slot reservation (one relaxed `fetch_add`) plus one
//!   uncontended per-slot mutex write. When the ring wraps, the oldest
//!   events are overwritten and counted as dropped — tracing can stay on
//!   for arbitrarily long runs without unbounded memory.
//! * **Determinism.** Tracing is strictly passive: it draws no
//!   randomness, and nothing downstream reads the journal during an
//!   experiment, so artifacts remain byte-identical with tracing on or
//!   off, at any thread count. Only the journal itself (timestamps,
//!   event interleaving) is schedule-dependent.
//! * **Cross-thread trees.** A [`TraceContext`] captures the calling
//!   thread's innermost open span; installing it on a worker thread
//!   re-parents the worker's spans under that span, so a Monte-Carlo
//!   fan-out appears as one tree (`sim.fig7 → par.worker → trial → …`)
//!   rather than a forest of rootless worker spans.
//!
//! [`write_chrome_trace`] renders the journal as Chrome trace-event JSON
//! (loadable at <https://ui.perfetto.dev>); `tomo-sim run … --trace-out`
//! drives it from the CLI.
//!
//! Tracing is off by default; [`set_tracing`] enables it. Disabled, the
//! per-span cost is a single relaxed atomic load.

use std::cell::Cell;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json;
use crate::lock;

/// Default journal capacity (events) when `TOMO_TRACE_CAP` is not set.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost traced span id on this thread (0 = none).
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
    /// Small dense id for this thread in trace output (0 = unassigned).
    static THREAD_TID: Cell<u64> = const { Cell::new(0) };
}

/// Enables or disables event recording into the trace journal.
pub fn set_tracing(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether trace recording is enabled.
#[must_use]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide trace epoch: all timestamps are nanoseconds since
/// the first call to this function.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Allocates a fresh span id (process-unique, never 0).
pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The small dense id of the calling thread, assigned on first use.
#[must_use]
pub fn thread_tid() -> u64 {
    THREAD_TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Makes `id` the calling thread's current trace parent, returning the
/// previous parent (for restore on drop).
pub(crate) fn swap_current_parent(id: u64) -> u64 {
    CURRENT_PARENT.with(|p| p.replace(id))
}

/// Restores a previously swapped-out trace parent.
pub(crate) fn restore_parent(prev: u64) {
    CURRENT_PARENT.with(|p| p.set(prev));
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A completed span with explicit tree linkage.
    Span {
        /// Process-unique span id.
        id: u64,
        /// Parent span id (0 = root).
        parent: u64,
        /// Leaf name of the span.
        name: String,
        /// `/`-joined aggregation path (see [`crate::span`]).
        path: String,
        /// Dense id of the thread the span ran on.
        tid: u64,
        /// Start time, ns since the trace epoch.
        start_ns: u64,
        /// Wall-clock duration in ns.
        dur_ns: u64,
    },
    /// A per-trial provenance record (rendered as an instant event).
    Trial {
        /// The provenance payload.
        provenance: TrialProvenance,
        /// Enclosing span id (0 = root).
        parent: u64,
        /// Dense id of the emitting thread.
        tid: u64,
        /// Emission time, ns since the trace epoch.
        ts_ns: u64,
    },
}

/// Everything needed to re-derive one Monte-Carlo trial: which
/// experiment, which index, which RNG stream, and what the solver and
/// detector did with it.
///
/// Fields that do not apply to an experiment stay `None`/`false`; the
/// record is still worth emitting — the trial index and seed alone let a
/// surprising artifact point be replayed in isolation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrialProvenance {
    /// Experiment label, e.g. `fig7.wireline.s0` or `chaos.x2`.
    pub experiment: String,
    /// Trial index within the experiment.
    pub trial: u64,
    /// The derived per-trial RNG stream seed.
    pub seed: u64,
    /// Digest of the trial's fault plan (`None` when no fault layer).
    pub fault_digest: Option<u64>,
    /// Simplex warm-start outcome of the trial's last LP solve:
    /// `Some(true)` hit, `Some(false)` miss, `None` cold/no solve.
    pub warm: Option<bool>,
    /// Whether estimation fell back to the degraded (rank-deficient) path.
    pub degraded: bool,
    /// Whether the degraded path used the ridge-regularized solve.
    pub used_ridge: bool,
    /// Detector verdict, where a detector ran.
    pub verdict: Option<bool>,
    /// Consistency residual `‖R x̂ − y′‖₁`, where a detector ran.
    pub residual: Option<f64>,
    /// Attack feasibility, where an attack LP ran.
    pub success: Option<bool>,
}

/// Records a per-trial provenance event (no-op while tracing is off).
pub fn record_trial(provenance: TrialProvenance) {
    if !tracing_enabled() {
        return;
    }
    let event = TraceEvent::Trial {
        provenance,
        parent: CURRENT_PARENT.with(Cell::get),
        tid: thread_tid(),
        ts_ns: now_ns(),
    };
    journal().push(event);
}

pub(crate) fn record_span_event(
    id: u64,
    parent: u64,
    name: &str,
    path: &str,
    start_ns: u64,
    dur_ns: u64,
) {
    journal().push(TraceEvent::Span {
        id,
        parent,
        name: name.to_string(),
        path: path.to_string(),
        tid: thread_tid(),
        start_ns,
        dur_ns,
    });
}

/// A handle to the calling thread's innermost traced span, for
/// re-parenting spans opened on *other* threads.
///
/// Capture it with [`TraceContext::current`] before fanning work out,
/// hand it (it is `Copy + Send + Sync`) to each worker, and
/// [`install`](TraceContext::install) it there: spans the worker opens
/// while the guard lives become children of the captured span. This is
/// the same hand-off discipline as `derive_seed` for RNG streams — the
/// context travels with the closure, not with the thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceContext {
    parent: u64,
}

impl TraceContext {
    /// Captures the calling thread's innermost traced span (root context
    /// when no span is open or tracing is disabled).
    #[must_use]
    pub fn current() -> TraceContext {
        TraceContext {
            parent: CURRENT_PARENT.with(Cell::get),
        }
    }

    /// Installs this context on the calling thread until the guard
    /// drops; spans opened meanwhile parent under the captured span.
    #[must_use = "the context is only installed while the guard lives"]
    pub fn install(self) -> ContextGuard {
        ContextGuard {
            prev: swap_current_parent(self.parent),
        }
    }
}

/// RAII guard from [`TraceContext::install`]; restores the thread's
/// previous trace parent on drop.
pub struct ContextGuard {
    prev: u64,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        restore_parent(self.prev);
    }
}

/// Fixed-capacity ring-buffer journal.
///
/// Writers reserve a slot with one atomic `fetch_add` (lock-free — no
/// writer ever waits for another writer's *reservation*) and then take
/// that slot's own mutex, which is contended only when two writers are a
/// full ring apart. Sequence numbers disambiguate wrap races: a slot
/// only accepts an event newer than the one it holds.
struct Journal {
    slots: Vec<Mutex<Option<(u64, TraceEvent)>>>,
    cursor: AtomicU64,
}

static CAPACITY_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// Overrides the journal capacity. Returns `false` (and changes
/// nothing) once the journal has been created — call it before the
/// first traced event. Intended for tests and for the `TOMO_TRACE_CAP`
/// environment override.
pub fn set_journal_capacity(capacity: usize) -> bool {
    if JOURNAL.get().is_some() {
        return false;
    }
    CAPACITY_OVERRIDE.store(capacity.max(16) as u64, Ordering::Relaxed);
    true
}

static JOURNAL: OnceLock<Journal> = OnceLock::new();

fn journal() -> &'static Journal {
    JOURNAL.get_or_init(|| {
        let capacity = match CAPACITY_OVERRIDE.load(Ordering::Relaxed) {
            0 => std::env::var("TOMO_TRACE_CAP")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 16)
                .unwrap_or(DEFAULT_JOURNAL_CAPACITY),
            n => n as usize,
        };
        Journal {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    })
}

impl Journal {
    fn push(&self, event: TraceEvent) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = lock(slot);
        // A racing writer one full ring ahead may already own this slot;
        // newest sequence wins so drop accounting stays exact.
        if guard.as_ref().is_none_or(|&(held, _)| held < seq) {
            *guard = Some((seq, event));
        }
    }
}

/// A point-in-time copy of the journal's contents.
#[derive(Debug, Clone)]
pub struct JournalSnapshot {
    /// Surviving events in emission (sequence) order.
    pub events: Vec<TraceEvent>,
    /// Total events emitted since the journal was created or reset.
    pub emitted: u64,
    /// Events overwritten by ring wrap-around (`emitted − retained`).
    pub dropped: u64,
}

/// Copies the journal's surviving events out, oldest first.
#[must_use]
pub fn journal_snapshot() -> JournalSnapshot {
    let j = journal();
    let emitted = j.cursor.load(Ordering::Relaxed);
    let mut tagged: Vec<(u64, TraceEvent)> = j
        .slots
        .iter()
        .filter_map(|slot| lock(slot).clone())
        .collect();
    tagged.sort_unstable_by_key(|&(seq, _)| seq);
    let dropped = emitted - tagged.len() as u64;
    JournalSnapshot {
        events: tagged.into_iter().map(|(_, e)| e).collect(),
        emitted,
        dropped,
    }
}

/// Clears the journal (events and the emitted/dropped tallies).
///
/// Callers must ensure no concurrent writers, or wrap-race bookkeeping
/// may briefly under-count drops; experiment drivers reset between runs,
/// never during one.
pub fn reset_journal() {
    let j = journal();
    for slot in &j.slots {
        *lock(slot) = None;
    }
    j.cursor.store(0, Ordering::Relaxed);
}

/// Capacity of the journal ring (events).
#[must_use]
pub fn journal_capacity() -> usize {
    journal().slots.len()
}

/// Summary statistics returned by [`write_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Events written to the file (excluding metadata events).
    pub events: usize,
    /// Events lost to ring wrap-around before export.
    pub dropped: u64,
}

fn push_arg(args: &mut String, key: &str, rendered: String) {
    if !args.is_empty() {
        args.push_str(", ");
    }
    args.push_str(&json::string(key));
    args.push_str(": ");
    args.push_str(&rendered);
}

fn chrome_event(out: &mut String, event: &TraceEvent) {
    const US: f64 = 1e-3; // ns → Chrome's microsecond timestamps
    match event {
        TraceEvent::Span {
            id,
            parent,
            name,
            path,
            tid,
            start_ns,
            dur_ns,
        } => {
            let mut args = String::new();
            push_arg(&mut args, "span_id", id.to_string());
            push_arg(&mut args, "parent_id", parent.to_string());
            push_arg(&mut args, "path", json::string(path));
            out.push_str(&format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \"name\": {}, \
                 \"cat\": \"span\", \"ts\": {}, \"dur\": {}, \"args\": {{{args}}}}}",
                json::string(name),
                json::float(*start_ns as f64 * US),
                json::float(*dur_ns as f64 * US),
            ));
        }
        TraceEvent::Trial {
            provenance: p,
            parent,
            tid,
            ts_ns,
        } => {
            let mut args = String::new();
            push_arg(&mut args, "parent_id", parent.to_string());
            push_arg(&mut args, "trial", p.trial.to_string());
            push_arg(&mut args, "seed", p.seed.to_string());
            if let Some(d) = p.fault_digest {
                push_arg(&mut args, "fault_digest", format!("\"{d:#018x}\""));
            }
            let warm = match p.warm {
                Some(true) => "hit",
                Some(false) => "miss",
                None => "cold",
            };
            push_arg(&mut args, "warm", json::string(warm));
            push_arg(&mut args, "degraded", p.degraded.to_string());
            push_arg(&mut args, "used_ridge", p.used_ridge.to_string());
            if let Some(v) = p.verdict {
                push_arg(&mut args, "verdict", v.to_string());
            }
            if let Some(r) = p.residual {
                push_arg(&mut args, "residual", json::float(r));
            }
            if let Some(s) = p.success {
                push_arg(&mut args, "success", s.to_string());
            }
            out.push_str(&format!(
                "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {tid}, \"name\": {}, \
                 \"cat\": \"provenance\", \"ts\": {}, \"s\": \"t\", \"args\": {{{args}}}}}",
                json::string(&format!("{} trial {}", p.experiment, p.trial)),
                json::float(*ts_ns as f64 * US),
            ));
        }
    }
}

/// Renders the journal as Chrome trace-event JSON (the object form, with
/// a `traceEvents` array), loadable in Perfetto or `chrome://tracing`.
#[must_use]
pub fn chrome_trace_json() -> (String, ChromeTraceStats) {
    let snap = journal_snapshot();
    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(
        "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
         \"args\": {\"name\": \"tomo-sim\"}}",
    );
    for event in &snap.events {
        out.push_str(",\n  ");
        chrome_event(&mut out, event);
    }
    out.push_str("\n]}\n");
    (
        out,
        ChromeTraceStats {
            events: snap.events.len(),
            dropped: snap.dropped,
        },
    )
}

/// Writes [`chrome_trace_json`] to `path`, creating parent directories
/// as needed.
///
/// # Errors
///
/// Returns the underlying I/O error on failure.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<ChromeTraceStats> {
    let (rendered, stats) = chrome_trace_json();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(rendered.as_bytes())?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The journal and the enabled flag are process-global; tests that
    // record serialize on this lock and reset state around themselves.
    fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset_journal();
        set_tracing(true);
        let out = f();
        set_tracing(false);
        reset_journal();
        out
    }

    fn span_events(snap: &JournalSnapshot) -> Vec<(u64, u64, String)> {
        snap.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span {
                    id, parent, name, ..
                } => Some((*id, *parent, name.clone())),
                TraceEvent::Trial { .. } => None,
            })
            .collect()
    }

    #[test]
    fn nested_spans_link_parents() {
        let snap = with_tracing(|| {
            let outer = crate::span("trace.test.outer");
            {
                let _inner = crate::span("trace.test.inner");
            }
            drop(outer);
            journal_snapshot()
        });
        let spans = span_events(&snap);
        // Inner closes first.
        assert_eq!(spans.len(), 2, "{spans:?}");
        let (inner_id, inner_parent, ref inner_name) = spans[0];
        let (outer_id, outer_parent, ref outer_name) = spans[1];
        assert_eq!(inner_name, "trace.test.inner");
        assert_eq!(outer_name, "trace.test.outer");
        assert_eq!(inner_parent, outer_id);
        assert_eq!(outer_parent, 0);
        assert_ne!(inner_id, outer_id);
    }

    #[test]
    fn context_reparents_across_threads() {
        let snap = with_tracing(|| {
            let outer = crate::span("trace.test.root");
            let ctx = TraceContext::current();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _g = ctx.install();
                    let _w = crate::span("trace.test.worker");
                });
            });
            drop(outer);
            journal_snapshot()
        });
        let spans = span_events(&snap);
        assert_eq!(spans.len(), 2);
        let worker = spans.iter().find(|(_, _, n)| n == "trace.test.worker");
        let root = spans.iter().find(|(_, _, n)| n == "trace.test.root");
        let &(root_id, _, _) = root.expect("root span recorded");
        let &(_, worker_parent, _) = worker.expect("worker span recorded");
        assert_eq!(worker_parent, root_id, "worker must parent under root");
    }

    #[test]
    fn provenance_records_carry_parent() {
        let snap = with_tracing(|| {
            let _s = crate::span("trace.test.trial");
            record_trial(TrialProvenance {
                experiment: "unit".into(),
                trial: 7,
                seed: 99,
                success: Some(true),
                ..TrialProvenance::default()
            });
            drop(_s);
            journal_snapshot()
        });
        let trial = snap
            .events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Trial {
                    provenance, parent, ..
                } => Some((provenance.clone(), *parent)),
                TraceEvent::Span { .. } => None,
            })
            .expect("trial event recorded");
        assert_eq!(trial.0.trial, 7);
        assert_eq!(trial.0.seed, 99);
        assert_ne!(trial.1, 0, "provenance must nest under the open span");
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let snap = with_tracing(|| {
            set_tracing(false);
            let _s = crate::span("trace.test.dark");
            record_trial(TrialProvenance::default());
            drop(_s);
            journal_snapshot()
        });
        assert_eq!(snap.events.len(), 0);
        assert_eq!(snap.emitted, 0);
    }

    #[test]
    fn chrome_export_renders_all_event_kinds() {
        let (rendered, stats) = with_tracing(|| {
            {
                let _s = crate::span("trace.test.\"quoted\\name\"");
                record_trial(TrialProvenance {
                    experiment: "fig7.wireline".into(),
                    trial: 3,
                    seed: 42,
                    fault_digest: Some(0xdead_beef),
                    warm: Some(true),
                    verdict: Some(false),
                    residual: Some(0.25),
                    success: Some(true),
                    ..TrialProvenance::default()
                });
            }
            chrome_trace_json()
        });
        assert_eq!(stats.events, 2);
        assert_eq!(stats.dropped, 0);
        assert!(rendered.contains("\"traceEvents\""));
        assert!(rendered.contains("\"ph\": \"X\""));
        assert!(rendered.contains("\"ph\": \"i\""));
        // The quoted/backslashed span name survives escaping.
        assert!(rendered.contains("trace.test.\\\"quoted\\\\name\\\""));
        assert!(rendered.contains("\"warm\": \"hit\""));
        assert!(rendered.contains("\"fault_digest\""));
        assert!(rendered.contains("\"residual\": 0.25"));
    }

    #[test]
    fn trace_context_is_root_when_no_span_open() {
        assert_eq!(TraceContext::current(), TraceContext::default());
    }

    #[test]
    fn thread_tids_are_stable_and_distinct() {
        let a = thread_tid();
        assert_eq!(a, thread_tid(), "tid stable within a thread");
        let b = std::thread::spawn(thread_tid).join().unwrap();
        assert_ne!(a, b, "distinct threads get distinct tids");
    }
}
