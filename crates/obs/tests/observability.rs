//! Integration tests for the observability layer: histogram buckets and
//! percentiles (including a property-based ordering check), span nesting
//! and timing, and counter increments under thread contention.

use proptest::prelude::*;

use tomo_obs::{Histogram, HISTOGRAM_BUCKETS};

#[test]
fn bucket_index_and_bounds_are_inverse() {
    for b in 1..HISTOGRAM_BUCKETS - 1 {
        let (lo, hi) = Histogram::bucket_bounds(b);
        assert!(lo < hi);
        assert_eq!(Histogram::bucket_index(lo), b);
        // Just below the upper edge stays inside the bucket.
        assert_eq!(Histogram::bucket_index(hi * (1.0 - 1e-12)), b);
        assert_eq!(Histogram::bucket_index(hi), b + 1);
    }
}

#[test]
fn exact_percentiles_on_known_distributions() {
    let h = tomo_obs::histogram("test.exact.percentiles");
    // 99 values of 4.0 and a single outlier at 4096.0.
    for _ in 0..99 {
        h.record(4.0);
    }
    h.record(4096.0);
    // p50/p90/p99 land in the [4, 8) bucket of the bulk values; the
    // estimate is bucket-accurate (within a factor of 2), and p100 is
    // pinned exactly to the observed maximum by the range clamp.
    for q in [0.50, 0.90, 0.99] {
        let p = h.percentile(q).unwrap();
        assert!((4.0..8.0).contains(&p), "q {q}: {p}");
    }
    assert_eq!(h.percentile(1.0), Some(4096.0));
    let s = h.summary();
    assert_eq!(s.count, 100);
    assert_eq!(s.min, 4.0);
    assert_eq!(s.max, 4096.0);
}

proptest! {
    #[test]
    fn percentiles_are_ordered(values in proptest::collection::vec(1e-6f64..1e6, 1..60)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.summary();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.min <= s.p50 + 1e-12, "min {} p50 {}", s.min, s.p50);
        prop_assert!(s.p50 <= s.p90 + 1e-12, "p50 {} p90 {}", s.p50, s.p90);
        prop_assert!(s.p90 <= s.p99 + 1e-12, "p90 {} p99 {}", s.p90, s.p99);
        prop_assert!(s.p99 <= s.max + 1e-12, "p99 {} max {}", s.p99, s.max);
        prop_assert!((s.min - lo).abs() < 1e-12);
        prop_assert!((s.max - hi).abs() < 1e-12);
    }
}

#[test]
fn spans_nest_into_slash_paths() {
    {
        let _outer = tomo_obs::span("test.outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _inner = tomo_obs::span("test.inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let snap = tomo_obs::snapshot();
    let outer = snap.span("test.outer").expect("outer recorded");
    let inner = snap.span("test.outer/test.inner").expect("inner nested");
    assert!(
        snap.span("test.inner").is_none(),
        "inner must not be a root"
    );
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    // Timing is monotone: the enclosing span covers the inner one.
    assert!(outer.duration_ns >= inner.duration_ns);
    assert!(inner.duration_ns > 0);
    assert!(outer.min_ns <= outer.max_ns);
}

#[test]
fn sibling_spans_after_close_rejoin_the_parent() {
    {
        let _a = tomo_obs::span("test.parent");
        {
            let _b = tomo_obs::span("test.first");
        }
        {
            let _c = tomo_obs::span("test.second");
        }
    }
    let snap = tomo_obs::snapshot();
    assert!(snap.span("test.parent/test.first").is_some());
    assert!(snap.span("test.parent/test.second").is_some());
    assert!(snap.span("test.parent/test.first/test.second").is_none());
}

#[test]
fn repeated_spans_aggregate() {
    for _ in 0..5 {
        let _s = tomo_obs::span("test.repeated");
    }
    let snap = tomo_obs::snapshot();
    let s = snap.span("test.repeated").unwrap();
    assert_eq!(s.count, 5);
    assert!(s.min_ns <= s.max_ns);
    assert!(s.duration_ns >= s.max_ns);
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                static C: tomo_obs::LazyCounter = tomo_obs::LazyCounter::new("test.concurrent");
                for _ in 0..PER_THREAD {
                    C.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        tomo_obs::counter("test.concurrent").get(),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn concurrent_histogram_records_are_lossless() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 5_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let h = tomo_obs::histogram("test.concurrent.hist");
                for i in 0..PER_THREAD {
                    h.record((t * PER_THREAD + i) as f64 + 1.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = tomo_obs::histogram("test.concurrent.hist").summary();
    assert_eq!(s.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(s.min, 1.0);
    assert_eq!(s.max, (THREADS * PER_THREAD) as f64);
}
