//! `reset()` lives in its own test binary: it clears the process-global
//! registry, which would race the other integration tests.

#[test]
fn reset_zeroes_values_but_keeps_handles_valid() {
    static C: tomo_obs::LazyCounter = tomo_obs::LazyCounter::new("reset.counter");
    static H: tomo_obs::LazyHistogram = tomo_obs::LazyHistogram::new("reset.hist");
    C.add(10);
    H.record(2.0);
    tomo_obs::gauge("reset.gauge").set(3.0);
    {
        let _s = tomo_obs::span("reset.span");
    }

    tomo_obs::reset();

    let snap = tomo_obs::snapshot();
    // Counter/gauge/histogram names survive with zeroed values…
    assert_eq!(snap.counter("reset.counter"), Some(0));
    assert_eq!(snap.gauge("reset.gauge"), Some(0.0));
    assert_eq!(snap.histogram("reset.hist").unwrap().count, 0);
    // …while span paths are dropped entirely.
    assert!(snap.span("reset.span").is_none());

    // The static handles still point at live instruments.
    C.inc();
    H.record(4.0);
    let snap = tomo_obs::snapshot();
    assert_eq!(snap.counter("reset.counter"), Some(1));
    let h = snap.histogram("reset.hist").unwrap();
    assert_eq!(h.count, 1);
    assert_eq!(h.p50, 4.0);
}
