//! `tomo-par` — deterministic scoped-thread fan-out for Monte-Carlo trials.
//!
//! Every quantitative result in the paper (Figs. 7–9) is a Monte-Carlo
//! probability estimated from independent trials. This crate runs those
//! trials across threads while keeping the outputs **bit-identical
//! regardless of thread count**:
//!
//! 1. Each trial gets its own RNG stream, derived from
//!    `(experiment_seed, trial_index)` by [`derive_seed`] (a SplitMix64
//!    mixer). No trial ever observes another trial's draws, so the
//!    schedule cannot influence the results.
//! 2. [`Executor::map`]/[`Executor::try_map`] hand out trial indices
//!    dynamically (an atomic cursor — cheap work stealing) but return
//!    results **in index order**, so downstream aggregation is
//!    schedule-independent too.
//!
//! Thread count resolution: explicit [`Executor::new`] >
//! `TOMO_THREADS` env var > [`std::thread::available_parallelism`]
//! (see [`Executor::from_env`]).
//!
//! Observability: `par.tasks`/`par.batches` counters, a `par.workers`
//! gauge, and a `par.worker.tasks` histogram (tasks completed per
//! worker — a utilization/steal balance signal) are recorded through
//! `tomo-obs`; each worker thread opens a `par.worker` span, so nested
//! spans from trial code get per-worker paths for free.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use tomo_obs::{LazyCounter, LazyGauge, LazyHistogram};

static TASKS: LazyCounter = LazyCounter::new("par.tasks");
static BATCHES: LazyCounter = LazyCounter::new("par.batches");
static WORKERS: LazyGauge = LazyGauge::new("par.workers");
static WORKER_TASKS: LazyHistogram = LazyHistogram::new("par.worker.tasks");

/// One worker's index-tagged results, or the first `(index, error)` it hit.
type WorkerOutcome<T, E> = Result<Vec<(usize, T)>, (usize, E)>;

/// Mixes an experiment seed and a trial index into one well-separated
/// 64-bit seed (two rounds of the SplitMix64 finalizer).
///
/// The map is injective in `index` for a fixed `seed` before mixing
/// (`seed + golden_gamma * (index + 1)` never collides for indices below
/// 2⁶⁴), and the finalizer is bijective, so distinct trials of one
/// experiment always get distinct streams.
#[must_use]
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// A fixed-width scoped-thread executor for embarrassingly parallel
/// trial loops.
///
/// `Executor` owns no threads: every [`map`](Executor::map) call spawns
/// scoped workers and joins them before returning, so borrowed trial
/// state (`&TomographySystem`, `&AttackScenario`, …) flows into the
/// closure without `Arc` or cloning.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// An executor sized from the environment: `TOMO_THREADS` when set
    /// to a positive integer, otherwise available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var("TOMO_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Executor::new(n);
                }
            }
            tomo_obs::warn!("par", "ignoring invalid TOMO_THREADS={v:?}");
        }
        Executor::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// A sequential executor (one worker, no thread spawns).
    #[must_use]
    pub fn single_threaded() -> Self {
        Executor::new(1)
    }

    /// Configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every index in `0..n` and returns the results in
    /// index order. The trial closure must derive any randomness from
    /// its index (see [`derive_seed`]) for thread-count-independent
    /// output.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let out: Result<Vec<T>, NoError> = self.try_map(n, |i| Ok(f(i)));
        match out {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    /// Fallible [`map`](Executor::map): stops handing out new work after
    /// the first error and returns the error with the **lowest trial
    /// index** among those observed, so the reported error does not
    /// depend on the schedule in the common case of an early
    /// deterministic failure.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index error produced by `f`.
    ///
    /// # Panics
    ///
    /// Propagates panics from worker threads.
    pub fn try_map<T, E, F>(&self, n: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        BATCHES.inc();
        TASKS.add(n as u64);
        let workers = self.threads.min(n.max(1));
        WORKERS.set(workers as f64);
        if workers == 1 {
            WORKER_TASKS.record(n as f64);
            return (0..n).map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let run_worker = || -> WorkerOutcome<T, E> {
            let _span = tomo_obs::span("par.worker");
            let mut done: Vec<(usize, T)> = Vec::new();
            loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match f(i) {
                    Ok(v) => done.push((i, v)),
                    Err(e) => {
                        failed.store(true, Ordering::Relaxed);
                        return Err((i, e));
                    }
                }
            }
            WORKER_TASKS.record(done.len() as f64);
            Ok(done)
        };

        let per_worker: Vec<WorkerOutcome<T, E>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(run_worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tomo-par worker panicked"))
                .collect()
        });

        let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
        let mut first_err: Option<(usize, E)> = None;
        for outcome in per_worker {
            match outcome {
                Ok(pairs) => indexed.extend(pairs),
                Err((i, e)) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        debug_assert_eq!(indexed.len(), n, "every trial index must be covered once");
        indexed.sort_unstable_by_key(|&(i, _)| i);
        Ok(indexed.into_iter().map(|(_, v)| v).collect())
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

/// Uninhabited error type backing the infallible [`Executor::map`].
#[derive(Debug)]
enum NoError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn derive_seed_separates_streams() {
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 42, u64::MAX] {
            for index in 0..1000 {
                assert!(seen.insert(derive_seed(seed, index)), "collision");
            }
        }
        // Not the identity on (seed, 0).
        assert_ne!(derive_seed(5, 0), 5);
    }

    #[test]
    fn map_preserves_index_order() {
        let exec = Executor::new(4);
        let out = exec.map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let exec = Executor::new(8);
        assert_eq!(exec.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let per_trial = |i: usize| {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(42, i as u64));
            rng.gen_range(0.0..1.0_f64).to_bits()
        };
        let seq = Executor::new(1).map(257, per_trial);
        for threads in [2, 3, 8] {
            assert_eq!(Executor::new(threads).map(257, per_trial), seq);
        }
    }

    #[test]
    fn try_map_reports_lowest_index_error_sequentially() {
        let exec = Executor::new(1);
        let r: Result<Vec<usize>, usize> =
            exec.try_map(10, |i| if i >= 3 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(3));
    }

    #[test]
    fn try_map_stops_early_in_parallel() {
        let exec = Executor::new(4);
        let r: Result<Vec<usize>, usize> =
            exec.try_map(1000, |i| if i == 0 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(0), "index-0 error must win");
    }

    #[test]
    fn executor_clamps_zero_threads() {
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn from_env_defaults_to_parallelism() {
        // TOMO_THREADS is not set under `cargo test`; just assert sanity.
        assert!(Executor::from_env().threads() >= 1);
    }
}
