//! `tomo-par` — deterministic scoped-thread fan-out for Monte-Carlo trials.
//!
//! Every quantitative result in the paper (Figs. 7–9) is a Monte-Carlo
//! probability estimated from independent trials. This crate runs those
//! trials across threads while keeping the outputs **bit-identical
//! regardless of thread count**:
//!
//! 1. Each trial gets its own RNG stream, derived from
//!    `(experiment_seed, trial_index)` by [`derive_seed`] (a SplitMix64
//!    mixer). No trial ever observes another trial's draws, so the
//!    schedule cannot influence the results.
//! 2. [`Executor::map`]/[`Executor::try_map`] hand out trial indices
//!    dynamically (an atomic cursor — cheap work stealing) but return
//!    results **in index order**, so downstream aggregation is
//!    schedule-independent too.
//!
//! Thread count resolution: explicit [`Executor::new`] >
//! `TOMO_THREADS` env var > [`std::thread::available_parallelism`]
//! (see [`Executor::from_env`]).
//!
//! Observability: `par.tasks`/`par.batches` counters, a `par.workers`
//! gauge, and a `par.worker.tasks` histogram (tasks completed per
//! worker — a utilization/steal balance signal) are recorded through
//! `tomo-obs`; each worker thread opens a `par.worker` span, so nested
//! spans from trial code get per-worker paths for free. When tracing is
//! enabled ([`tomo_obs::set_tracing`]), the caller's
//! [`tomo_obs::TraceContext`] is captured before the fan-out and
//! installed in every worker, and each task runs inside a `trial` span —
//! so the trace journal sees one connected tree
//! (`sim.fig7 → par.worker → trial → …`) regardless of thread count.

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use tomo_obs::{LazyCounter, LazyGauge, LazyHistogram};

static TASKS: LazyCounter = LazyCounter::new("par.tasks");
static BATCHES: LazyCounter = LazyCounter::new("par.batches");
static WORKERS: LazyGauge = LazyGauge::new("par.workers");
static WORKER_TASKS: LazyHistogram = LazyHistogram::new("par.worker.tasks");
static TRIAL_PANICS: LazyCounter = LazyCounter::new("par.trial_panics");
static QUARANTINED: LazyCounter = LazyCounter::new("par.quarantined");
static RETRIES: LazyCounter = LazyCounter::new("par.retries");

/// Why a task failed: its own typed error, or a captured panic.
enum TaskFailure<E> {
    Err(E),
    Panic(String),
}

/// One worker's index-tagged results, or the first `(index, failure)` it hit.
type WorkerOutcome<T, E> = Result<Vec<(usize, T)>, (usize, TaskFailure<E>)>;

/// Best-effort rendering of a panic payload (`&str` and `String` cover
/// every `panic!` in this workspace).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Mixes an experiment seed and a trial index into one well-separated
/// 64-bit seed (two rounds of the SplitMix64 finalizer).
///
/// The map is injective in `index` for a fixed `seed` before mixing
/// (`seed + golden_gamma * (index + 1)` never collides for indices below
/// 2⁶⁴), and the finalizer is bijective, so distinct trials of one
/// experiment always get distinct streams.
#[must_use]
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// A fixed-width scoped-thread executor for embarrassingly parallel
/// trial loops.
///
/// `Executor` owns no threads: every [`map`](Executor::map) call spawns
/// scoped workers and joins them before returning, so borrowed trial
/// state (`&TomographySystem`, `&AttackScenario`, …) flows into the
/// closure without `Arc` or cloning.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// An executor sized from the environment: `TOMO_THREADS` when set
    /// to a positive integer, otherwise available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var("TOMO_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Executor::new(n);
                }
            }
            tomo_obs::warn!("par", "ignoring invalid TOMO_THREADS={v:?}");
        }
        Executor::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// A sequential executor (one worker, no thread spawns).
    #[must_use]
    pub fn single_threaded() -> Self {
        Executor::new(1)
    }

    /// Configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every index in `0..n` and returns the results in
    /// index order. The trial closure must derive any randomness from
    /// its index (see [`derive_seed`]) for thread-count-independent
    /// output.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let out: Result<Vec<T>, NoError> = self.try_map(n, |i| Ok(f(i)));
        match out {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    /// Fallible [`map`](Executor::map): stops handing out new work after
    /// the first error and returns the error with the **lowest trial
    /// index** among those observed, so the reported error does not
    /// depend on the schedule in the common case of an early
    /// deterministic failure.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index error produced by `f`.
    ///
    /// # Panics
    ///
    /// A panicking task no longer kills the worker pool silently: the
    /// panic is captured per task, every worker drains, and the panic is
    /// re-raised on the caller's thread with the failing **trial index**
    /// and the original message attached (the lowest-index failure wins,
    /// like errors, so the report is schedule-independent).
    pub fn try_map<T, E, F>(&self, n: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        BATCHES.inc();
        TASKS.add(n as u64);
        let workers = self.threads.min(n.max(1));
        WORKERS.set(workers as f64);
        // Capture the caller's innermost traced span *before* fanning
        // out: worker threads start with an empty span stack, and
        // installing this context re-parents their spans under the
        // caller's (same hand-off discipline as derive_seed for RNG).
        let ctx = tomo_obs::TraceContext::current();
        let run_task = |i: usize| {
            let _trial = tomo_obs::tracing_enabled().then(|| tomo_obs::span("trial"));
            f(i)
        };
        if workers == 1 {
            WORKER_TASKS.record(n as f64);
            return (0..n).map(run_task).collect();
        }

        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let run_worker = || -> WorkerOutcome<T, E> {
            let _ctx = ctx.install();
            let _span = tomo_obs::span("par.worker");
            let mut done: Vec<(usize, T)> = Vec::new();
            loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| run_task(i))) {
                    Ok(Ok(v)) => done.push((i, v)),
                    Ok(Err(e)) => {
                        failed.store(true, Ordering::Relaxed);
                        return Err((i, TaskFailure::Err(e)));
                    }
                    Err(payload) => {
                        TRIAL_PANICS.inc();
                        failed.store(true, Ordering::Relaxed);
                        return Err((i, TaskFailure::Panic(panic_message(payload.as_ref()))));
                    }
                }
            }
            WORKER_TASKS.record(done.len() as f64);
            Ok(done)
        };

        let per_worker: Vec<WorkerOutcome<T, E>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(run_worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tomo-par worker bookkeeping panicked"))
                .collect()
        });

        let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
        let mut first_err: Option<(usize, TaskFailure<E>)> = None;
        for outcome in per_worker {
            match outcome {
                Ok(pairs) => indexed.extend(pairs),
                Err((i, e)) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        match first_err {
            Some((_, TaskFailure::Err(e))) => return Err(e),
            Some((i, TaskFailure::Panic(msg))) => {
                panic!("tomo-par: trial {i} panicked: {msg}")
            }
            None => {}
        }
        debug_assert_eq!(indexed.len(), n, "every trial index must be covered once");
        indexed.sort_unstable_by_key(|&(i, _)| i);
        Ok(indexed.into_iter().map(|(_, v)| v).collect())
    }

    /// [`map`](Executor::map) with panic quarantine: a panicking task is
    /// retried up to `max_retries` times and, if it never completes,
    /// yields `None` in its slot instead of aborting the batch. The
    /// returned [`QuarantineReport`] lists every quarantined index with
    /// its captured panic message, in ascending index order.
    ///
    /// The retry policy is deterministic per index (each attempt calls
    /// `f(i)` again — trial closures derive all randomness from `i`, so a
    /// deterministic panic quarantines and a flaky one may recover), and
    /// quarantine decisions are schedule-independent for deterministic
    /// closures.
    pub fn map_quarantined<T, F>(
        &self,
        n: usize,
        max_retries: u32,
        f: F,
    ) -> (Vec<Option<T>>, QuarantineReport)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let outcomes = self.map(n, |i| {
            let mut attempts = 0u32;
            loop {
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(v) => return (Some(v), attempts, None),
                    Err(payload) => {
                        TRIAL_PANICS.inc();
                        let msg = panic_message(payload.as_ref());
                        tomo_obs::warn!("par", "trial {i} panicked (attempt {attempts}): {msg}");
                        if attempts >= max_retries {
                            QUARANTINED.inc();
                            return (None, attempts, Some(msg));
                        }
                        attempts += 1;
                        RETRIES.inc();
                    }
                }
            }
        });

        let mut results = Vec::with_capacity(n);
        let mut report = QuarantineReport::default();
        for (i, (value, retries, panic)) in outcomes.into_iter().enumerate() {
            if retries > 0 {
                report.retried_tasks += 1;
                report.retries += u64::from(retries);
            }
            if let Some(message) = panic {
                report.quarantined.push(Quarantined {
                    index: i,
                    retries,
                    message,
                });
            }
            results.push(value);
        }
        (results, report)
    }
}

/// One task abandoned by [`Executor::map_quarantined`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// The trial index that never completed.
    pub index: usize,
    /// Retries spent before giving up.
    pub retries: u32,
    /// The captured panic message of the final attempt.
    pub message: String,
}

/// Outcome summary of a [`Executor::map_quarantined`] batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Tasks that needed at least one retry (including those eventually
    /// quarantined).
    pub retried_tasks: u64,
    /// Total retry attempts across the batch.
    pub retries: u64,
    /// Abandoned tasks, ascending by index.
    pub quarantined: Vec<Quarantined>,
}

impl QuarantineReport {
    /// `true` when every task completed without retries.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.retried_tasks == 0 && self.quarantined.is_empty()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

/// Uninhabited error type backing the infallible [`Executor::map`].
#[derive(Debug)]
enum NoError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn derive_seed_separates_streams() {
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 42, u64::MAX] {
            for index in 0..1000 {
                assert!(seen.insert(derive_seed(seed, index)), "collision");
            }
        }
        // Not the identity on (seed, 0).
        assert_ne!(derive_seed(5, 0), 5);
    }

    #[test]
    fn map_preserves_index_order() {
        let exec = Executor::new(4);
        let out = exec.map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let exec = Executor::new(8);
        assert_eq!(exec.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let per_trial = |i: usize| {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(42, i as u64));
            rng.gen_range(0.0..1.0_f64).to_bits()
        };
        let seq = Executor::new(1).map(257, per_trial);
        for threads in [2, 3, 8] {
            assert_eq!(Executor::new(threads).map(257, per_trial), seq);
        }
    }

    #[test]
    fn try_map_reports_lowest_index_error_sequentially() {
        let exec = Executor::new(1);
        let r: Result<Vec<usize>, usize> =
            exec.try_map(10, |i| if i >= 3 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(3));
    }

    #[test]
    fn try_map_stops_early_in_parallel() {
        let exec = Executor::new(4);
        let r: Result<Vec<usize>, usize> =
            exec.try_map(1000, |i| if i == 0 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(0), "index-0 error must win");
    }

    #[test]
    fn executor_clamps_zero_threads() {
        assert_eq!(Executor::new(0).threads(), 1);
    }

    /// Silences the default panic hook for the duration of a closure so
    /// intentional test panics don't spam stderr. Global, so the tests
    /// using it serialize on a lock.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        use std::sync::Mutex;
        static HOOK_LOCK: Mutex<()> = Mutex::new(());
        let _guard = HOOK_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = catch_unwind(AssertUnwindSafe(f));
        std::panic::set_hook(prev);
        match out {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    #[test]
    fn panicking_trial_no_longer_kills_the_run() {
        // Regression: the old join().expect aborted the whole process'
        // batch with "tomo-par worker panicked" and no trial context.
        // Now the panic is captured, drained workers still return their
        // results, and the re-raised panic names the failing trial.
        let exec = Executor::new(4);
        let payload = with_quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                exec.map(64, |i| {
                    if i == 23 {
                        panic!("injected fault in trial 23");
                    }
                    i
                })
            }))
            .expect_err("panic must propagate")
        });
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("trial 23"), "missing trial index: {msg}");
        assert!(
            msg.contains("injected fault"),
            "missing original message: {msg}"
        );
    }

    #[test]
    fn lowest_index_panic_wins_deterministically() {
        let exec = Executor::new(4);
        for _ in 0..5 {
            let payload = with_quiet_panics(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    exec.map(100, |i| {
                        if i % 7 == 3 {
                            panic!("boom {i}");
                        }
                        i
                    })
                }))
                .expect_err("panic must propagate")
            });
            let msg = panic_message(payload.as_ref());
            assert!(msg.contains("trial 3"), "expected lowest index 3: {msg}");
        }
    }

    #[test]
    fn map_quarantined_isolates_deterministic_panics() {
        let exec = Executor::new(4);
        let (results, report) = with_quiet_panics(|| {
            exec.map_quarantined(50, 1, |i| {
                if i == 7 || i == 31 {
                    panic!("trial {i} always fails");
                }
                i * 2
            })
        });
        assert_eq!(results.len(), 50);
        for (i, r) in results.iter().enumerate() {
            if i == 7 || i == 31 {
                assert_eq!(*r, None);
            } else {
                assert_eq!(*r, Some(i * 2));
            }
        }
        assert_eq!(report.quarantined.len(), 2);
        assert_eq!(report.quarantined[0].index, 7);
        assert_eq!(report.quarantined[1].index, 31);
        assert_eq!(report.quarantined[0].retries, 1, "retry budget spent");
        assert!(report.quarantined[0].message.contains("trial 7"));
        assert_eq!(report.retried_tasks, 2);
        assert_eq!(report.retries, 2);
        assert!(!report.is_clean());
    }

    #[test]
    fn map_quarantined_report_is_thread_count_independent() {
        let run = |threads: usize| {
            with_quiet_panics(|| {
                Executor::new(threads).map_quarantined(40, 2, |i| {
                    if i % 11 == 5 {
                        panic!("deterministic failure at {i}");
                    }
                    derive_seed(9, i as u64)
                })
            })
        };
        let baseline = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn map_quarantined_clean_batch_has_empty_report() {
        let exec = Executor::new(3);
        let (results, report) = exec.map_quarantined(20, 1, |i| i + 1);
        assert_eq!(results, (1..=20).map(Some).collect::<Vec<_>>());
        assert!(report.is_clean());
        assert_eq!(report, QuarantineReport::default());
    }

    #[test]
    fn from_env_defaults_to_parallelism() {
        // TOMO_THREADS is not set under `cargo test`; just assert sanity.
        assert!(Executor::from_env().threads() >= 1);
    }

    #[test]
    fn traced_fanout_builds_one_connected_tree() {
        // Tracing state is process-global; this is the only test in the
        // crate that enables it, so no cross-test lock is needed.
        tomo_obs::reset_journal();
        tomo_obs::set_tracing(true);
        let root = tomo_obs::span("par.test.root");
        Executor::new(3).map(8, |i| i);
        drop(root);
        tomo_obs::set_tracing(false);

        let snap = tomo_obs::journal_snapshot();
        let mut root_id = 0;
        let mut spans = Vec::new();
        for event in &snap.events {
            if let tomo_obs::TraceEvent::Span {
                id, parent, name, ..
            } = event
            {
                if name == "par.test.root" {
                    root_id = *id;
                }
                spans.push((*id, *parent, name.clone()));
            }
        }
        assert_ne!(root_id, 0, "root span must be journaled");
        // Other tests may run (and journal spans) while tracing is on;
        // only spans reachable from our root are ours to assert on.
        let worker_ids: std::collections::HashSet<u64> = spans
            .iter()
            .filter(|&&(_, parent, ref n)| n == "par.worker" && parent == root_id)
            .map(|&(id, _, _)| id)
            .collect();
        assert!(
            !worker_ids.is_empty(),
            "workers must parent under the caller"
        );
        let trials = spans
            .iter()
            .filter(|&&(_, parent, ref n)| n == "trial" && worker_ids.contains(&parent))
            .count();
        assert_eq!(trials, 8, "one trial span per task, parented to a worker");
        tomo_obs::reset_journal();
    }
}
