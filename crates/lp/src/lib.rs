//! A self-contained linear-programming solver for the scapegoating
//! reproduction.
//!
//! Every attack strategy in the paper — chosen-victim (Eq. 4-7),
//! maximum-damage (Eq. 8) and obfuscation (Eq. 9-11) — is a linear program
//! in the attack manipulation vector `m`: the objective `‖m‖₁ = Σ mᵢ` is
//! linear because `m ⪰ 0`, and the link-state constraints are linear
//! because the tomography estimate responds linearly to manipulations.
//! *Feasibility of the LP is the paper's notion of attack success*, so the
//! solver must report [`LpStatus::Infeasible`] reliably, not merely find
//! optima.
//!
//! Two interchangeable backends share one model API: a dense two-phase
//! tableau simplex (Dantzig pricing with an automatic fallback to
//! Bland's rule to guarantee termination under degeneracy) for small
//! instances, and a sparse-basis revised simplex (Gilbert–Peierls LU
//! factorization with product-form eta updates and periodic
//! refactorization) for Rocketfuel-scale problems. [`SolverMode::Auto`]
//! picks by problem size; `solve_with` forces a backend explicitly.
//!
//! # Example
//!
//! ```
//! use tomo_lp::{LpProblem, Objective, Relation};
//!
//! # fn main() -> Result<(), tomo_lp::LpError> {
//! // maximize 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 2,  x,y ≥ 0
//! let mut lp = LpProblem::new(Objective::Maximize);
//! let x = lp.add_variable("x", 0.0, None)?;
//! let y = lp.add_variable("y", 0.0, None)?;
//! lp.set_objective_coefficient(x, 3.0);
//! lp.set_objective_coefficient(y, 2.0);
//! lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)?;
//! lp.add_constraint(&[(x, 1.0)], Relation::Le, 2.0)?;
//! let sol = lp.solve()?;
//! assert!(sol.is_optimal());
//! assert!((sol.objective_value() - 10.0).abs() < 1e-7);
//! assert!((sol.value(x) - 2.0).abs() < 1e-7);
//! assert!((sol.value(y) - 2.0).abs() < 1e-7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod error;
mod model;
mod revised;
mod simplex;
mod solution;
mod warm;

pub use error::LpError;
pub use model::{ConstraintActivity, LpProblem, Objective, Relation, VarId};
pub use simplex::{take_last_warm_outcome, SolverMode};
pub use solution::{LpSolution, LpStatus};
pub use warm::{warm_enabled, WarmStart};

/// Feasibility/optimality tolerance used throughout the solver.
pub const LP_TOL: f64 = 1e-7;
