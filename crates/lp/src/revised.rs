//! Revised two-phase primal simplex with a sparse LU basis factorization.
//!
//! The dense tableau in [`crate::simplex`] rewrites the entire
//! `(m+1)×(ncols+1)` tableau on every pivot. At Rocketfuel scale (a
//! 10k-link budget LP is ~10k rows × ~20k columns) that is hundreds of
//! megabytes of memory traffic *per pivot* and an unusable solver. This
//! module keeps the constraint matrix as sparse columns and represents
//! the basis inverse implicitly:
//!
//! * a sparse LU factorization of the basis `B` — Gilbert–Peierls
//!   left-looking factorization with partial pivoting (the `cs_lu`
//!   algorithm): per basis column, a DFS over the pattern of `L` finds
//!   the reach, a sparse triangular solve computes the column, and the
//!   largest-magnitude remaining entry becomes the pivot;
//! * product-form *eta* updates per pivot (`B_new = B·E` with `E`
//!   identity except the entering column), applied after the LU solves
//!   in FTRAN and before them (transposed, in reverse) in BTRAN —
//!   the Bartels–Golub-family update discipline;
//! * periodic refactorization every [`REFACTOR_INTERVAL`] etas to bound
//!   eta fill-in and numerical drift, recomputing basic values from
//!   scratch.
//!
//! Decision semantics mirror the dense backend step for step: the same
//! standard-form assembly (lower-bound shift, upper-bound rows,
//! rhs-sign normalization, `[structural | slacks | artificials]` column
//! layout), the same Dantzig→Bland pricing switch, the same ratio-test
//! tie-breaking on basis column index, the same phase-1 infeasibility
//! test, artificial drive-out and ban, the same warm-start crash
//! protocol, and the same counters/histograms. The two backends are
//! therefore *decision-equivalent* — equal status, equal objective up
//! to solver tolerance — though not bit-identical: reduced costs come
//! from BTRAN instead of tableau elimination, so tie-breaking among
//! numerically near-equal candidates can pick different (equally
//! optimal) vertices.

use tomo_obs::LazyCounter;

use crate::model::{LpProblem, Objective, Relation};
use crate::simplex::{
    self, Crash, BLAND_SWITCH, COLD_PIVOTS, INFEASIBLE, ITERATIONS, MAX_ITER_BASE, OPTIMAL,
    PHASE1_SECONDS, PHASE2_SECONDS, PIVOTS, SOLVES, UNBOUNDED, WARM_CRASH_OPS, WARM_HITS,
    WARM_MISSES, WARM_PIVOTS,
};
use crate::solution::{LpSolution, LpStatus};
use crate::warm::WarmStart;
use crate::{LpError, LP_TOL};

static REVISED_SOLVES: LazyCounter = LazyCounter::new("lp.simplex.revised.solves");
static REVISED_REFACTORS: LazyCounter = LazyCounter::new("lp.simplex.revised.refactors");
static REVISED_ETAS: LazyCounter = LazyCounter::new("lp.simplex.revised.etas");

/// Refactor the basis after this many product-form eta updates. Each
/// FTRAN/BTRAN applies every outstanding eta, so the interval trades
/// per-iteration eta traffic against refactorization cost; 64 keeps the
/// eta file small while amortizing the (cheap, sparsity-exploiting)
/// factorization over many pivots.
const REFACTOR_INTERVAL: usize = 64;

/// Sparse LU factors of a basis matrix `B` with partial pivoting:
/// `PB = LU` with `L` unit lower triangular. `L` columns store
/// `(original_row, value)` entries whose pivot positions come later;
/// `U` columns store `(pivot_position, value)` entries above the
/// diagonal, with the diagonal kept separately.
struct SparseLu {
    l_cols: Vec<Vec<(usize, f64)>>,
    u_cols: Vec<Vec<(usize, f64)>>,
    diag: Vec<f64>,
    /// `pinv[original_row]` = pivot position of that row.
    pinv: Vec<usize>,
}

impl SparseLu {
    /// Gilbert–Peierls left-looking factorization of the matrix whose
    /// k-th column is `cols[basis[k]]`. Returns `None` when no pivot of
    /// magnitude above [`LP_TOL`] exists for some column (singular
    /// basis).
    fn factor(cols: &[Vec<(usize, f64)>], basis: &[usize]) -> Option<SparseLu> {
        let n = basis.len();
        let mut l_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut u_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut diag = vec![0.0; n];
        let mut pinv = vec![usize::MAX; n];
        let mut x = vec![0.0; n];
        let mut visited = vec![false; n];
        let mut topo: Vec<usize> = Vec::with_capacity(16);
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(16);

        for k in 0..n {
            let bk = &cols[basis[k]];
            // Reach: DFS over the L pattern from the column's nonzeros.
            // Nodes are original row indices; a pivotal row (pinv set)
            // fans out to the rows of its L column. `topo` collects
            // nodes in DFS finish order, so iterating it in reverse
            // processes every updater before the entries it updates.
            topo.clear();
            for &(i0, _) in bk {
                if visited[i0] {
                    continue;
                }
                visited[i0] = true;
                stack.push((i0, 0));
                'dfs: while let Some(&(i, cursor)) = stack.last() {
                    let j = pinv[i];
                    if j != usize::MAX {
                        let kids = &l_cols[j];
                        let mut cur = cursor;
                        while cur < kids.len() {
                            let c = kids[cur].0;
                            cur += 1;
                            if !visited[c] {
                                stack.last_mut().expect("stack nonempty").1 = cur;
                                visited[c] = true;
                                stack.push((c, 0));
                                continue 'dfs;
                            }
                        }
                    }
                    topo.push(i);
                    stack.pop();
                }
            }
            // Sparse triangular solve: x = L⁻¹ (partial) · bk.
            for &(i0, v) in bk {
                x[i0] = v;
            }
            for &i in topo.iter().rev() {
                let j = pinv[i];
                if j == usize::MAX {
                    continue;
                }
                let xj = x[i];
                if xj != 0.0 {
                    for &(r, lv) in &l_cols[j] {
                        x[r] -= lv * xj;
                    }
                }
            }
            // Partial pivot among rows not yet pivotal.
            let mut prow = usize::MAX;
            let mut pval = 0.0;
            for &i in &topo {
                if pinv[i] == usize::MAX {
                    let a = x[i].abs();
                    if a > pval {
                        pval = a;
                        prow = i;
                    }
                }
            }
            if prow == usize::MAX || pval <= LP_TOL {
                return None;
            }
            let d = x[prow];
            diag[k] = d;
            // Gather: pivotal rows become U entries, the rest L entries.
            for &i in &topo {
                let v = x[i];
                x[i] = 0.0;
                visited[i] = false;
                if i == prow || v == 0.0 {
                    continue;
                }
                match pinv[i] {
                    usize::MAX => l_cols[k].push((i, v / d)),
                    j => u_cols[k].push((j, v)),
                }
            }
            pinv[prow] = k;
        }
        Some(SparseLu {
            l_cols,
            u_cols,
            diag,
            pinv,
        })
    }

    /// Solves `B x = b`. `b` is indexed by original row, `x` by basis
    /// position. `scratch` must have length `n`; every slot is written
    /// before being read.
    fn solve(&self, b: &[f64], x: &mut [f64], scratch: &mut [f64]) {
        let n = self.diag.len();
        let z = scratch;
        for (i, &bi) in b.iter().enumerate() {
            z[self.pinv[i]] = bi;
        }
        for k in 0..n {
            let zk = z[k];
            if zk != 0.0 {
                for &(r, lv) in &self.l_cols[k] {
                    z[self.pinv[r]] -= lv * zk;
                }
            }
        }
        for k in (0..n).rev() {
            let xk = z[k] / self.diag[k];
            x[k] = xk;
            if xk != 0.0 {
                for &(j, uv) in &self.u_cols[k] {
                    z[j] -= uv * xk;
                }
            }
        }
    }

    /// Solves `Bᵀ y = c`. `c` is indexed by basis position, `y` by
    /// original row. `scratch` must have length `n`.
    fn solve_transpose(&self, c: &[f64], y: &mut [f64], scratch: &mut [f64]) {
        let n = self.diag.len();
        let v = scratch;
        for k in 0..n {
            let mut s = c[k];
            for &(j, uv) in &self.u_cols[k] {
                s -= uv * v[j];
            }
            v[k] = s / self.diag[k];
        }
        for k in (0..n).rev() {
            let mut s = v[k];
            for &(r, lv) in &self.l_cols[k] {
                s -= lv * v[self.pinv[r]];
            }
            v[k] = s;
        }
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = v[self.pinv[i]];
        }
    }
}

/// One product-form update: after column `q` entered at basis position
/// `r` with FTRAN'd column `α = B⁻¹A_q`, `B_new = B·E` where `E` is
/// identity except column `r` = `α`.
struct Eta {
    r: usize,
    /// Pivot element `α_r`.
    dr: f64,
    /// Off-pivot nonzeros `(position, α_i)`.
    entries: Vec<(usize, f64)>,
}

/// Applies `E_1⁻¹, E_2⁻¹, …` in order to a vector already solved
/// through the LU factors (the FTRAN tail).
fn apply_etas_ftran(etas: &[Eta], w: &mut [f64]) {
    for eta in etas {
        let ur = w[eta.r] / eta.dr;
        if ur != 0.0 {
            for &(i, a) in &eta.entries {
                w[i] -= a * ur;
            }
        }
        w[eta.r] = ur;
    }
}

/// Applies `E_k⁻ᵀ, …, E_1⁻ᵀ` (reverse order) to a vector before the
/// transposed LU solves (the BTRAN head).
fn apply_etas_btran(etas: &[Eta], c: &mut [f64]) {
    for eta in etas.iter().rev() {
        let mut s = c[eta.r];
        for &(i, a) in &eta.entries {
            s -= a * c[i];
        }
        c[eta.r] = s / eta.dr;
    }
}

/// Revised-simplex solver state over an assembled sparse standard form.
struct Revised {
    m: usize,
    ncols: usize,
    first_artificial: usize,
    /// Sparse columns of the full standard-form matrix
    /// `[structural | slacks | artificials]`, entries `(row, value)`
    /// with rows ascending.
    cols: Vec<Vec<(usize, f64)>>,
    /// Normalized right-hand side (all entries ≥ 0).
    rhs: Vec<f64>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    banned: Vec<bool>,
    lu: SparseLu,
    etas: Vec<Eta>,
    /// Basic values by position: `xb[i]` = value of `basis[i]`.
    /// Updated incrementally per pivot, recomputed at refactorization.
    xb: Vec<f64>,
    /// FTRAN'd entering column of the most recent `ftran_col`.
    alpha: Vec<f64>,
    /// BTRAN'd simplex multipliers of the most recent `btran_costs`,
    /// indexed by original row.
    y: Vec<f64>,
    solve_pivots: u64,
    w1: Vec<f64>,
    w2: Vec<f64>,
}

impl Revised {
    /// Recomputes `xb = B⁻¹ rhs` from the current factorization.
    fn compute_xb(&mut self) {
        self.lu.solve(&self.rhs, &mut self.xb, &mut self.w1);
        apply_etas_ftran(&self.etas, &mut self.xb);
    }

    /// FTRAN of structural column `q` into `self.alpha`.
    fn ftran_col(&mut self, q: usize) {
        self.w2.fill(0.0);
        for &(i, a) in &self.cols[q] {
            self.w2[i] = a;
        }
        self.lu.solve(&self.w2, &mut self.alpha, &mut self.w1);
        apply_etas_ftran(&self.etas, &mut self.alpha);
    }

    /// BTRAN of the basic cost vector into `self.y` (the simplex
    /// multipliers `y = B⁻ᵀ c_B`).
    fn btran_costs(&mut self, costs: &[f64]) {
        for (wi, &b) in self.w2.iter_mut().zip(&self.basis) {
            *wi = costs[b];
        }
        apply_etas_btran(&self.etas, &mut self.w2);
        self.lu.solve_transpose(&self.w2, &mut self.y, &mut self.w1);
    }

    /// Reduced cost of column `j` against the current multipliers.
    fn reduced_cost(&self, costs: &[f64], j: usize) -> f64 {
        let mut d = costs[j];
        for &(i, a) in &self.cols[j] {
            d -= self.y[i] * a;
        }
        d
    }

    /// Chooses the entering column, or `None` if optimal. Mirrors the
    /// dense backend: Dantzig (most negative reduced cost, first index
    /// on exact ties) before [`BLAND_SWITCH`] iterations, Bland (first
    /// improving index) after. Basic columns are skipped — their
    /// reduced cost is exactly zero in the tableau formulation, while
    /// BTRAN-computed values carry round-off.
    fn entering(&self, costs: &[f64], iter: usize) -> Option<usize> {
        if iter >= BLAND_SWITCH {
            (0..self.ncols).find(|&j| {
                !self.banned[j] && !self.in_basis[j] && self.reduced_cost(costs, j) < -LP_TOL
            })
        } else {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.ncols {
                if self.banned[j] || self.in_basis[j] {
                    continue;
                }
                let d = self.reduced_cost(costs, j);
                if d < -LP_TOL && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((j, d));
                }
            }
            best.map(|(j, _)| j)
        }
    }

    /// Ratio test over `self.alpha`, tie-breaking on the smaller basis
    /// column index exactly like the dense backend.
    fn leaving(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &a) in self.alpha.iter().enumerate() {
            if a > LP_TOL {
                let ratio = self.xb[i].max(0.0) / a;
                let better = match best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < br - LP_TOL
                            || (ratio < br + LP_TOL && self.basis[i] < self.basis[bi])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// One priced pivot: column `q` (whose FTRAN is in `self.alpha`)
    /// enters at position `r`. Updates basic values incrementally,
    /// records an eta, and refactorizes when the eta file is full.
    fn pivot(&mut self, r: usize, q: usize) -> Result<(), LpError> {
        PIVOTS.inc();
        self.solve_pivots += 1;
        let ar = self.alpha[r];
        let theta = self.xb[r].max(0.0) / ar;
        for (i, (xi, &a)) in self.xb.iter_mut().zip(&self.alpha).enumerate() {
            if i != r && a != 0.0 {
                *xi -= a * theta;
            }
        }
        self.xb[r] = theta;
        self.in_basis[self.basis[r]] = false;
        self.basis[r] = q;
        self.in_basis[q] = true;
        let entries: Vec<(usize, f64)> = self
            .alpha
            .iter()
            .enumerate()
            .filter(|&(i, &a)| i != r && a != 0.0)
            .map(|(i, &a)| (i, a))
            .collect();
        self.etas.push(Eta { r, dr: ar, entries });
        REVISED_ETAS.inc();
        if self.etas.len() >= REFACTOR_INTERVAL {
            self.refactor()?;
        }
        Ok(())
    }

    /// Refactorizes the current basis from scratch and recomputes the
    /// basic values, clearing the eta file.
    fn refactor(&mut self) -> Result<(), LpError> {
        REVISED_REFACTORS.inc();
        let lu = SparseLu::factor(&self.cols, &self.basis)
            .ok_or(LpError::SingularBasis { rows: self.m })?;
        self.lu = lu;
        self.etas.clear();
        self.compute_xb();
        Ok(())
    }

    /// Runs simplex iterations until optimal (`Ok(true)`), unbounded
    /// (`Ok(false)`) or the iteration limit.
    fn optimize(&mut self, costs: &[f64]) -> Result<bool, LpError> {
        let limit = MAX_ITER_BASE + 100 * (self.m + self.ncols);
        for iter in 0..limit {
            ITERATIONS.inc();
            self.btran_costs(costs);
            let Some(q) = self.entering(costs, iter) else {
                return Ok(true);
            };
            self.ftran_col(q);
            let Some(r) = self.leaving() else {
                return Ok(false);
            };
            self.pivot(r, q)?;
        }
        Err(LpError::IterationLimit { limit })
    }

    /// Pivots zero-valued basic artificials out of the basis where a
    /// non-artificial column has a usable element in their row —
    /// the revised analogue of the dense drive-out scan (the tableau
    /// entry `t[i][j]` is `ρᵀA_j` with `ρ = B⁻ᵀe_i`).
    fn drive_out_artificials(&mut self) -> Result<(), LpError> {
        for i in 0..self.m {
            if self.basis[i] < self.first_artificial {
                continue;
            }
            self.w2.fill(0.0);
            self.w2[i] = 1.0;
            apply_etas_btran(&self.etas, &mut self.w2);
            self.lu.solve_transpose(&self.w2, &mut self.y, &mut self.w1);
            let found = (0..self.first_artificial).find(|&j| {
                if self.in_basis[j] {
                    return false;
                }
                let mut t = 0.0;
                for &(r, a) in &self.cols[j] {
                    t += self.y[r] * a;
                }
                t.abs() > LP_TOL
            });
            if let Some(j) = found {
                self.ftran_col(j);
                if self.alpha[i].abs() > LP_TOL {
                    self.pivot(i, j)?;
                }
                // Otherwise the row is redundant; the artificial stays
                // basic at value 0 and (being banned) can never grow.
            }
        }
        Ok(())
    }

    /// Installs a remembered basis: factorizes it, recomputes basic
    /// values, and classifies the result exactly like the dense crash.
    fn try_install(&mut self, hint: &[usize]) -> Crash {
        if hint.len() != self.m || hint.iter().any(|&c| c >= self.ncols) {
            return Crash::Failed;
        }
        let Some(lu) = SparseLu::factor(&self.cols, hint) else {
            return Crash::Failed;
        };
        WARM_CRASH_OPS.add(self.m as u64);
        self.basis.copy_from_slice(hint);
        self.in_basis.fill(false);
        for &b in hint {
            self.in_basis[b] = true;
        }
        self.lu = lu;
        self.etas.clear();
        self.compute_xb();
        if self.xb.iter().any(|&v| v < -LP_TOL) {
            return Crash::Failed;
        }
        let artificials_off = self
            .basis
            .iter()
            .zip(&self.xb)
            .all(|(&b, &v)| b < self.first_artificial || v <= LP_TOL);
        if artificials_off {
            Crash::Phase2Ready
        } else {
            Crash::Phase1Ready
        }
    }

    /// Restores the all-slack/artificial starting basis (an identity
    /// matrix, so the factorization cannot fail) after a failed crash.
    fn restore_initial(&mut self, init_basis: &[usize]) {
        self.basis.copy_from_slice(init_basis);
        self.in_basis.fill(false);
        for &b in init_basis {
            self.in_basis[b] = true;
        }
        self.lu = SparseLu::factor(&self.cols, &self.basis)
            .expect("initial slack/artificial basis is the identity");
        self.etas.clear();
        self.xb.copy_from_slice(&self.rhs);
    }
}

/// Solves the model with the revised simplex; the sparse mirror of
/// `simplex::solve_inner` (same flow, counters and warm protocol).
pub(crate) fn solve_revised(
    problem: &LpProblem,
    warm: Option<&WarmStart>,
) -> Result<LpSolution, LpError> {
    SOLVES.inc();
    REVISED_SOLVES.inc();
    simplex::set_last_warm(None);
    let n_struct = problem.variables.len();

    // Assemble rows in (sparse terms, relation, rhs) form over the
    // shifted structural variables x' = x − lower ≥ 0 — the sparse
    // mirror of the dense assembly in `solve_inner`.
    struct SparseRow {
        terms: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    }
    let mut rows: Vec<SparseRow> = Vec::with_capacity(problem.constraints.len() + n_struct);
    for c in &problem.constraints {
        let mut shift = 0.0;
        for &(j, a) in &c.terms {
            shift += a * problem.variables[j].lower;
        }
        rows.push(SparseRow {
            terms: c.terms.clone(),
            relation: c.relation,
            rhs: c.rhs - shift,
        });
    }
    // Upper bounds become explicit rows: x'_j ≤ upper_j − lower_j.
    for (j, v) in problem.variables.iter().enumerate() {
        if let Some(u) = v.upper {
            rows.push(SparseRow {
                terms: vec![(j, 1.0)],
                relation: Relation::Le,
                rhs: u - v.lower,
            });
        }
    }
    let m = rows.len();

    // Normalize to rhs ≥ 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            for t in r.terms.iter_mut() {
                t.1 = -t.1;
            }
            r.rhs = -r.rhs;
            r.relation = match r.relation {
                Relation::Le => Relation::Ge,
                Relation::Eq => Relation::Eq,
                Relation::Ge => Relation::Le,
            };
        }
    }

    // Column layout: [structural | slacks/surplus | artificials].
    let n_slack = rows.iter().filter(|r| r.relation != Relation::Eq).count();
    let n_art = rows.iter().filter(|r| r.relation != Relation::Le).count();
    let ncols = n_struct + n_slack + n_art;

    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
    let mut rhs = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n_struct;
    let mut art_idx = n_struct + n_slack;
    let mut artificial_cols: Vec<usize> = Vec::with_capacity(n_art);

    for (i, r) in rows.iter().enumerate() {
        for &(j, a) in &r.terms {
            if a != 0.0 {
                cols[j].push((i, a));
            }
        }
        rhs[i] = r.rhs;
        match r.relation {
            Relation::Le => {
                cols[slack_idx].push((i, 1.0));
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                cols[slack_idx].push((i, -1.0));
                slack_idx += 1;
                cols[art_idx].push((i, 1.0));
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                cols[art_idx].push((i, 1.0));
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }
    let first_artificial = n_struct + n_slack;
    let init_basis = basis.clone();
    let mut in_basis = vec![false; ncols];
    for &b in &basis {
        in_basis[b] = true;
    }
    let lu =
        SparseLu::factor(&cols, &basis).expect("initial slack/artificial basis is the identity");
    let mut st = Revised {
        m,
        ncols,
        first_artificial,
        cols,
        xb: rhs.clone(),
        rhs,
        basis,
        in_basis,
        banned: vec![false; ncols],
        lu,
        etas: Vec::new(),
        alpha: vec![0.0; m],
        y: vec![0.0; m],
        solve_pivots: 0,
        w1: vec![0.0; m],
        w2: vec![0.0; m],
    };

    // Chaos seam: mirror of the dense backend's fault injection point.
    match crate::chaos::take() {
        Some(crate::chaos::SolveFault::IterationExhaustion) => {
            return Err(LpError::IterationLimit { limit: 0 });
        }
        Some(crate::chaos::SolveFault::SingularWarmBasis) => {
            // Drive the install path with an all-duplicate basis hint —
            // structurally singular for m ≥ 2 — then report it as
            // unrepairable, exercising the same restore path a corrupt
            // remembered basis would.
            if st.try_install(&vec![0usize; m]) == Crash::Failed {
                st.restore_initial(&init_basis);
            }
            return Err(LpError::SingularBasis { rows: m });
        }
        None => {}
    }

    // Warm start: same candidate/restore/accounting protocol as the
    // dense backend. Row assignment of the hinted columns is delegated
    // to the LU row permutation rather than crash elimination order —
    // the basis *set* (and thus the vertex) is identical either way.
    let skeleton = warm.map(|w| (w, problem.skeleton_hash()));
    let mut crash = Crash::Failed;
    if let Some((w, key)) = skeleton {
        let candidates = w.candidates(key, m, ncols);
        for hint in &candidates {
            match st.try_install(hint) {
                Crash::Failed => st.restore_initial(&init_basis),
                state => {
                    crash = state;
                    break;
                }
            }
        }
        if crash == Crash::Failed {
            WARM_MISSES.inc();
        } else {
            WARM_HITS.inc();
        }
        simplex::set_last_warm(Some(crash != Crash::Failed));
    }
    let warm_hit = crash != Crash::Failed;

    // Phase 1: minimize the sum of artificials (skipped when the crash
    // already produced an artificial-free feasible basis).
    if !artificial_cols.is_empty() && crash != Crash::Phase2Ready {
        let _phase1_timer = PHASE1_SECONDS.start_timer();
        let mut phase1_costs = vec![0.0; ncols];
        for &j in &artificial_cols {
            phase1_costs[j] = 1.0;
        }
        let optimal = st.optimize(&phase1_costs)?;
        debug_assert!(optimal, "phase-1 LP is bounded below by 0");
        let phase1_obj: f64 = st
            .basis
            .iter()
            .zip(&st.xb)
            .map(|(&b, &v)| phase1_costs[b] * v)
            .sum();
        if phase1_obj > LP_TOL * (1.0 + phase1_obj.abs()) {
            INFEASIBLE.inc();
            if warm_hit {
                WARM_PIVOTS.record(st.solve_pivots as f64);
            } else {
                COLD_PIVOTS.record(st.solve_pivots as f64);
            }
            if let Some((w, key)) = skeleton {
                w.store(key, m, ncols, Some(st.basis.clone()), None);
            }
            tomo_obs::debug!(
                "lp.simplex",
                "revised infeasible: phase-1 objective {phase1_obj:.3e}"
            );
            return Ok(LpSolution::new(
                LpStatus::Infeasible,
                0.0,
                vec![0.0; n_struct],
            ));
        }
        st.drive_out_artificials()?;
    }
    for &j in &artificial_cols {
        st.banned[j] = true;
    }
    let phase1_basis = skeleton.map(|_| st.basis.clone());

    // Phase 2: real objective (converted to minimization over x').
    let sign = match problem.objective() {
        Objective::Maximize => -1.0,
        Objective::Minimize => 1.0,
    };
    let mut phase2_costs = vec![0.0; ncols];
    for (j, v) in problem.variables.iter().enumerate() {
        phase2_costs[j] = sign * v.objective;
    }
    let optimal = PHASE2_SECONDS.time(|| st.optimize(&phase2_costs))?;
    if warm_hit {
        WARM_PIVOTS.record(st.solve_pivots as f64);
    } else {
        COLD_PIVOTS.record(st.solve_pivots as f64);
    }
    if !optimal {
        UNBOUNDED.inc();
        if let Some((w, key)) = skeleton {
            w.store(key, m, ncols, phase1_basis, None);
        }
        tomo_obs::warn!("lp.simplex", "revised: unbounded objective");
        return Ok(LpSolution::new(
            LpStatus::Unbounded,
            0.0,
            vec![0.0; n_struct],
        ));
    }
    if let Some((w, key)) = skeleton {
        w.store(key, m, ncols, phase1_basis, Some(st.basis.clone()));
    }

    // Extract structural values (undo the lower-bound shift).
    let mut values = vec![0.0; n_struct];
    for (i, &b) in st.basis.iter().enumerate() {
        if b < n_struct {
            values[b] = st.xb[i].max(0.0);
        }
    }
    for (j, v) in problem.variables.iter().enumerate() {
        values[j] += v.lower;
    }
    let objective: f64 = problem
        .variables
        .iter()
        .enumerate()
        .map(|(j, v)| v.objective * values[j])
        .sum();

    OPTIMAL.inc();
    tomo_obs::debug!("lp.simplex", "revised optimal: objective {objective:.6e}");
    Ok(LpSolution::new(LpStatus::Optimal, objective, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpProblem, LpStatus, Objective, Relation, SolverMode, VarId, WarmStart};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    fn revised(lp: &LpProblem) -> LpSolution {
        lp.solve_with(SolverMode::Revised).unwrap()
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let sol = revised(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn phase1_ge_and_eq_constraints() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → (10, 0), z = 20.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let sol = revised(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 20.0);

        // min x + y s.t. x + 2y = 4, 3x + 2y = 8 → (2, 1), z = 3.
        let mut eq = LpProblem::new(Objective::Minimize);
        let x = eq.add_variable("x", 0.0, None).unwrap();
        let y = eq.add_variable("y", 0.0, None).unwrap();
        eq.set_objective_coefficient(x, 1.0);
        eq.set_objective_coefficient(y, 1.0);
        eq.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        eq.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Eq, 8.0)
            .unwrap();
        let sol = revised(&eq);
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut inf = LpProblem::new(Objective::Maximize);
        let x = inf.add_variable("x", 0.0, None).unwrap();
        inf.set_objective_coefficient(x, 1.0);
        inf.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        inf.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(revised(&inf).status(), LpStatus::Infeasible);

        let mut ub = LpProblem::new(Objective::Maximize);
        let x = ub.add_variable("x", 0.0, None).unwrap();
        ub.set_objective_coefficient(x, 1.0);
        ub.add_constraint(&[(x, -1.0)], Relation::Le, 5.0).unwrap();
        assert_eq!(revised(&ub).status(), LpStatus::Unbounded);
    }

    #[test]
    fn bounds_shifts_and_negative_rhs() {
        // Nonzero lower bounds shifted: min x + y, x ≥ 2, y ∈ [1, 5],
        // x + y ≥ 6 → objective 6.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 2.0, None).unwrap();
        let y = lp.add_variable("y", 1.0, Some(5.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 6.0)
            .unwrap();
        let sol = revised(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 6.0);
        assert!(sol.value(x) >= 2.0 - 1e-9);
        assert!(sol.value(y) >= 1.0 - 1e-9);
        assert!(sol.value(y) <= 5.0 + 1e-9);

        // Negative rhs rows are normalized: max x s.t. x − y ≤ −2,
        // y ≤ 10 → x = 8.
        let mut neg = LpProblem::new(Objective::Maximize);
        let x = neg.add_variable("x", 0.0, None).unwrap();
        let y = neg.add_variable("y", 0.0, Some(10.0)).unwrap();
        neg.set_objective_coefficient(x, 1.0);
        neg.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, -2.0)
            .unwrap();
        let sol = revised(&neg);
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 8.0);
    }

    #[test]
    fn degenerate_and_redundant_problems_terminate() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(y, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 2.0)
            .unwrap();
        let sol = revised(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 1.0);

        // Duplicate equalities: phase 1 leaves a redundant artificial
        // that drive-out must leave basic at zero.
        let mut red = LpProblem::new(Objective::Maximize);
        let x = red.add_variable("x", 0.0, Some(9.0)).unwrap();
        let y = red.add_variable("y", 0.0, Some(9.0)).unwrap();
        red.set_objective_coefficient(x, 1.0);
        red.set_objective_coefficient(y, 2.0);
        red.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0)
            .unwrap();
        red.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 10.0)
            .unwrap();
        let sol = revised(&red);
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 10.0);
    }

    #[test]
    fn many_variable_chain_matches_dense() {
        // max Σ xᵢ with chain constraints xᵢ + xᵢ₊₁ ≤ 1: optimum ⌈n/2⌉.
        let n = 21;
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars: Vec<VarId> = (0..n)
            .map(|i| lp.add_variable(format!("x{i}"), 0.0, Some(1.0)).unwrap())
            .collect();
        for &v in &vars {
            lp.set_objective_coefficient(v, 1.0);
        }
        for w in vars.windows(2) {
            lp.add_constraint(&[(w[0], 1.0), (w[1], 1.0)], Relation::Le, 1.0)
                .unwrap();
        }
        let dense = lp.solve_with(SolverMode::Dense).unwrap();
        let rev = revised(&lp);
        assert_eq!(dense.status(), rev.status());
        assert_close(rev.objective_value(), dense.objective_value());
        assert_close(rev.objective_value(), 11.0);
    }

    #[test]
    fn revised_matches_dense_across_family_sweep() {
        // The warm-equivalence family: Ge + Eq rows, upper bounds, a
        // phase-1 requirement, swept across rhs values — both backends
        // must agree on status and objective at every step.
        for step in 0..20 {
            let demand = 4.0 + f64::from(step) * 1.7;
            let mut lp = LpProblem::new(Objective::Minimize);
            let x = lp.add_variable("x", 0.0, Some(100.0)).unwrap();
            let y = lp.add_variable("y", 0.0, Some(100.0)).unwrap();
            lp.set_objective_coefficient(x, 2.0);
            lp.set_objective_coefficient(y, 3.0);
            lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, demand)
                .unwrap();
            lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, demand / 4.0)
                .unwrap();
            let dense = lp.solve_with(SolverMode::Dense).unwrap();
            let rev = revised(&lp);
            assert_eq!(dense.status(), rev.status(), "demand {demand}");
            assert!(
                (dense.objective_value() - rev.objective_value()).abs()
                    <= 1e-7 * (1.0 + dense.objective_value().abs()),
                "demand {demand}: dense {} revised {}",
                dense.objective_value(),
                rev.objective_value()
            );
        }
    }

    #[test]
    fn warm_composes_with_revised_backend() {
        // Calling the backend directly bypasses the size gate, so the
        // cache protocol itself is exercised at toy scale.
        let warm = WarmStart::new();
        let family = |demand: f64| {
            let mut lp = LpProblem::new(Objective::Minimize);
            let x = lp.add_variable("x", 0.0, Some(100.0)).unwrap();
            let y = lp.add_variable("y", 0.0, Some(100.0)).unwrap();
            lp.set_objective_coefficient(x, 2.0);
            lp.set_objective_coefficient(y, 3.0);
            lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, demand)
                .unwrap();
            lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, demand / 4.0)
                .unwrap();
            lp
        };
        for step in 0..12 {
            let demand = 4.0 + f64::from(step) * 1.9;
            let lp = family(demand);
            let cold = solve_revised(&lp, None).unwrap();
            let hot = solve_revised(&lp, Some(&warm)).unwrap();
            assert_eq!(cold.status(), hot.status(), "demand {demand}");
            assert!(
                (cold.objective_value() - hot.objective_value()).abs()
                    <= 1e-7 * (1.0 + cold.objective_value().abs()),
                "demand {demand}"
            );
        }
        assert_eq!(warm.len(), 1, "the sweep shares one skeleton");

        // Infeasible instances re-certify through the cached basis.
        let hard = family(500.0);
        assert_eq!(
            solve_revised(&hard, Some(&warm)).unwrap().status(),
            LpStatus::Infeasible
        );
        assert_eq!(
            solve_revised(&hard, Some(&warm)).unwrap().status(),
            LpStatus::Infeasible
        );
        // And a feasible instance afterwards still solves correctly.
        let back = family(12.0);
        let hot = solve_revised(&back, Some(&warm)).unwrap();
        let cold = solve_revised(&back, None).unwrap();
        assert!(hot.is_optimal());
        assert_close(hot.objective_value(), cold.objective_value());
    }

    #[test]
    fn armed_faults_surface_identically_to_dense() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, Some(10.0)).unwrap();
        let y = lp.add_variable("y", 0.0, Some(10.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 3.0)
            .unwrap();

        crate::chaos::arm(crate::chaos::SolveFault::IterationExhaustion);
        match lp.solve_with(SolverMode::Revised) {
            Err(LpError::IterationLimit { .. }) => {}
            other => panic!("expected IterationLimit, got {other:?}"),
        }
        crate::chaos::arm(crate::chaos::SolveFault::SingularWarmBasis);
        match lp.solve_with(SolverMode::Revised) {
            Err(LpError::SingularBasis { rows }) => assert!(rows >= 2),
            other => panic!("expected SingularBasis, got {other:?}"),
        }
        // Fault consumed: the next solve is healthy.
        assert!(lp.solve_with(SolverMode::Revised).unwrap().is_optimal());
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        // No constraints, bounded by upper bounds only.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 1.0, Some(2.0)).unwrap();
        lp.set_objective_coefficient(x, 4.0);
        let sol = revised(&lp);
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 8.0);

        // No constraints, no bounds: unbounded (m = 0 path).
        let mut ub = LpProblem::new(Objective::Maximize);
        let z = ub.add_variable("z", 0.0, None).unwrap();
        ub.set_objective_coefficient(z, 1.0);
        assert_eq!(revised(&ub).status(), LpStatus::Unbounded);

        // Empty problem: trivially optimal at objective 0.
        let empty = LpProblem::new(Objective::Minimize);
        assert!(revised(&empty).is_optimal());
    }

    #[test]
    fn sparse_lu_factors_and_solves() {
        // A 4×4 matrix that needs row pivoting: column order chosen so
        // the natural diagonal holds a zero.
        let cols = vec![
            vec![(1, 2.0), (3, 1.0)],
            vec![(0, 1.0), (1, 1.0)],
            vec![(2, 3.0)],
            vec![(0, 4.0), (3, -1.0)],
        ];
        let basis = [0usize, 1, 2, 3];
        let lu = SparseLu::factor(&cols, &basis).expect("nonsingular");
        // Check B x = b by multiplying back.
        let b = [7.0, -2.0, 9.0, 4.0];
        let mut x = [0.0; 4];
        let mut scratch = [0.0; 4];
        lu.solve(&b, &mut x, &mut scratch);
        let mut bx = [0.0; 4];
        for (k, col) in basis.iter().map(|&c| &cols[c]).enumerate() {
            for &(i, a) in col {
                bx[i] += a * x[k];
            }
        }
        for (got, want) in bx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "B x = {bx:?} != {b:?}");
        }
        // And Bᵀ y = c.
        let c = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        lu.solve_transpose(&c, &mut y, &mut scratch);
        for (k, col) in basis.iter().map(|&cc| &cols[cc]).enumerate() {
            let mut s = 0.0;
            for &(i, a) in col {
                s += a * y[i];
            }
            assert!((s - c[k]).abs() < 1e-9, "Bᵀ y mismatch at {k}");
        }
        // A singular basis (duplicate columns) is rejected.
        assert!(SparseLu::factor(&cols, &[1, 1, 2, 3]).is_none());
    }

    #[test]
    fn eta_updates_match_refactorization() {
        // Force tiny refactor intervals implicitly: run a problem large
        // enough to pivot several times and confirm optimality equals
        // the dense backend (etas exercised along the way).
        let n = 40;
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars: Vec<VarId> = (0..n)
            .map(|i| lp.add_variable(format!("v{i}"), 0.0, Some(2.0)).unwrap())
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(v, 1.0 + (i % 5) as f64);
        }
        for w in vars.windows(3) {
            lp.add_constraint(&[(w[0], 1.0), (w[1], 1.0), (w[2], 1.0)], Relation::Le, 2.0)
                .unwrap();
        }
        let dense = lp.solve_with(SolverMode::Dense).unwrap();
        let rev = revised(&lp);
        assert_eq!(dense.status(), rev.status());
        assert!(
            (dense.objective_value() - rev.objective_value()).abs()
                <= 1e-7 * (1.0 + dense.objective_value().abs()),
            "dense {} revised {}",
            dense.objective_value(),
            rev.objective_value()
        );
    }
}
