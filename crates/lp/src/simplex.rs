//! Dense two-phase primal simplex.
//!
//! Works on the standard form `min cᵀx, Ax = b, x ≥ 0` obtained from the
//! user model by shifting lower bounds, adding upper-bound rows, and adding
//! slack/surplus/artificial columns. Pricing is Dantzig (most negative
//! reduced cost) with an automatic switch to Bland's rule after a fixed
//! number of iterations, which guarantees termination under degeneracy.

use tomo_obs::{LazyCounter, LazyHistogram};

use crate::model::{LpProblem, Objective, Relation};
use crate::solution::{LpSolution, LpStatus};
use crate::warm::WarmStart;
use crate::{LpError, LP_TOL};

pub(crate) static SOLVES: LazyCounter = LazyCounter::new("lp.simplex.solves");
pub(crate) static PIVOTS: LazyCounter = LazyCounter::new("lp.simplex.pivots");
pub(crate) static ITERATIONS: LazyCounter = LazyCounter::new("lp.simplex.iterations");
pub(crate) static OPTIMAL: LazyCounter = LazyCounter::new("lp.simplex.optimal");
pub(crate) static INFEASIBLE: LazyCounter = LazyCounter::new("lp.simplex.infeasible");
pub(crate) static UNBOUNDED: LazyCounter = LazyCounter::new("lp.simplex.unbounded");
pub(crate) static PHASE1_SECONDS: LazyHistogram = LazyHistogram::new("lp.simplex.phase1_seconds");
pub(crate) static PHASE2_SECONDS: LazyHistogram = LazyHistogram::new("lp.simplex.phase2_seconds");
pub(crate) static WARM_HITS: LazyCounter = LazyCounter::new("lp.simplex.warm.hits");
pub(crate) static WARM_MISSES: LazyCounter = LazyCounter::new("lp.simplex.warm.misses");
pub(crate) static WARM_CRASH_OPS: LazyCounter = LazyCounter::new("lp.simplex.warm.crash_ops");
pub(crate) static WARM_PIVOTS: LazyHistogram = LazyHistogram::new("lp.simplex.warm.pivots");
pub(crate) static COLD_PIVOTS: LazyHistogram = LazyHistogram::new("lp.simplex.cold.pivots");
static WARM_SKIPPED_SMALL: LazyCounter = LazyCounter::new("lp.simplex.warm.skipped_small");

thread_local! {
    /// Warm-start outcome of this thread's most recent solve: `None` for
    /// a cold solve (no cache offered), `Some(hit)` when a [`WarmStart`]
    /// was consulted. Read via [`take_last_warm_outcome`] by provenance
    /// recording; thread-local so parallel trials never see each other's
    /// solves.
    static LAST_WARM: std::cell::Cell<Option<bool>> = const { std::cell::Cell::new(None) };
}

/// Takes (and clears) the calling thread's last solve's warm-start
/// outcome: `Some(true)` cache hit, `Some(false)` miss, `None` when the
/// last solve ran cold or no solve has happened since the last take.
pub fn take_last_warm_outcome() -> Option<bool> {
    LAST_WARM.with(|w| w.take())
}

/// Records a warm-start outcome for the current thread's solve (shared
/// with the revised-simplex backend so both report through the same
/// [`take_last_warm_outcome`] channel).
pub(crate) fn set_last_warm(outcome: Option<bool>) {
    LAST_WARM.with(|w| w.set(outcome));
}

/// Hard safety bound on simplex iterations per phase.
pub(crate) const MAX_ITER_BASE: usize = 20_000;
/// After this many iterations in a phase, switch from Dantzig to Bland.
pub(crate) const BLAND_SWITCH: usize = 2_000;

/// Which simplex backend a solve should use.
///
/// Both backends implement the same two-phase primal simplex — same
/// pricing rules, ratio-test tie-breaking, phase-1 infeasibility test
/// and warm-start protocol — so they are *decision-equivalent*: equal
/// [`LpStatus`](crate::LpStatus) and equal objective up to solver
/// tolerance. Vertices (and thus low-order solution bits) may differ
/// when the optimum is not unique, exactly like warm vs cold solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Pick by standard-form size: the dense tableau below
    /// [`AUTO_REVISED_MIN_CELLS`] cells (`m·ncols`), the revised simplex
    /// at or above it. The `TOMO_LP_MODE` environment variable
    /// (`dense` / `revised`, case-insensitive, read per solve) overrides
    /// the size heuristic but not an explicit mode choice in code.
    #[default]
    Auto,
    /// Dense tableau pivots: fastest on small instances, O(m·ncols)
    /// memory traffic per pivot.
    Dense,
    /// Revised simplex over sparse columns with a sparse-LU basis
    /// factorization and product-form eta updates: the only viable
    /// backend at Rocketfuel scale.
    Revised,
}

/// `Auto` switches to the revised backend when the standard form holds
/// at least this many tableau cells (`m·ncols`). Below it the dense
/// tableau's contiguous row arithmetic wins; above it the tableau's
/// per-pivot O(m·ncols) traffic (and its memory footprint) loses to
/// sparse FTRAN/BTRAN solves.
pub(crate) const AUTO_REVISED_MIN_CELLS: usize = 1 << 20;

/// Warm-start bases are only worth their crash cost on instances with
/// at least this many standard-form cells; below it the cache is
/// skipped (recorded in `lp.simplex.warm.skipped_small`) unless
/// `TOMO_LP_WARM` forces it (`1` / `force` / `always`).
pub(crate) const WARM_MIN_CELLS: usize = 1 << 18;

/// `true` when `TOMO_LP_WARM` explicitly forces warm-starting even on
/// instances below [`WARM_MIN_CELLS`] — the hook
/// `scripts/bench_trajectory.sh` uses to compare cold vs warm pivot
/// counts on the (small) fig7 workload.
fn warm_forced() -> bool {
    match std::env::var("TOMO_LP_WARM") {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "force" | "always"),
        Err(_) => false,
    }
}

/// Standard-form dimensions `(m, ncols)` the assembly in `solve_inner`
/// (and its sparse mirror in [`crate::revised`]) will produce, computed
/// without allocating the tableau: rows are the user constraints plus
/// one row per finite upper bound; columns are structural + one slack
/// per inequality + one artificial per row that is `Ge`/`Eq` *after*
/// rhs-sign normalization (which flips `Le` rows with negative shifted
/// rhs into `Ge` and vice versa).
pub(crate) fn standard_dims(problem: &LpProblem) -> (usize, usize) {
    let n_struct = problem.variables.len();
    let mut m = 0usize;
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for c in &problem.constraints {
        let mut shift = 0.0;
        for &(j, a) in &c.terms {
            shift += a * problem.variables[j].lower;
        }
        let rhs = c.rhs - shift;
        let relation = if rhs < 0.0 {
            match c.relation {
                Relation::Le => Relation::Ge,
                Relation::Eq => Relation::Eq,
                Relation::Ge => Relation::Le,
            }
        } else {
            c.relation
        };
        m += 1;
        if relation != Relation::Eq {
            n_slack += 1;
        }
        if relation != Relation::Le {
            n_art += 1;
        }
    }
    // Upper-bound rows x'_j ≤ upper − lower always have rhs ≥ 0
    // (bounds are validated at add_variable), so they are always `Le`.
    let n_upper = problem
        .variables
        .iter()
        .filter(|v| v.upper.is_some())
        .count();
    m += n_upper;
    n_slack += n_upper;
    (m, n_struct + n_slack + n_art)
}

/// Resolves the backend for one solve: explicit choice > `TOMO_LP_MODE`
/// environment override > size heuristic.
fn resolve_mode(requested: SolverMode, m: usize, ncols: usize) -> SolverMode {
    match requested {
        SolverMode::Dense | SolverMode::Revised => requested,
        SolverMode::Auto => {
            if let Ok(v) = std::env::var("TOMO_LP_MODE") {
                match v.to_ascii_lowercase().as_str() {
                    "dense" | "tableau" => return SolverMode::Dense,
                    "revised" | "sparse" => return SolverMode::Revised,
                    _ => {}
                }
            }
            if m.saturating_mul(ncols) >= AUTO_REVISED_MIN_CELLS {
                SolverMode::Revised
            } else {
                SolverMode::Dense
            }
        }
    }
}

/// Outcome of crashing a remembered basis into a fresh tableau.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Crash {
    /// Basic feasible solution with zero artificial mass: skip phase 1.
    Phase2Ready,
    /// Primal feasible but artificials still carry weight: re-enter
    /// phase 1 from this basis instead of the all-artificial start.
    Phase1Ready,
    /// Singular or primal-infeasible under the new data: solve cold.
    Failed,
}

struct Tableau {
    /// (m+1) × (ncols+1); last row = reduced costs, last col = rhs.
    t: Vec<Vec<f64>>,
    /// Basis: for each of the m rows, the column index of its basic variable.
    basis: Vec<usize>,
    m: usize,
    ncols: usize,
    /// Columns that may never enter the basis (artificials in phase 2).
    banned: Vec<bool>,
    /// Priced simplex pivots performed during this solve (crash
    /// eliminations excluded) — feeds the warm/cold pivot histograms.
    solve_pivots: u64,
}

impl Tableau {
    fn rhs(&self, i: usize) -> f64 {
        self.t[i][self.ncols]
    }

    /// Gauss-Jordan elimination making column `col` the unit vector of
    /// row `row`: the shared kernel of [`Self::pivot`] and
    /// [`Self::crash_basis`]. Splits the row storage instead of cloning
    /// the pivot row, so no allocation happens per elimination.
    fn eliminate(&mut self, row: usize, col: usize) {
        let pivot = self.t[row][col];
        debug_assert!(pivot.abs() > LP_TOL, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;
        for v in self.t[row].iter_mut() {
            *v *= inv;
        }
        let (head, rest) = self.t.split_at_mut(row);
        let (pivot_row, tail) = rest.split_first_mut().expect("row < m+1");
        for r in head.iter_mut().chain(tail.iter_mut()) {
            let factor = r[col];
            if factor == 0.0 {
                continue;
            }
            for (a, &p) in r.iter_mut().zip(pivot_row.iter()) {
                *a -= factor * p;
            }
            // Kill residual round-off in the pivot column.
            r[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// One priced pivot: column `col` enters, row `row`'s basic variable
    /// leaves.
    fn pivot(&mut self, row: usize, col: usize) {
        PIVOTS.inc();
        self.solve_pivots += 1;
        self.eliminate(row, col);
    }

    /// Installs a remembered basis into a freshly assembled tableau by
    /// eliminating each hinted column in row order ("crash" start).
    ///
    /// [`Crash::Phase2Ready`] means every hinted pivot element was
    /// usable, the resulting basic solution is primal feasible, and no
    /// artificial column (index ≥ `first_artificial`) carries weight —
    /// exactly the state a successful phase 1 would have produced, so
    /// phase 2 can start immediately. [`Crash::Phase1Ready`] means the
    /// basis is primal feasible but artificials still carry weight
    /// (the remembered solve ended infeasible); phase 1 can re-enter
    /// from here instead of the all-artificial start. On
    /// [`Crash::Failed`] the tableau is left partially eliminated and
    /// must be rebuilt by the caller.
    fn crash_basis(&mut self, hint: &[usize], first_artificial: usize) -> Crash {
        if hint.len() != self.m {
            return Crash::Failed;
        }
        // The hint is a *set* of basis columns: install each by
        // Gauss-Jordan elimination, choosing among still-unassigned rows
        // the one with the largest pivot magnitude (partial pivoting).
        // A fixed row order would spuriously reject nonsingular bases
        // whenever an early row happens to have a zero in its hinted
        // column.
        let mut assigned = vec![false; self.m];
        for &col in hint {
            if col >= self.ncols {
                return Crash::Failed;
            }
            let mut best: Option<(usize, f64)> = None;
            for (i, &done) in assigned.iter().enumerate() {
                if done {
                    continue;
                }
                let a = self.t[i][col].abs();
                if a > LP_TOL && best.is_none_or(|(_, b)| a > b) {
                    best = Some((i, a));
                }
            }
            let Some((row, _)) = best else {
                return Crash::Failed;
            };
            assigned[row] = true;
            WARM_CRASH_OPS.inc();
            self.eliminate(row, col);
        }
        if (0..self.m).any(|i| self.rhs(i) < -LP_TOL) {
            return Crash::Failed;
        }
        let artificials_off =
            (0..self.m).all(|i| self.basis[i] < first_artificial || self.rhs(i) <= LP_TOL);
        if artificials_off {
            Crash::Phase2Ready
        } else {
            Crash::Phase1Ready
        }
    }

    /// Chooses the entering column, or `None` if optimal.
    fn entering(&self, iter: usize) -> Option<usize> {
        let costs = &self.t[self.m];
        if iter >= BLAND_SWITCH {
            // Bland: first improving column.
            (0..self.ncols).find(|&j| !self.banned[j] && costs[j] < -LP_TOL)
        } else {
            // Dantzig: most improving column.
            let mut best: Option<(usize, f64)> = None;
            for (j, &c) in costs.iter().take(self.ncols).enumerate() {
                if self.banned[j] {
                    continue;
                }
                if c < -LP_TOL && best.is_none_or(|(_, bc)| c < bc) {
                    best = Some((j, c));
                }
            }
            best.map(|(j, _)| j)
        }
    }

    /// Ratio test: row whose basic variable leaves, or `None` if the
    /// column is unbounded.
    fn leaving(&self, col: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.m {
            let a = self.t[i][col];
            if a > LP_TOL {
                let ratio = self.rhs(i).max(0.0) / a;
                let better = match best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < br - LP_TOL
                            || (ratio < br + LP_TOL && self.basis[i] < self.basis[bi])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Runs simplex iterations until optimal/unbounded/iteration limit.
    fn optimize(&mut self) -> Result<bool, LpError> {
        let limit = MAX_ITER_BASE + 100 * (self.m + self.ncols);
        for iter in 0..limit {
            ITERATIONS.inc();
            let Some(col) = self.entering(iter) else {
                return Ok(true); // optimal
            };
            let Some(row) = self.leaving(col) else {
                return Ok(false); // unbounded
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit { limit })
    }

    /// Installs a cost row and eliminates basic-variable costs.
    fn install_costs(&mut self, costs: &[f64]) {
        let n = self.ncols;
        let (body, cost) = self.t.split_at_mut(self.m);
        let cost_row = &mut cost[0];
        cost_row[..n].copy_from_slice(&costs[..n]);
        cost_row[n] = 0.0;
        for (i, row_i) in body.iter().enumerate() {
            let b = self.basis[i];
            let cb = cost_row[b];
            if cb != 0.0 {
                for (c, &a) in cost_row.iter_mut().zip(row_i.iter()) {
                    *c -= cb * a;
                }
                cost_row[b] = 0.0;
            }
        }
    }
}

/// Solves the model; see [`LpProblem::solve`].
pub(crate) fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    solve_with(problem, None, SolverMode::Auto)
}

/// Solves the model with basis reuse; see [`LpProblem::solve_warm`].
pub(crate) fn solve_warm(problem: &LpProblem, warm: &WarmStart) -> Result<LpSolution, LpError> {
    solve_with(problem, Some(warm), SolverMode::Auto)
}

/// Mode-dispatching entry point shared by every public solve call:
/// sizes the standard form, applies the warm-start size gate, resolves
/// the backend and hands off to the dense tableau or the revised
/// simplex.
pub(crate) fn solve_with(
    problem: &LpProblem,
    warm: Option<&WarmStart>,
    mode: SolverMode,
) -> Result<LpSolution, LpError> {
    let (m, ncols) = standard_dims(problem);
    let warm = match warm {
        Some(_) if m.saturating_mul(ncols) < WARM_MIN_CELLS && !warm_forced() => {
            // At toy scale the crash + pristine-tableau bookkeeping costs
            // more wall time than the pivots it saves, so the cache is
            // bypassed (the solve runs cold and reports no warm outcome).
            WARM_SKIPPED_SMALL.inc();
            None
        }
        other => other,
    };
    match resolve_mode(mode, m, ncols) {
        SolverMode::Revised => crate::revised::solve_revised(problem, warm),
        _ => solve_inner(problem, warm),
    }
}

fn solve_inner(problem: &LpProblem, warm: Option<&WarmStart>) -> Result<LpSolution, LpError> {
    SOLVES.inc();
    LAST_WARM.with(|w| w.set(None));
    let n_struct = problem.variables.len();

    // Assemble rows in (dense coeffs, relation, rhs) form over the shifted
    // structural variables x' = x − lower ≥ 0.
    struct Row {
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(problem.constraints.len() + n_struct);

    for c in &problem.constraints {
        let mut coeffs = vec![0.0; n_struct];
        let mut shift = 0.0;
        for &(j, a) in &c.terms {
            coeffs[j] += a;
            shift += a * problem.variables[j].lower;
        }
        rows.push(Row {
            coeffs,
            relation: c.relation,
            rhs: c.rhs - shift,
        });
    }
    // Upper bounds become explicit rows: x'_j ≤ upper_j − lower_j.
    for (j, v) in problem.variables.iter().enumerate() {
        if let Some(u) = v.upper {
            let mut coeffs = vec![0.0; n_struct];
            coeffs[j] = 1.0;
            rows.push(Row {
                coeffs,
                relation: Relation::Le,
                rhs: u - v.lower,
            });
        }
    }

    let m = rows.len();

    // Normalize to rhs ≥ 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            for a in r.coeffs.iter_mut() {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.relation = match r.relation {
                Relation::Le => Relation::Ge,
                Relation::Eq => Relation::Eq,
                Relation::Ge => Relation::Le,
            };
        }
    }

    // Column layout: [structural | slacks/surplus | artificials].
    let n_slack = rows.iter().filter(|r| r.relation != Relation::Eq).count();
    let n_art = rows.iter().filter(|r| r.relation != Relation::Le).count();
    let ncols = n_struct + n_slack + n_art;

    let mut t = vec![vec![0.0; ncols + 1]; m + 1];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n_struct;
    let mut art_idx = n_struct + n_slack;
    let mut artificial_cols: Vec<usize> = Vec::with_capacity(n_art);

    for (i, r) in rows.iter().enumerate() {
        t[i][..n_struct].copy_from_slice(&r.coeffs);
        t[i][ncols] = r.rhs;
        match r.relation {
            Relation::Le => {
                t[i][slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                t[i][slack_idx] = -1.0;
                slack_idx += 1;
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let mut tab = Tableau {
        t,
        basis,
        m,
        ncols,
        banned: vec![false; ncols],
        solve_pivots: 0,
    };
    let first_artificial = n_struct + n_slack;

    // Chaos seam: an armed fault (see `crate::chaos`) turns this solve
    // into the corresponding typed failure before any pivoting happens,
    // so downstream degradation paths can be exercised deterministically.
    match crate::chaos::take() {
        Some(crate::chaos::SolveFault::IterationExhaustion) => {
            return Err(LpError::IterationLimit { limit: 0 });
        }
        Some(crate::chaos::SolveFault::SingularWarmBasis) => {
            // Drive the crash procedure with an all-duplicate basis hint —
            // structurally singular for m ≥ 2 — then report it as
            // unrepairable, exercising the same restore path a corrupt
            // remembered basis would.
            let pristine_t = tab.t.clone();
            let pristine_basis = tab.basis.clone();
            if tab.crash_basis(&vec![0usize; m], first_artificial) == Crash::Failed {
                tab.t = pristine_t;
                tab.basis = pristine_basis;
            }
            return Err(LpError::SingularBasis { rows: m });
        }
        None => {}
    }

    // Warm start: try to crash a remembered basis for this constraint
    // skeleton into the fresh tableau. `Phase2Ready` means we already
    // hold a basic feasible solution with zero artificial mass —
    // exactly what phase 1 exists to find — so phase 1 is skipped
    // entirely. `Phase1Ready` (the remembered solve ended infeasible)
    // means phase 1 re-enters from the crashed near-terminal basis
    // instead of the all-artificial start, re-certifying in a handful
    // of pivots.
    let skeleton = warm.map(|w| (w, problem.skeleton_hash()));
    let mut crash = Crash::Failed;
    if let Some((w, key)) = skeleton {
        let candidates = w.candidates(key, m, ncols);
        if !candidates.is_empty() {
            let pristine_t = tab.t.clone();
            let pristine_basis = tab.basis.clone();
            for hint in &candidates {
                match tab.crash_basis(hint, first_artificial) {
                    Crash::Failed => {
                        tab.t.clone_from(&pristine_t);
                        tab.basis.clone_from(&pristine_basis);
                    }
                    state => {
                        crash = state;
                        break;
                    }
                }
            }
        }
        if crash == Crash::Failed {
            WARM_MISSES.inc();
        } else {
            WARM_HITS.inc();
        }
        LAST_WARM.with(|w| w.set(Some(crash != Crash::Failed)));
    }
    let warm_hit = crash != Crash::Failed;

    // Phase 1: minimize the sum of artificials (skipped when the crash
    // already produced an artificial-free feasible basis; started from
    // the crashed basis — rather than the all-artificial one — on a
    // `Phase1Ready` crash, since `install_costs` re-prices against
    // whatever basis the tableau currently holds).
    if !artificial_cols.is_empty() && crash != Crash::Phase2Ready {
        let _phase1_timer = PHASE1_SECONDS.start_timer();
        let mut phase1_costs = vec![0.0; ncols];
        for &j in &artificial_cols {
            phase1_costs[j] = 1.0;
        }
        tab.install_costs(&phase1_costs);
        let optimal = tab.optimize()?;
        debug_assert!(optimal, "phase-1 LP is bounded below by 0");
        // Objective value = −cost-row rhs.
        let phase1_obj = -tab.t[tab.m][ncols];
        if phase1_obj > LP_TOL * (1.0 + phase1_obj.abs()) {
            INFEASIBLE.inc();
            if warm_hit {
                WARM_PIVOTS.record(tab.solve_pivots as f64);
            } else {
                COLD_PIVOTS.record(tab.solve_pivots as f64);
            }
            // Remember the phase-1 terminal basis even though the LP is
            // infeasible: the next solve of this skeleton re-certifies
            // infeasibility from it in a handful of pivots.
            if let Some((w, key)) = skeleton {
                w.store(key, m, ncols, Some(tab.basis.clone()), None);
            }
            tomo_obs::debug!(
                "lp.simplex",
                "infeasible: phase-1 objective {phase1_obj:.3e}"
            );
            return Ok(LpSolution::new(
                LpStatus::Infeasible,
                0.0,
                vec![0.0; n_struct],
            ));
        }
        // Pivot zero-valued artificials out of the basis where possible.
        let is_artificial = |j: usize| j >= first_artificial;
        for i in 0..tab.m {
            if is_artificial(tab.basis[i]) {
                if let Some(j) = (0..first_artificial).find(|&j| tab.t[i][j].abs() > LP_TOL) {
                    tab.pivot(i, j);
                }
                // Otherwise the row is redundant; the artificial stays
                // basic at value 0 and (being banned below) can never grow.
            }
        }
    }
    for &j in &artificial_cols {
        tab.banned[j] = true;
    }
    // The feasible basis phase 1 (or the crash) ended with: worth
    // remembering even if phase 2 wanders far from it.
    let phase1_basis = skeleton.map(|_| tab.basis.clone());

    // Phase 2: real objective (converted to minimization over x').
    let sign = match problem.objective() {
        Objective::Maximize => -1.0,
        Objective::Minimize => 1.0,
    };
    let mut phase2_costs = vec![0.0; ncols];
    for (j, v) in problem.variables.iter().enumerate() {
        phase2_costs[j] = sign * v.objective;
    }
    let optimal = PHASE2_SECONDS.time(|| {
        tab.install_costs(&phase2_costs);
        tab.optimize()
    })?;
    if warm_hit {
        WARM_PIVOTS.record(tab.solve_pivots as f64);
    } else {
        COLD_PIVOTS.record(tab.solve_pivots as f64);
    }
    if !optimal {
        UNBOUNDED.inc();
        if let Some((w, key)) = skeleton {
            w.store(key, m, ncols, phase1_basis, None);
        }
        tomo_obs::warn!("lp.simplex", "unbounded objective");
        return Ok(LpSolution::new(
            LpStatus::Unbounded,
            0.0,
            vec![0.0; n_struct],
        ));
    }
    if let Some((w, key)) = skeleton {
        w.store(key, m, ncols, phase1_basis, Some(tab.basis.clone()));
    }

    // Extract structural values (undo the lower-bound shift).
    let mut values = vec![0.0; n_struct];
    for i in 0..tab.m {
        let b = tab.basis[i];
        if b < n_struct {
            values[b] = tab.rhs(i).max(0.0);
        }
    }
    for (j, v) in problem.variables.iter().enumerate() {
        values[j] += v.lower;
    }
    let objective: f64 = problem
        .variables
        .iter()
        .enumerate()
        .map(|(j, v)| v.objective * values[j])
        .sum();

    OPTIMAL.inc();
    tomo_obs::debug!("lp.simplex", "optimal: objective {objective:.6e}");
    Ok(LpSolution::new(LpStatus::Optimal, objective, values))
}

#[cfg(test)]
mod tests {
    use crate::{LpProblem, LpStatus, Objective, Relation, VarId, WarmStart};
    use std::sync::Mutex;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    /// Serializes tests that manipulate `TOMO_LP_WARM` — process-global
    /// environment, so concurrent test threads would race otherwise.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `f` with the warm-start size gate forced open (the test
    /// problems here are all far below [`super::WARM_MIN_CELLS`]),
    /// restoring the prior environment afterwards.
    fn with_warm_forced(f: impl FnOnce()) {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prior = std::env::var("TOMO_LP_WARM").ok();
        std::env::set_var("TOMO_LP_WARM", "force");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        match prior {
            Some(v) => std::env::set_var("TOMO_LP_WARM", v),
            None => std::env::remove_var("TOMO_LP_WARM"),
        }
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    }

    /// A small Ge/Eq-laden problem family parameterized by rhs, so warm
    /// solves exercise the phase-1 skip across rhs changes.
    fn family_instance(demand: f64) -> (LpProblem, VarId, VarId) {
        // min 2x + 3y s.t. x + y ≥ demand, x − y = demand/4, x,y ∈ [0, 100].
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, Some(100.0)).unwrap();
        let y = lp.add_variable("y", 0.0, Some(100.0)).unwrap();
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, demand)
            .unwrap();
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, demand / 4.0)
            .unwrap();
        (lp, x, y)
    }

    #[test]
    fn armed_faults_surface_as_typed_errors_then_clear() {
        let (lp, _, _) = family_instance(10.0);

        crate::chaos::arm(crate::chaos::SolveFault::IterationExhaustion);
        match lp.solve() {
            Err(crate::LpError::IterationLimit { .. }) => {}
            other => panic!("expected IterationLimit, got {other:?}"),
        }

        crate::chaos::arm(crate::chaos::SolveFault::SingularWarmBasis);
        match lp.solve() {
            Err(crate::LpError::SingularBasis { rows }) => assert!(rows >= 2),
            other => panic!("expected SingularBasis, got {other:?}"),
        }

        // The fault is consumed: the very next solve is healthy, and a
        // warm solve after a faulted one still matches cold.
        let cold = lp.solve().unwrap();
        assert!(cold.is_optimal());
        let warm = WarmStart::new();
        crate::chaos::arm(crate::chaos::SolveFault::SingularWarmBasis);
        assert!(lp.solve_warm(&warm).is_err());
        let hot = lp.solve_warm(&warm).unwrap();
        assert_close(hot.objective_value(), cold.objective_value());
    }

    #[test]
    fn warm_solve_matches_cold_across_rhs_sweep() {
        with_warm_forced(|| {
            let warm = WarmStart::new();
            for step in 0..20 {
                let demand = 4.0 + f64::from(step) * 1.7;
                let (lp, x, y) = family_instance(demand);
                let cold = lp.solve().unwrap();
                let hot = lp.solve_warm(&warm).unwrap();
                assert_eq!(cold.status(), hot.status(), "demand {demand}");
                assert!(
                    (cold.objective_value() - hot.objective_value()).abs()
                        <= 1e-9 * (1.0 + cold.objective_value().abs()),
                    "demand {demand}: cold {} warm {}",
                    cold.objective_value(),
                    hot.objective_value()
                );
                for v in [x, y] {
                    assert!((cold.value(v) - hot.value(v)).abs() <= 1e-7);
                }
            }
            // The sweep shares one skeleton.
            assert_eq!(warm.len(), 1);
        });
    }

    #[test]
    fn warm_falls_back_cold_when_basis_goes_infeasible() {
        with_warm_forced(|| {
            let warm = WarmStart::new();
            // Seed the cache at a comfortably feasible instance…
            let (lp, _, _) = family_instance(10.0);
            assert!(lp.solve_warm(&warm).unwrap().is_optimal());
            // …then jump to an infeasible instance of the same skeleton
            // (demand above both upper bounds combined).
            let (hard, _, _) = family_instance(500.0);
            let sol = hard.solve_warm(&warm).unwrap();
            assert_eq!(sol.status(), LpStatus::Infeasible);
            // And back: the cache must still warm the feasible region.
            let (back, x, y) = family_instance(12.0);
            let sol = back.solve_warm(&warm).unwrap();
            assert!(sol.is_optimal());
            let cold = back.solve().unwrap();
            assert_close(sol.objective_value(), cold.objective_value());
            assert_close(sol.value(x), cold.value(x));
            assert_close(sol.value(y), cold.value(y));
        });
    }

    #[test]
    fn warm_reenters_phase1_on_repeated_infeasible_skeleton() {
        with_warm_forced(|| {
            let warm = WarmStart::new();
            // The first infeasible solve must cache its phase-1 terminal
            // basis (before this existed, infeasible solves stored nothing
            // and streams of infeasible instances never warmed up).
            let (a, _, _) = family_instance(500.0);
            assert_eq!(a.solve_warm(&warm).unwrap().status(), LpStatus::Infeasible);
            assert_eq!(warm.len(), 1, "infeasible solve must seed the cache");
            // A second infeasible instance of the same skeleton crashes the
            // cached basis and re-certifies infeasibility from it.
            let (b, _, _) = family_instance(480.0);
            assert_eq!(b.solve_warm(&warm).unwrap().status(), LpStatus::Infeasible);
            assert_eq!(b.solve().unwrap().status(), LpStatus::Infeasible);
            // And a feasible instance afterwards still solves correctly.
            let (c, x, y) = family_instance(12.0);
            let hot = c.solve_warm(&warm).unwrap();
            let cold = c.solve().unwrap();
            assert!(hot.is_optimal());
            assert_close(hot.objective_value(), cold.objective_value());
            assert_close(hot.value(x), cold.value(x));
            assert_close(hot.value(y), cold.value(y));
        });
    }

    #[test]
    fn warm_handles_unbounded_and_all_le_problems() {
        with_warm_forced(|| {
            let warm = WarmStart::new();
            // All-Le problem: no artificials, warm path must still work.
            let mut lp = LpProblem::new(Objective::Maximize);
            let x = lp.add_variable("x", 0.0, Some(7.0)).unwrap();
            lp.set_objective_coefficient(x, 1.0);
            lp.add_constraint(&[(x, 1.0)], Relation::Le, 5.0).unwrap();
            assert_close(lp.solve_warm(&warm).unwrap().value(x), 5.0);
            assert_close(lp.solve_warm(&warm).unwrap().value(x), 5.0);

            // Unbounded problem solved warm twice.
            let mut ub = LpProblem::new(Objective::Maximize);
            let z = ub.add_variable("z", 0.0, None).unwrap();
            ub.set_objective_coefficient(z, 1.0);
            ub.add_constraint(&[(z, -1.0)], Relation::Le, 3.0).unwrap();
            assert_eq!(ub.solve_warm(&warm).unwrap().status(), LpStatus::Unbounded);
            assert_eq!(ub.solve_warm(&warm).unwrap().status(), LpStatus::Unbounded);
        });
    }

    #[test]
    fn skeleton_hash_separates_structure_not_data() {
        let (a, _, _) = family_instance(10.0);
        let (b, _, _) = family_instance(99.0);
        // Same structure, different rhs: same skeleton.
        assert_eq!(a.skeleton_hash(), b.skeleton_hash());
        // Different relation: different skeleton.
        let mut c = LpProblem::new(Objective::Minimize);
        let x = c.add_variable("x", 0.0, Some(100.0)).unwrap();
        let y = c.add_variable("y", 0.0, Some(100.0)).unwrap();
        c.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 10.0)
            .unwrap();
        c.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 2.5)
            .unwrap();
        assert_ne!(a.skeleton_hash(), c.skeleton_hash());
    }

    #[test]
    fn warm_cache_skipped_below_size_gate() {
        // With TOMO_LP_WARM unset, toy problems (far below
        // WARM_MIN_CELLS) must bypass the cache entirely: no slots
        // stored, no hit/miss outcome recorded.
        let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prior = std::env::var("TOMO_LP_WARM").ok();
        std::env::remove_var("TOMO_LP_WARM");
        let result = std::panic::catch_unwind(|| {
            let warm = WarmStart::new();
            let (lp, _, _) = family_instance(10.0);
            let hot = lp.solve_warm(&warm).unwrap();
            let cold = lp.solve().unwrap();
            assert!(hot.is_optimal());
            assert_close(hot.objective_value(), cold.objective_value());
            assert!(warm.is_empty(), "gated solve must not touch the cache");
            assert_eq!(
                crate::take_last_warm_outcome(),
                None,
                "gated solve records no warm outcome"
            );
        });
        match prior {
            Some(v) => std::env::set_var("TOMO_LP_WARM", v),
            None => std::env::remove_var("TOMO_LP_WARM"),
        }
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    }

    #[test]
    fn standard_dims_counts_rows_and_columns() {
        // family_instance: Ge + Eq rows plus two upper-bound rows →
        // m = 4; slacks: Ge surplus + 2 upper-bound slacks = 3;
        // artificials: Ge + Eq = 2; ncols = 2 structural + 3 + 2.
        let (lp, _, _) = family_instance(10.0);
        assert_eq!(super::standard_dims(&lp), (4, 7));

        // A negative-rhs Le row flips to Ge and gains an artificial.
        let mut neg = LpProblem::new(Objective::Minimize);
        let x = neg.add_variable("x", 0.0, None).unwrap();
        neg.set_objective_coefficient(x, 1.0);
        neg.add_constraint(&[(x, -1.0)], Relation::Le, -3.0)
            .unwrap();
        // m = 1; slack (surplus after the flip) = 1; artificial = 1.
        assert_eq!(super::standard_dims(&neg), (1, 3));

        // Lower-bound shifts change the effective rhs sign: x ≥ 5 with
        // rhs 2 becomes x' ≥ -3, normalized to a Le row (slack, no
        // artificial).
        let mut shifted = LpProblem::new(Objective::Minimize);
        let x = shifted.add_variable("x", 5.0, None).unwrap();
        shifted.set_objective_coefficient(x, 1.0);
        shifted
            .add_constraint(&[(x, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        assert_eq!(super::standard_dims(&shifted), (1, 2));
    }

    #[test]
    fn mode_resolution_precedence() {
        use super::{resolve_mode, SolverMode, AUTO_REVISED_MIN_CELLS};
        let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prior = std::env::var("TOMO_LP_MODE").ok();
        std::env::remove_var("TOMO_LP_MODE");
        let result = std::panic::catch_unwind(|| {
            // Explicit modes pass through untouched.
            assert_eq!(
                resolve_mode(SolverMode::Dense, 1 << 20, 1 << 20),
                SolverMode::Dense
            );
            assert_eq!(resolve_mode(SolverMode::Revised, 2, 2), SolverMode::Revised);
            // Auto picks by cell count.
            assert_eq!(resolve_mode(SolverMode::Auto, 10, 20), SolverMode::Dense);
            assert_eq!(
                resolve_mode(SolverMode::Auto, AUTO_REVISED_MIN_CELLS, 1),
                SolverMode::Revised
            );
            // The env override steers Auto only.
            std::env::set_var("TOMO_LP_MODE", "revised");
            assert_eq!(resolve_mode(SolverMode::Auto, 2, 2), SolverMode::Revised);
            assert_eq!(resolve_mode(SolverMode::Dense, 2, 2), SolverMode::Dense);
            std::env::set_var("TOMO_LP_MODE", "dense");
            assert_eq!(
                resolve_mode(SolverMode::Auto, AUTO_REVISED_MIN_CELLS, 2),
                SolverMode::Dense
            );
            assert_eq!(resolve_mode(SolverMode::Revised, 2, 2), SolverMode::Revised);
        });
        match prior {
            Some(v) => std::env::set_var("TOMO_LP_MODE", v),
            None => std::env::remove_var("TOMO_LP_MODE"),
        }
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints_needs_phase1() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → (10 − y)... optimum (10, 0)?
        // 2·10 = 20 vs using y: y costs more per unit, so x = 10, y = 0, z = 20.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 20.0);
        assert_close(sol.value(x), 10.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, 3x + 2y = 8 → x = 2, y = 1, z = 3.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Eq, 8.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective_value(), 3.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2 simultaneously.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(&[(x, -1.0)], Relation::Le, 5.0).unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, Some(3.5)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 3.5);
    }

    #[test]
    fn nonzero_lower_bounds_shifted_correctly() {
        // min x + y, x ≥ 2, y ∈ [1, 5], x + y ≥ 6 → x = 5? No:
        // cheapest is any combination summing to 6 with x ≥ 2, y ≥ 1;
        // objective is symmetric, optimum value 6.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 2.0, None).unwrap();
        let y = lp.add_variable("y", 1.0, Some(5.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 6.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 6.0);
        assert!(sol.value(x) >= 2.0 - 1e-9);
        assert!(sol.value(y) >= 1.0 - 1e-9);
        assert!(sol.value(y) <= 5.0 + 1e-9);
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // x − y ≤ −2 with x,y ≥ 0: feasible (e.g. y ≥ 2).
        // max x s.t. x − y ≤ −2, y ≤ 10 → x = 8.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, Some(10.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, -2.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 8.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(y, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 2.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 1.0);
    }

    #[test]
    fn redundant_equalities_handled() {
        // The same equality twice: phase 1 leaves a redundant artificial.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, Some(9.0)).unwrap();
        let y = lp.add_variable("y", 0.0, Some(9.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0)
            .unwrap();
        lp.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 10.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.value(y), 5.0);
        assert_close(sol.value(x), 0.0);
        assert_close(sol.objective_value(), 10.0);
    }

    #[test]
    fn empty_objective_still_finds_feasible_point() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 3.0).unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert!(sol.value(x) >= 3.0 - 1e-9);
    }

    #[test]
    fn no_constraints_bounded_by_upper_bounds() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 1.0, Some(2.0)).unwrap();
        lp.set_objective_coefficient(x, 4.0);
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 8.0);
    }

    #[test]
    fn infeasible_through_bounds_and_constraint() {
        // x ∈ [0, 1] but x ≥ 2 required.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, Some(1.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(lp.solve().unwrap().status(), LpStatus::Infeasible);
    }

    #[test]
    fn many_variable_chain() {
        // max Σ xᵢ with chain constraints xᵢ + xᵢ₊₁ ≤ 1: optimum is
        // ⌈n/2⌉ (alternating 1,0,1,0,…).
        let n = 21;
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| lp.add_variable(format!("x{i}"), 0.0, Some(1.0)).unwrap())
            .collect();
        for &v in &vars {
            lp.set_objective_coefficient(v, 1.0);
        }
        for w in vars.windows(2) {
            lp.add_constraint(&[(w[0], 1.0), (w[1], 1.0)], Relation::Le, 1.0)
                .unwrap();
        }
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 11.0);
    }
}
