//! Dense two-phase primal simplex.
//!
//! Works on the standard form `min cᵀx, Ax = b, x ≥ 0` obtained from the
//! user model by shifting lower bounds, adding upper-bound rows, and adding
//! slack/surplus/artificial columns. Pricing is Dantzig (most negative
//! reduced cost) with an automatic switch to Bland's rule after a fixed
//! number of iterations, which guarantees termination under degeneracy.

use tomo_obs::{LazyCounter, LazyHistogram};

use crate::model::{LpProblem, Objective, Relation};
use crate::solution::{LpSolution, LpStatus};
use crate::{LpError, LP_TOL};

static SOLVES: LazyCounter = LazyCounter::new("lp.simplex.solves");
static PIVOTS: LazyCounter = LazyCounter::new("lp.simplex.pivots");
static ITERATIONS: LazyCounter = LazyCounter::new("lp.simplex.iterations");
static OPTIMAL: LazyCounter = LazyCounter::new("lp.simplex.optimal");
static INFEASIBLE: LazyCounter = LazyCounter::new("lp.simplex.infeasible");
static UNBOUNDED: LazyCounter = LazyCounter::new("lp.simplex.unbounded");
static PHASE1_SECONDS: LazyHistogram = LazyHistogram::new("lp.simplex.phase1_seconds");
static PHASE2_SECONDS: LazyHistogram = LazyHistogram::new("lp.simplex.phase2_seconds");

/// Hard safety bound on simplex iterations per phase.
const MAX_ITER_BASE: usize = 20_000;
/// After this many iterations in a phase, switch from Dantzig to Bland.
const BLAND_SWITCH: usize = 2_000;

struct Tableau {
    /// (m+1) × (ncols+1); last row = reduced costs, last col = rhs.
    t: Vec<Vec<f64>>,
    /// Basis: for each of the m rows, the column index of its basic variable.
    basis: Vec<usize>,
    m: usize,
    ncols: usize,
    /// Columns that may never enter the basis (artificials in phase 2).
    banned: Vec<bool>,
}

impl Tableau {
    fn rhs(&self, i: usize) -> f64 {
        self.t[i][self.ncols]
    }

    /// One pivot: column `col` enters, row `row`'s basic variable leaves.
    fn pivot(&mut self, row: usize, col: usize) {
        PIVOTS.inc();
        let pivot = self.t[row][col];
        debug_assert!(pivot.abs() > LP_TOL, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;
        for v in self.t[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.t[row].clone();
        for (i, r) in self.t.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor == 0.0 {
                continue;
            }
            for (a, &p) in r.iter_mut().zip(pivot_row.iter()) {
                *a -= factor * p;
            }
            // Kill residual round-off in the pivot column.
            r[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Chooses the entering column, or `None` if optimal.
    fn entering(&self, iter: usize) -> Option<usize> {
        let costs = &self.t[self.m];
        if iter >= BLAND_SWITCH {
            // Bland: first improving column.
            (0..self.ncols).find(|&j| !self.banned[j] && costs[j] < -LP_TOL)
        } else {
            // Dantzig: most improving column.
            let mut best: Option<(usize, f64)> = None;
            for (j, &c) in costs.iter().take(self.ncols).enumerate() {
                if self.banned[j] {
                    continue;
                }
                if c < -LP_TOL && best.is_none_or(|(_, bc)| c < bc) {
                    best = Some((j, c));
                }
            }
            best.map(|(j, _)| j)
        }
    }

    /// Ratio test: row whose basic variable leaves, or `None` if the
    /// column is unbounded.
    fn leaving(&self, col: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.m {
            let a = self.t[i][col];
            if a > LP_TOL {
                let ratio = self.rhs(i).max(0.0) / a;
                let better = match best {
                    None => true,
                    Some((bi, br)) => {
                        ratio < br - LP_TOL
                            || (ratio < br + LP_TOL && self.basis[i] < self.basis[bi])
                    }
                };
                if better {
                    best = Some((i, ratio));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Runs simplex iterations until optimal/unbounded/iteration limit.
    fn optimize(&mut self) -> Result<bool, LpError> {
        let limit = MAX_ITER_BASE + 100 * (self.m + self.ncols);
        for iter in 0..limit {
            ITERATIONS.inc();
            let Some(col) = self.entering(iter) else {
                return Ok(true); // optimal
            };
            let Some(row) = self.leaving(col) else {
                return Ok(false); // unbounded
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit { limit })
    }

    /// Installs a cost row and eliminates basic-variable costs.
    fn install_costs(&mut self, costs: &[f64]) {
        let n = self.ncols;
        self.t[self.m][..n].copy_from_slice(&costs[..n]);
        self.t[self.m][n] = 0.0;
        for i in 0..self.m {
            let b = self.basis[i];
            let cb = self.t[self.m][b];
            if cb != 0.0 {
                let row_i = self.t[i].clone();
                for (c, &a) in self.t[self.m].iter_mut().zip(row_i.iter()) {
                    *c -= cb * a;
                }
                self.t[self.m][b] = 0.0;
            }
        }
    }
}

/// Solves the model; see [`LpProblem::solve`].
pub(crate) fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    SOLVES.inc();
    let n_struct = problem.variables.len();

    // Assemble rows in (dense coeffs, relation, rhs) form over the shifted
    // structural variables x' = x − lower ≥ 0.
    struct Row {
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(problem.constraints.len() + n_struct);

    for c in &problem.constraints {
        let mut coeffs = vec![0.0; n_struct];
        let mut shift = 0.0;
        for &(j, a) in &c.terms {
            coeffs[j] += a;
            shift += a * problem.variables[j].lower;
        }
        rows.push(Row {
            coeffs,
            relation: c.relation,
            rhs: c.rhs - shift,
        });
    }
    // Upper bounds become explicit rows: x'_j ≤ upper_j − lower_j.
    for (j, v) in problem.variables.iter().enumerate() {
        if let Some(u) = v.upper {
            let mut coeffs = vec![0.0; n_struct];
            coeffs[j] = 1.0;
            rows.push(Row {
                coeffs,
                relation: Relation::Le,
                rhs: u - v.lower,
            });
        }
    }

    let m = rows.len();

    // Normalize to rhs ≥ 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            for a in r.coeffs.iter_mut() {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.relation = match r.relation {
                Relation::Le => Relation::Ge,
                Relation::Eq => Relation::Eq,
                Relation::Ge => Relation::Le,
            };
        }
    }

    // Column layout: [structural | slacks/surplus | artificials].
    let n_slack = rows.iter().filter(|r| r.relation != Relation::Eq).count();
    let n_art = rows.iter().filter(|r| r.relation != Relation::Le).count();
    let ncols = n_struct + n_slack + n_art;

    let mut t = vec![vec![0.0; ncols + 1]; m + 1];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n_struct;
    let mut art_idx = n_struct + n_slack;
    let mut artificial_cols: Vec<usize> = Vec::with_capacity(n_art);

    for (i, r) in rows.iter().enumerate() {
        t[i][..n_struct].copy_from_slice(&r.coeffs);
        t[i][ncols] = r.rhs;
        match r.relation {
            Relation::Le => {
                t[i][slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                t[i][slack_idx] = -1.0;
                slack_idx += 1;
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let mut tab = Tableau {
        t,
        basis,
        m,
        ncols,
        banned: vec![false; ncols],
    };

    // Phase 1: minimize the sum of artificials.
    if !artificial_cols.is_empty() {
        let _phase1_timer = PHASE1_SECONDS.start_timer();
        let mut phase1_costs = vec![0.0; ncols];
        for &j in &artificial_cols {
            phase1_costs[j] = 1.0;
        }
        tab.install_costs(&phase1_costs);
        let optimal = tab.optimize()?;
        debug_assert!(optimal, "phase-1 LP is bounded below by 0");
        // Objective value = −cost-row rhs.
        let phase1_obj = -tab.t[tab.m][ncols];
        if phase1_obj > LP_TOL * (1.0 + phase1_obj.abs()) {
            INFEASIBLE.inc();
            tomo_obs::debug!(
                "lp.simplex",
                "infeasible: phase-1 objective {phase1_obj:.3e}"
            );
            return Ok(LpSolution::new(
                LpStatus::Infeasible,
                0.0,
                vec![0.0; n_struct],
            ));
        }
        // Pivot zero-valued artificials out of the basis where possible.
        let is_artificial = |j: usize| j >= n_struct + n_slack;
        for i in 0..tab.m {
            if is_artificial(tab.basis[i]) {
                if let Some(j) = (0..n_struct + n_slack).find(|&j| tab.t[i][j].abs() > LP_TOL) {
                    tab.pivot(i, j);
                }
                // Otherwise the row is redundant; the artificial stays
                // basic at value 0 and (being banned below) can never grow.
            }
        }
        for &j in &artificial_cols {
            tab.banned[j] = true;
        }
    }

    // Phase 2: real objective (converted to minimization over x').
    let sign = match problem.objective() {
        Objective::Maximize => -1.0,
        Objective::Minimize => 1.0,
    };
    let mut phase2_costs = vec![0.0; ncols];
    for (j, v) in problem.variables.iter().enumerate() {
        phase2_costs[j] = sign * v.objective;
    }
    let optimal = PHASE2_SECONDS.time(|| {
        tab.install_costs(&phase2_costs);
        tab.optimize()
    })?;
    if !optimal {
        UNBOUNDED.inc();
        tomo_obs::warn!("lp.simplex", "unbounded objective");
        return Ok(LpSolution::new(
            LpStatus::Unbounded,
            0.0,
            vec![0.0; n_struct],
        ));
    }

    // Extract structural values (undo the lower-bound shift).
    let mut values = vec![0.0; n_struct];
    for i in 0..tab.m {
        let b = tab.basis[i];
        if b < n_struct {
            values[b] = tab.rhs(i).max(0.0);
        }
    }
    for (j, v) in problem.variables.iter().enumerate() {
        values[j] += v.lower;
    }
    let objective: f64 = problem
        .variables
        .iter()
        .enumerate()
        .map(|(j, v)| v.objective * values[j])
        .sum();

    OPTIMAL.inc();
    tomo_obs::debug!("lp.simplex", "optimal: objective {objective:.6e}");
    Ok(LpSolution::new(LpStatus::Optimal, objective, values))
}

#[cfg(test)]
mod tests {
    use crate::{LpProblem, LpStatus, Objective, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints_needs_phase1() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → (10 − y)... optimum (10, 0)?
        // 2·10 = 20 vs using y: y costs more per unit, so x = 10, y = 0, z = 20.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 20.0);
        assert_close(sol.value(x), 10.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, 3x + 2y = 8 → x = 2, y = 1, z = 3.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Eq, 8.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective_value(), 3.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2 simultaneously.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(&[(x, -1.0)], Relation::Le, 5.0).unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status(), LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, Some(3.5)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 3.5);
    }

    #[test]
    fn nonzero_lower_bounds_shifted_correctly() {
        // min x + y, x ≥ 2, y ∈ [1, 5], x + y ≥ 6 → x = 5? No:
        // cheapest is any combination summing to 6 with x ≥ 2, y ≥ 1;
        // objective is symmetric, optimum value 6.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 2.0, None).unwrap();
        let y = lp.add_variable("y", 1.0, Some(5.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 6.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 6.0);
        assert!(sol.value(x) >= 2.0 - 1e-9);
        assert!(sol.value(y) >= 1.0 - 1e-9);
        assert!(sol.value(y) <= 5.0 + 1e-9);
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // x − y ≤ −2 with x,y ≥ 0: feasible (e.g. y ≥ 2).
        // max x s.t. x − y ≤ −2, y ≤ 10 → x = 8.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, Some(10.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, -2.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.value(x), 8.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(y, 1.0)], Relation::Le, 1.0).unwrap();
        lp.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, 2.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 1.0);
    }

    #[test]
    fn redundant_equalities_handled() {
        // The same equality twice: phase 1 leaves a redundant artificial.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, Some(9.0)).unwrap();
        let y = lp.add_variable("y", 0.0, Some(9.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0)
            .unwrap();
        lp.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 10.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.value(y), 5.0);
        assert_close(sol.value(x), 0.0);
        assert_close(sol.objective_value(), 10.0);
    }

    #[test]
    fn empty_objective_still_finds_feasible_point() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 3.0).unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert!(sol.value(x) >= 3.0 - 1e-9);
    }

    #[test]
    fn no_constraints_bounded_by_upper_bounds() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 1.0, Some(2.0)).unwrap();
        lp.set_objective_coefficient(x, 4.0);
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 8.0);
    }

    #[test]
    fn infeasible_through_bounds_and_constraint() {
        // x ∈ [0, 1] but x ≥ 2 required.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, Some(1.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(lp.solve().unwrap().status(), LpStatus::Infeasible);
    }

    #[test]
    fn many_variable_chain() {
        // max Σ xᵢ with chain constraints xᵢ + xᵢ₊₁ ≤ 1: optimum is
        // ⌈n/2⌉ (alternating 1,0,1,0,…).
        let n = 21;
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| lp.add_variable(format!("x{i}"), 0.0, Some(1.0)).unwrap())
            .collect();
        for &v in &vars {
            lp.set_objective_coefficient(v, 1.0);
        }
        for w in vars.windows(2) {
            lp.add_constraint(&[(w[0], 1.0), (w[1], 1.0)], Relation::Le, 1.0)
                .unwrap();
        }
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert_close(sol.objective_value(), 11.0);
    }
}
