use serde::{Deserialize, Serialize};

use crate::model::VarId;

/// Outcome of a simplex run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraint set has no feasible point. For the attack LPs this
    /// means "scapegoating with these attackers/victims is impossible".
    Infeasible,
    /// The feasible region is unbounded in the optimization direction.
    /// (Attack LPs with per-path caps are never unbounded.)
    Unbounded,
}

/// Result of solving an [`LpProblem`](crate::LpProblem).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LpSolution {
    status: LpStatus,
    objective: f64,
    values: Vec<f64>,
}

impl LpSolution {
    pub(crate) fn new(status: LpStatus, objective: f64, values: Vec<f64>) -> Self {
        LpSolution {
            status,
            objective,
            values,
        }
    }

    /// Solver status.
    #[must_use]
    pub fn status(&self) -> LpStatus {
        self.status
    }

    /// `true` iff the status is [`LpStatus::Optimal`].
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }

    /// Objective value in the problem's own optimization direction.
    ///
    /// Meaningful only when [`Self::is_optimal`]; `0.0` otherwise.
    #[must_use]
    pub fn objective_value(&self) -> f64 {
        self.objective
    }

    /// Value of a variable in the optimal solution.
    ///
    /// Meaningful only when [`Self::is_optimal`]; `0.0` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`VarId::index`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let sol = LpSolution::new(LpStatus::Optimal, 4.5, vec![1.0, 3.5]);
        assert!(sol.is_optimal());
        assert_eq!(sol.status(), LpStatus::Optimal);
        assert_eq!(sol.objective_value(), 4.5);
        assert_eq!(sol.value(VarId(1)), 3.5);
        assert_eq!(sol.values(), &[1.0, 3.5]);
    }

    #[test]
    fn non_optimal_statuses() {
        let inf = LpSolution::new(LpStatus::Infeasible, 0.0, vec![]);
        assert!(!inf.is_optimal());
        let unb = LpSolution::new(LpStatus::Unbounded, 0.0, vec![]);
        assert_eq!(unb.status(), LpStatus::Unbounded);
    }
}
