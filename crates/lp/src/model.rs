use serde::{Deserialize, Serialize};

use crate::simplex;
use crate::solution::LpSolution;
use crate::LpError;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize the objective function.
    Maximize,
    /// Minimize the objective function.
    Minimize,
}

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
}

/// Opaque handle to a decision variable of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Positional index of the variable within its problem.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub(crate) name: String,
    pub(crate) lower: f64,
    pub(crate) upper: Option<f64>,
    pub(crate) objective: f64,
}

/// Activity of one constraint at a candidate solution
/// (see [`LpProblem::constraint_activity`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstraintActivity {
    /// Left-hand-side value `Σ aᵢxᵢ` at the solution.
    pub lhs: f64,
    /// The constraint's right-hand side.
    pub rhs: f64,
    /// The constraint's relation.
    pub relation: Relation,
    /// Whether the constraint is active (lhs == rhs within tolerance).
    pub binding: bool,
    /// Whether the solution satisfies the constraint within tolerance.
    pub satisfied: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// A linear program under construction.
///
/// Variables have a finite lower bound (commonly `0`, matching the paper's
/// non-negativity Constraint 1 `m ⪰ 0`) and an optional finite upper bound
/// (the per-path manipulation cap). Constraints are sparse linear
/// expressions related to a right-hand side by [`Relation`].
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone)]
pub struct LpProblem {
    objective: Objective,
    pub(crate) variables: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates an empty problem with the given optimization direction.
    #[must_use]
    pub fn new(objective: Objective) -> Self {
        LpProblem {
            objective,
            variables: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Optimization direction.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Number of variables added so far.
    #[must_use]
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a decision variable with bounds `lower ≤ x (≤ upper)` and zero
    /// objective coefficient.
    ///
    /// # Errors
    ///
    /// * [`LpError::InvalidBounds`] if `upper < lower`.
    /// * [`LpError::NonFiniteCoefficient`] if a bound is NaN or `lower` is
    ///   infinite (upper may only be omitted, not infinite).
    pub fn add_variable(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: Option<f64>,
    ) -> Result<VarId, LpError> {
        let name = name.into();
        if !lower.is_finite() || upper.is_some_and(|u| !u.is_finite()) {
            return Err(LpError::NonFiniteCoefficient {
                context: "variable bounds",
            });
        }
        if let Some(u) = upper {
            if u < lower {
                return Err(LpError::InvalidBounds {
                    name,
                    lower,
                    upper: u,
                });
            }
        }
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name,
            lower,
            upper,
            objective: 0.0,
        });
        Ok(id)
    }

    /// Sets the objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem or `coeff` is not
    /// finite. (Handles are only obtainable from [`Self::add_variable`], so
    /// a violation is a programming error, not a data error.)
    pub fn set_objective_coefficient(&mut self, var: VarId, coeff: f64) {
        assert!(coeff.is_finite(), "objective coefficient must be finite");
        assert!(
            var.0 < self.variables.len(),
            "variable {} does not belong to this problem",
            var.0
        );
        self.variables[var.0].objective = coeff;
    }

    /// Adds the constraint `Σ coeffᵢ·xᵢ  (≤ | = | ≥)  rhs`.
    ///
    /// Duplicate variables in `terms` are summed.
    ///
    /// # Errors
    ///
    /// * [`LpError::UnknownVariable`] if any handle is out of range.
    /// * [`LpError::NonFiniteCoefficient`] if any coefficient or `rhs` is
    ///   not finite.
    pub fn add_constraint(
        &mut self,
        terms: &[(VarId, f64)],
        relation: Relation,
        rhs: f64,
    ) -> Result<(), LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteCoefficient {
                context: "constraint rhs",
            });
        }
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(var, coeff) in terms {
            if !coeff.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    context: "constraint coefficient",
                });
            }
            if var.0 >= self.variables.len() {
                return Err(LpError::UnknownVariable {
                    index: var.0,
                    count: self.variables.len(),
                });
            }
            match dense.iter_mut().find(|(i, _)| *i == var.0) {
                Some((_, c)) => *c += coeff,
                None => dense.push((var.0, coeff)),
            }
        }
        self.constraints.push(Constraint {
            terms: dense,
            relation,
            rhs,
        });
        Ok(())
    }

    /// Adds the constraint `Σ valuesₖ·vars[indicesₖ]  (≤ | = | ≥)  rhs`
    /// from one sparse (CSR) row.
    ///
    /// `indices` are positions into `vars` — exactly the column indices
    /// of a [`CsrMatrix`](https://docs.rs/) row whose columns were laid
    /// out over `vars` — and must be strictly ascending, which CSR rows
    /// guarantee by construction. Unlike [`Self::add_constraint`], no
    /// duplicate-merging scan is needed: the stored terms are the given
    /// entries verbatim, in order.
    ///
    /// # Errors
    ///
    /// * [`LpError::UnknownVariable`] if an index is out of range for
    ///   `vars`,
    /// * [`LpError::NonFiniteCoefficient`] if a value or `rhs` is not
    ///   finite, or `indices` is not strictly ascending / does not match
    ///   `values` in length (structure errors reuse this variant's
    ///   context string).
    pub fn add_sparse_row(
        &mut self,
        vars: &[VarId],
        indices: &[usize],
        values: &[f64],
        relation: Relation,
        rhs: f64,
    ) -> Result<(), LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteCoefficient {
                context: "constraint rhs",
            });
        }
        if indices.len() != values.len() {
            return Err(LpError::NonFiniteCoefficient {
                context: "sparse row index/value length mismatch",
            });
        }
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(indices.len());
        let mut prev: Option<usize> = None;
        for (&k, &coeff) in indices.iter().zip(values) {
            if !coeff.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    context: "constraint coefficient",
                });
            }
            if prev.is_some_and(|p| k <= p) {
                return Err(LpError::NonFiniteCoefficient {
                    context: "sparse row indices not strictly ascending",
                });
            }
            prev = Some(k);
            let var = *vars.get(k).ok_or(LpError::UnknownVariable {
                index: k,
                count: vars.len(),
            })?;
            if var.0 >= self.variables.len() {
                return Err(LpError::UnknownVariable {
                    index: var.0,
                    count: self.variables.len(),
                });
            }
            terms.push((var.0, coeff));
        }
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
        Ok(())
    }

    /// Name of a variable (for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem.
    #[must_use]
    pub fn variable_name(&self, var: VarId) -> &str {
        &self.variables[var.0].name
    }

    /// Hash of the problem's *constraint skeleton*: objective direction,
    /// variable count and bounds, and per-constraint relation and term
    /// sparsity pattern — everything that determines the standard-form
    /// tableau layout, but **not** the coefficient or right-hand-side
    /// values. Two LPs with equal skeletons have interchangeable bases,
    /// which is what [`WarmStart`](crate::WarmStart) keys on.
    #[must_use]
    pub fn skeleton_hash(&self) -> u64 {
        // FNV-1a over the structural stream.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(PRIME)
        }
        let mut h = OFFSET;
        h = mix(
            h,
            match self.objective {
                Objective::Maximize => 1,
                Objective::Minimize => 2,
            },
        );
        h = mix(h, self.variables.len() as u64);
        for v in &self.variables {
            h = mix(h, v.lower.to_bits());
            h = mix(h, v.upper.map_or(u64::MAX, f64::to_bits));
        }
        h = mix(h, self.constraints.len() as u64);
        for c in &self.constraints {
            h = mix(
                h,
                match c.relation {
                    Relation::Le => 3,
                    Relation::Eq => 4,
                    Relation::Ge => 5,
                },
            );
            h = mix(h, c.terms.len() as u64);
            for &(j, _) in &c.terms {
                h = mix(h, j as u64);
            }
        }
        h
    }

    /// Evaluates each constraint at a solution: its left-hand-side value
    /// and whether it is *binding* (active within `tol`).
    ///
    /// Binding analysis explains attack optima: a binding cap means the
    /// path is saturated; a binding state constraint means the estimate
    /// sits exactly at a threshold.
    ///
    /// # Panics
    ///
    /// Panics if the solution has fewer values than the problem has
    /// variables (i.e. it came from a different problem).
    #[must_use]
    pub fn constraint_activity(&self, solution: &LpSolution, tol: f64) -> Vec<ConstraintActivity> {
        assert!(
            solution.values().len() >= self.num_variables(),
            "solution does not match this problem"
        );
        self.constraints
            .iter()
            .map(|c| {
                let lhs: f64 = c.terms.iter().map(|&(j, a)| a * solution.values()[j]).sum();
                let binding = match c.relation {
                    Relation::Le | Relation::Ge => (lhs - c.rhs).abs() <= tol,
                    Relation::Eq => true,
                };
                let satisfied = match c.relation {
                    Relation::Le => lhs <= c.rhs + tol,
                    Relation::Ge => lhs >= c.rhs - tol,
                    Relation::Eq => (lhs - c.rhs).abs() <= tol,
                };
                ConstraintActivity {
                    lhs,
                    rhs: c.rhs,
                    relation: c.relation,
                    binding,
                    satisfied,
                }
            })
            .collect()
    }

    /// Solves the problem with the two-phase primal simplex method.
    ///
    /// Infeasibility and unboundedness are reported through
    /// [`LpStatus`](crate::LpStatus) on the returned solution, not as
    /// errors.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the simplex fails to
    /// terminate within its safety bound (should not happen; Bland's rule
    /// guarantees finiteness).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        simplex::solve(self)
    }

    /// Solves the problem, reusing (and updating) a cached basis from
    /// `warm` for this problem's constraint skeleton.
    ///
    /// On a cache hit the solver *crashes* the remembered basis into the
    /// fresh tableau, skips phase 1, and re-enters phase 2 from there;
    /// if the basis turns out singular or infeasible under the new data
    /// it falls back to a cold solve. Status and objective agree with
    /// [`Self::solve`] up to solver tolerance; the vertex reached (and
    /// thus low-order solution bits) may differ when optima are not
    /// unique. See `lp.simplex.warm.*` metrics for hit/miss accounting.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve`].
    pub fn solve_warm(&self, warm: &crate::WarmStart) -> Result<LpSolution, LpError> {
        simplex::solve_warm(self, warm)
    }

    /// Solves the problem with an explicitly chosen backend.
    ///
    /// [`SolverMode::Auto`](crate::SolverMode::Auto) reproduces
    /// [`Self::solve`]; [`SolverMode::Dense`](crate::SolverMode::Dense)
    /// and [`SolverMode::Revised`](crate::SolverMode::Revised) force the
    /// tableau and sparse revised simplex respectively regardless of
    /// problem size. The backends are decision-equivalent: same status
    /// and objective up to solver tolerance, though degenerate optima
    /// may surface as different (equally optimal) vertices.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve`].
    pub fn solve_with(&self, mode: crate::SolverMode) -> Result<LpSolution, LpError> {
        simplex::solve_with(self, None, mode)
    }

    /// Solves with an explicit backend and a warm-start cache — the
    /// composition of [`Self::solve_warm`] and [`Self::solve_with`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve`].
    pub fn solve_warm_with(
        &self,
        warm: &crate::WarmStart,
        mode: crate::SolverMode,
    ) -> Result<LpSolution, LpError> {
        simplex::solve_with(self, Some(warm), mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_activity_reports_binding_rows() {
        // max x + y s.t. x + y ≤ 4 (binding), x ≤ 100 (slack).
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        let y = lp.add_variable("y", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 100.0).unwrap();
        let sol = lp.solve().unwrap();
        let activity = lp.constraint_activity(&sol, 1e-7);
        assert_eq!(activity.len(), 2);
        assert!(activity[0].binding);
        assert!(activity[0].satisfied);
        assert!((activity[0].lhs - 4.0).abs() < 1e-7);
        assert!(!activity[1].binding);
        assert!(activity[1].satisfied);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn constraint_activity_rejects_foreign_solution() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let _ = lp.add_variable("x", 0.0, Some(1.0)).unwrap();
        let other = LpProblem::new(Objective::Maximize).solve().unwrap();
        let _ = lp.constraint_activity(&other, 1e-7);
    }

    #[test]
    fn add_variable_validates_bounds() {
        let mut lp = LpProblem::new(Objective::Maximize);
        assert!(lp.add_variable("x", 0.0, Some(-1.0)).is_err());
        assert!(lp.add_variable("x", f64::NAN, None).is_err());
        assert!(lp.add_variable("x", 0.0, Some(f64::INFINITY)).is_err());
        assert!(lp.add_variable("x", f64::NEG_INFINITY, None).is_err());
        let id = lp.add_variable("x", 0.0, Some(1.0)).unwrap();
        assert_eq!(id.index(), 0);
        assert_eq!(lp.num_variables(), 1);
        assert_eq!(lp.variable_name(id), "x");
    }

    #[test]
    fn add_constraint_validates() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        assert!(lp
            .add_constraint(&[(VarId(5), 1.0)], Relation::Le, 1.0)
            .is_err());
        assert!(lp
            .add_constraint(&[(x, f64::NAN)], Relation::Le, 1.0)
            .is_err());
        assert!(lp
            .add_constraint(&[(x, 1.0)], Relation::Le, f64::INFINITY)
            .is_err());
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 5.0).unwrap();
        assert_eq!(lp.num_constraints(), 1);
    }

    #[test]
    fn sparse_row_matches_dense_constraint() {
        // The same LP assembled via add_constraint and add_sparse_row
        // must solve identically (bit-for-bit: same terms, same order).
        let build = |sparse: bool| {
            let mut lp = LpProblem::new(Objective::Maximize);
            let vars: Vec<VarId> = (0..4)
                .map(|i| lp.add_variable(format!("m{i}"), 0.0, Some(10.0)).unwrap())
                .collect();
            for &v in &vars {
                lp.set_objective_coefficient(v, 1.0);
            }
            // Row touching columns 0, 2, 3 only — a CSR-style row.
            let indices = [0usize, 2, 3];
            let values = [1.5, -0.5, 2.0];
            if sparse {
                lp.add_sparse_row(&vars, &indices, &values, Relation::Le, 7.0)
                    .unwrap();
            } else {
                let terms: Vec<(VarId, f64)> = indices
                    .iter()
                    .zip(values.iter())
                    .map(|(&k, &c)| (vars[k], c))
                    .collect();
                lp.add_constraint(&terms, Relation::Le, 7.0).unwrap();
            }
            lp.solve().unwrap()
        };
        let dense = build(false);
        let sparse = build(true);
        assert_eq!(dense.status(), sparse.status());
        assert_eq!(
            dense.objective_value().to_bits(),
            sparse.objective_value().to_bits()
        );
        assert_eq!(dense.values(), sparse.values());
    }

    #[test]
    fn sparse_row_validates_structure() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars = vec![
            lp.add_variable("a", 0.0, None).unwrap(),
            lp.add_variable("b", 0.0, None).unwrap(),
        ];
        // Index out of range for the vars slice.
        assert!(lp
            .add_sparse_row(&vars, &[2], &[1.0], Relation::Le, 1.0)
            .is_err());
        // Length mismatch.
        assert!(lp
            .add_sparse_row(&vars, &[0, 1], &[1.0], Relation::Le, 1.0)
            .is_err());
        // Not strictly ascending.
        assert!(lp
            .add_sparse_row(&vars, &[1, 0], &[1.0, 1.0], Relation::Le, 1.0)
            .is_err());
        assert!(lp
            .add_sparse_row(&vars, &[1, 1], &[1.0, 1.0], Relation::Le, 1.0)
            .is_err());
        // Non-finite coefficient / rhs.
        assert!(lp
            .add_sparse_row(&vars, &[0], &[f64::NAN], Relation::Le, 1.0)
            .is_err());
        assert!(lp
            .add_sparse_row(&vars, &[0], &[1.0], Relation::Le, f64::INFINITY)
            .is_err());
        // Empty rows are fine (0 ≤ rhs tautology handled downstream).
        lp.add_sparse_row(&vars, &[], &[], Relation::Le, 1.0)
            .unwrap();
        assert_eq!(lp.num_constraints(), 1);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, Some(10.0)).unwrap();
        lp.set_objective_coefficient(x, 1.0);
        // x + x ≤ 4  ⟹  x ≤ 2.
        lp.add_constraint(&[(x, 1.0), (x, 1.0)], Relation::Le, 4.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(sol.is_optimal());
        assert!((sol.value(x) - 2.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_objective_panics() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x", 0.0, None).unwrap();
        lp.set_objective_coefficient(x, f64::INFINITY);
    }
}
